#!/usr/bin/env python
"""Docs/code consistency gate (run in CI).

Three checks, all against the working tree:

1. **Module coverage** — every ``.py`` module under ``src/repro/`` must
   be mentioned by filename in ``docs/architecture.md`` (the one-page
   tour promises completeness).  Generated record modules under
   ``bugdb/records/`` are covered by mentioning the ``records/``
   directory itself.  Modules of the static-analysis subsystem
   (``src/repro/static/``) must additionally be mentioned in
   ``docs/static.md``, the subsystem's own page, and the search-layer
   modules of the simulator (``explorer`` / ``reduction`` / ``dpor`` /
   ``parallel`` / ``statecache`` / ``memory``) in ``docs/simulator.md`` — by
   filename or dotted ``sim.<module>`` path — and the service modules
   (``src/repro/service/``) in ``docs/service.md``, the service
   handbook.
2. **CLI flag coverage** — every ``--flag`` defined in
   ``src/repro/cli.py`` must appear in at least one docs page
   (``docs/*.md`` or ``README.md``).
3. **Link integrity** — every relative markdown link in ``docs/*.md``
   and ``README.md`` must resolve to an existing file.

Exit status 0 when clean; 1 with one line per problem otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"
DOCS = REPO / "docs"
ARCHITECTURE = DOCS / "architecture.md"
STATIC_DOC = DOCS / "static.md"
SIMULATOR_DOC = DOCS / "simulator.md"
SERVICE_DOC = DOCS / "service.md"
ALLOC_DOC = DOCS / "allocator.md"

#: The simulator's search layer plus the pluggable memory models:
#: docs/simulator.md is the subsystem page and must discuss each of these
#: modules (the remaining substrate modules — engine, sync, ops, ... —
#: are covered by the architecture tour).
SIM_SEARCH_MODULES = (
    "explorer", "reduction", "dpor", "dpor_parallel", "parallel",
    "statecache", "memory", "frontier",
)

#: The real-code pipeline is the static subsystem's outward-facing
#: surface: docs/static.md must name both dotted modules explicitly
#: (a filename mention alone could be a stale cross-reference).
STATIC_PIPELINE_MODULES = ("static.pysource", "static.lift")

#: Markdown inline links: [text](target), ignoring images and code spans.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
FLAG_RE = re.compile(r"\"(--[a-z][a-z0-9-]*)\"")


def check_modules(problems: list) -> None:
    tour = ARCHITECTURE.read_text(encoding="utf-8")
    if "records/" not in tour:
        problems.append(f"{ARCHITECTURE.relative_to(REPO)}: missing mention of records/")
    for path in sorted(SRC.rglob("*.py")):
        relative = path.relative_to(SRC)
        if relative.parts[0] == "bugdb" and "records" in relative.parts[:-1]:
            continue  # generated data modules, covered by the records/ mention
        if path.name not in tour:
            problems.append(
                f"{ARCHITECTURE.relative_to(REPO)}: module "
                f"src/repro/{relative} is not mentioned"
            )
    # The simulator's subsystem page must cover the search machinery
    # (a new explorer under src/repro/sim/ without a docs/simulator.md
    # section should fail here, not ship undocumented).
    if SIMULATOR_DOC.exists():
        sim_tour = SIMULATOR_DOC.read_text(encoding="utf-8")
        for stem in SIM_SEARCH_MODULES:
            if f"{stem}.py" not in sim_tour and f"sim.{stem}" not in sim_tour:
                problems.append(
                    f"{SIMULATOR_DOC.relative_to(REPO)}: search module "
                    f"src/repro/sim/{stem}.py is not mentioned"
                )
    else:
        problems.append("docs/simulator.md: missing (simulator subsystem page)")
    # Subsystems promising a per-module tour of their own: the static
    # analyzer page and the service handbook.
    for doc, package, label in (
        (STATIC_DOC, "static", "static subsystem page"),
        (SERVICE_DOC, "service", "service handbook"),
        (ALLOC_DOC, "alloc", "allocator handbook"),
    ):
        if not doc.exists():
            problems.append(f"docs/{doc.name}: missing ({label})")
            continue
        tour_text = doc.read_text(encoding="utf-8")
        for path in sorted((SRC / package).rglob("*.py")):
            if path.name == "__init__.py":
                continue  # the pages document the functional modules
            if path.name not in tour_text:
                problems.append(
                    f"{doc.relative_to(REPO)}: {package} module "
                    f"src/repro/{path.relative_to(SRC)} is not mentioned"
                )
    if STATIC_DOC.exists():
        static_text = STATIC_DOC.read_text(encoding="utf-8")
        for dotted in STATIC_PIPELINE_MODULES:
            if dotted not in static_text:
                problems.append(
                    f"{STATIC_DOC.relative_to(REPO)}: real-code pipeline "
                    f"module repro.{dotted} is not named"
                )


def check_cli_flags(problems: list) -> None:
    cli_source = (SRC / "cli.py").read_text(encoding="utf-8")
    flags = sorted(set(FLAG_RE.findall(cli_source)))
    if not flags:
        problems.append("tools/check_docs.py: found no --flags in cli.py (regex broken?)")
    pages = sorted(DOCS.glob("*.md")) + [REPO / "README.md"]
    corpus = "\n".join(page.read_text(encoding="utf-8") for page in pages)
    for flag in flags:
        if flag not in corpus:
            problems.append(
                f"cli.py flag {flag} is documented in no docs page "
                f"(docs/*.md, README.md)"
            )


def check_links(problems: list) -> None:
    for page in sorted(DOCS.glob("*.md")) + [REPO / "README.md"]:
        text = page.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (page.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                problems.append(
                    f"{page.relative_to(REPO)}: broken link -> {target}"
                )


def main() -> int:
    problems: list = []
    check_modules(problems)
    check_cli_flags(problems)
    check_links(problems)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"check_docs: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("check_docs: architecture tour, CLI flags, and links all consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
