#!/usr/bin/env python
"""Kernel/bugdb consistency lint (run in CI).

Static checks over every registered bug kernel, powered by the
``repro.static`` summaries (no schedule is executed):

1. **Declaration drift, use side** — every resource an operation site
   actually touches (mutexes, rwlocks, condvars, semaphores, barriers,
   channels) and every shared variable read or written must be declared
   on the kernel's :class:`~repro.sim.program.Program`.  Checked per
   program variant (buggy, fixed, every alternative fix).
2. **Declaration drift, declare side** — every declared lock, rwlock,
   channel, and shared variable must be used by *some* variant of the kernel.
   Checked against the union of variants because fixes share the buggy
   program's declarations (``Program.with_threads``): a lock-addition
   fix legitimately leaves the lock unused in the buggy variant.
3. **Bugdb linkage** — every ``kernel:`` reference in the bug database
   must resolve to a registered kernel, and every registered kernel must
   be referenced by at least one bug record, unless listed in
   :data:`UNLINKED_KERNELS` (kernels that generalise a bug *pattern*
   from the study rather than reproduce one catalogued report).
4. **Real-world corpus** (``examples/realworld``) — every module parses
   through the frontend, every ``REPRO_EXPECT`` annotation uses the
   candidate-pass kind vocabulary and names variables/resources the
   frontend actually extracted (no dangling expectations), every
   ``fixed_of`` link resolves to a buggy corpus module, and every buggy
   module has exactly one fixed twin.

Exit status 0 when clean; 1 with one line per problem otherwise.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Dict, List, Set, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bugdb import BugDatabase
from repro.kernels import all_kernels
from repro.sim.program import Program
from repro.static.summary import summarize_program

#: Kernels that demonstrate a bug *pattern* from the study's taxonomy
#: without reproducing one specific catalogued report — they legitimately
#: have no ``kernel:`` reference in the bug database.
UNLINKED_KERNELS = frozenset({
    "atomicity_lost_update",
    "multivar_torn_invariant",
    "order_teardown_use",
    "deadlock_rwlock_upgrade",
    "actor_mailbox_order",
    "actor_lost_message",
    "weakmem_store_buffer",
})

#: Site kind -> which Program declaration namespace the resource lives in.
_NAMESPACE_OF_KIND = {
    "acquire": "locks",
    "release": "locks",
    "tryacquire": "locks",
    "acquire_read": "rwlocks",
    "acquire_write": "rwlocks",
    "release_read": "rwlocks",
    "release_write": "rwlocks",
    "wait": "conditions",
    "notify": "conditions",
    "notify_all": "conditions",
    "sem_acquire": "semaphores",
    "sem_release": "semaphores",
    "barrier_wait": "barriers",
    "read": "variables",
    "write": "variables",
    "send": "channels",
    "recv": "channels",
    "select": "channels",
}


def _declared(program: Program) -> Dict[str, Set[str]]:
    return {
        "locks": set(program.locks),
        "rwlocks": set(program.rwlocks),
        "conditions": set(program.conditions),
        "semaphores": set(program.semaphores),
        "barriers": set(program.barriers),
        "channels": set(program.channels),
        "variables": set(program.initial),
    }


def _used(program: Program) -> Tuple[Dict[str, Set[str]], bool]:
    """Resources/variables each namespace's sites actually touch.

    Returns ``(usage, approximate)``; an approximate summary (dynamic
    fallback) still lists every site the symbolic drive reached, but may
    miss branches, so only the use-side check is safe on it.
    """
    summary = summarize_program(program)
    usage: Dict[str, Set[str]] = {ns: set() for ns in
                                  ("locks", "rwlocks", "conditions",
                                   "semaphores", "barriers", "channels",
                                   "variables")}
    for thread in summary.threads.values():
        for site in thread.sites:
            namespace = _NAMESPACE_OF_KIND.get(site.kind)
            if namespace is not None and site.obj is not None:
                usage[namespace].add(site.obj)
    return usage, summary.approximate


def _variants(kernel) -> List[Tuple[str, Program]]:
    variants = [("buggy", kernel.buggy), ("fixed", kernel.fixed)]
    variants.extend(
        (f"alt:{strategy.value}", program)
        for strategy, program in kernel.alternative_fixes
    )
    return variants


def declaration_problems(
    name: str, variants: List[Tuple[str, Program]]
) -> List[str]:
    """Both drift directions for one kernel's program variants."""
    problems: List[str] = []
    union_used: Dict[str, Set[str]] = {}
    any_approximate = False
    for variant, program in variants:
        usage, approximate = _used(program)
        any_approximate = any_approximate or approximate
        declared = _declared(program)
        for namespace, used in usage.items():
            union_used.setdefault(namespace, set()).update(used)
            for resource in sorted(used - declared[namespace]):
                problems.append(
                    f"{name} [{variant}]: body uses {namespace[:-1]} "
                    f"{resource!r} which the program does not declare"
                )
    if any_approximate:
        return problems  # fallback summaries may miss branches: skip unused check
    declared = _declared(variants[0][1])  # variants share declarations
    for namespace in ("locks", "rwlocks", "channels", "variables"):
        for resource in sorted(declared[namespace] - union_used[namespace]):
            problems.append(
                f"{name}: declared {namespace[:-1]} {resource!r} is used by "
                f"no variant (buggy, fixed, or alternative fix)"
            )
    return problems


def check_declarations(problems: List[str]) -> None:
    for kernel in all_kernels():
        problems.extend(declaration_problems(kernel.name, _variants(kernel)))


def check_bugdb_links(problems: List[str]) -> None:
    db = BugDatabase.load()
    kernel_names = {kernel.name for kernel in all_kernels()}
    referenced: Set[str] = set()
    for record in db:
        if record.kernel is None:
            continue
        referenced.add(record.kernel)
        if record.kernel not in kernel_names:
            problems.append(
                f"bugdb {record.bug_id}: kernel reference "
                f"{record.kernel!r} resolves to no registered kernel"
            )
    for name in sorted(kernel_names - referenced - UNLINKED_KERNELS):
        problems.append(
            f"kernel {name!r} is referenced by no bugdb record and is not "
            f"in UNLINKED_KERNELS"
        )
    for name in sorted(UNLINKED_KERNELS & referenced):
        problems.append(
            f"kernel {name!r} is in UNLINKED_KERNELS but a bugdb record "
            f"references it — drop it from the allowlist"
        )
    for name in sorted(UNLINKED_KERNELS - kernel_names):
        problems.append(
            f"UNLINKED_KERNELS entry {name!r} is not a registered kernel"
        )


#: The curated real-Python corpus the frontend gate runs over.
CORPUS_DIR = Path(__file__).resolve().parent.parent / "examples" / "realworld"


def check_realworld_corpus(problems: List[str]) -> None:
    """Annotation hygiene for the ``examples/realworld`` corpus."""
    from repro.static.pysource import SourceError, load_source

    modules = {}
    for path in sorted(CORPUS_DIR.glob("*.py")):
        if path.name.startswith("_"):
            continue
        try:
            modules[path.stem] = load_source(path)
        except SourceError as exc:
            problems.append(f"corpus {path.name}: {exc}")
    if not modules:
        problems.append(f"corpus: no modules found under {CORPUS_DIR}")
        return

    for name, module in sorted(modules.items()):
        summary = module.summary
        known_vars = set(summary.initial)
        declared_resources = (
            set(summary.locks) | set(summary.semaphores)
            | set(summary.barriers) | set(summary.channels)
            | set(summary.conditions)
        )
        for thread in summary.threads.values():
            for site in thread.sites:
                if site.obj is None:
                    continue
                if site.kind in ("read", "write"):
                    known_vars.add(site.obj)
                else:
                    declared_resources.add(site.obj)
        for bug in module.bugs:
            for variable in bug.variables:
                if variable not in known_vars:
                    problems.append(
                        f"corpus {name}: annotation names variable "
                        f"{variable!r} which the frontend never extracted "
                        f"(knows {sorted(known_vars)})"
                    )
            for resource in bug.resources:
                if resource not in declared_resources:
                    problems.append(
                        f"corpus {name}: annotation names resource "
                        f"{resource!r} which the frontend never extracted "
                        f"(knows {sorted(declared_resources)})"
                    )
        if module.is_fixed:
            twin = modules.get(module.fixed_of)
            if twin is None:
                problems.append(
                    f"corpus {name}: fixed_of {module.fixed_of!r} resolves "
                    f"to no corpus module"
                )
            elif twin.is_fixed:
                problems.append(
                    f"corpus {name}: fixed_of {module.fixed_of!r} points at "
                    f"another fixed variant"
                )
            if module.bugs:
                problems.append(
                    f"corpus {name}: fixed variant annotates bugs"
                )
        elif not module.bugs:
            problems.append(
                f"corpus {name}: buggy module annotates no bugs"
            )

    fixed_of_counts: Dict[str, int] = {}
    for module in modules.values():
        if module.is_fixed and module.fixed_of:
            fixed_of_counts[module.fixed_of] = (
                fixed_of_counts.get(module.fixed_of, 0) + 1
            )
    for name, module in sorted(modules.items()):
        if module.is_fixed:
            continue
        twins = fixed_of_counts.get(name, 0)
        if twins != 1:
            problems.append(
                f"corpus {name}: buggy module has {twins} fixed twin(s), "
                f"expected exactly 1"
            )


def main() -> int:
    problems: List[str] = []
    check_declarations(problems)
    check_bugdb_links(problems)
    check_realworld_corpus(problems)
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        print(f"lint_repro: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    count = len(list(all_kernels()))
    corpus = len([p for p in CORPUS_DIR.glob("*.py")
                  if not p.name.startswith("_")])
    print(f"lint_repro: {count} kernels consistent with their declarations "
          f"and the bug database; {corpus} corpus modules annotated "
          f"consistently")
    return 0


if __name__ == "__main__":
    sys.exit(main())
