#!/usr/bin/env python
"""Capture the SC golden baseline for the refactor-invariance guard.

Runs every registered *sequentially-consistent* kernel (the 13 lock-based
ones) through a matrix of explorer configurations and records, per
(kernel, config):

* the outcome-set digest (sorted canonical outcome keys, SHA-256),
* ``schedules_run`` / ``complete`` / ``states_expanded`` / ``cache_hits``,
* the status tally,
* DPOR telemetry (``races_detected`` / ``backtrack_points`` /
  ``pruned_runs``) where the config uses DPOR.

The output (``tests/data/sc_invariance.json``) was first captured against
the pre-refactor tree (commit 5d82cca, when ``SharedMemory`` *was* the
memory layer) and is asserted bit-for-bit by
``tests/sim/test_sc_invariance.py``: the pluggable-memory-model refactor
must leave the SC path's behaviour — not just its outcomes, but the
explored tree itself — unchanged.  Re-run this tool only when a change
*legitimately* alters SC exploration (and say why in the commit).
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.sim.explorer import make_explorer  # noqa: E402

#: The config matrix the invariance guard pins.  workers>1 is exercised
#: at test time by comparing against the in-test serial run (parallel
#: merges are bit-identical by construction), so the golden file only
#: needs serial rows.
CONFIGS = [
    {"name": "dfs", "reduction": None},
    {"name": "dfs-bound2", "reduction": None, "preemption_bound": 2},
    {"name": "dfs-memo", "reduction": None, "memoize": True},
    {"name": "sleepset", "reduction": "sleepset"},
    {"name": "dpor", "reduction": "dpor"},
    {"name": "dpor-memo", "reduction": "dpor", "memoize": True},
    {"name": "dpor-bound2", "reduction": "dpor", "preemption_bound": 2},
]

OUT = Path(__file__).resolve().parent.parent / "tests" / "data" / "sc_invariance.json"


def outcome_digest(outcomes) -> str:
    """Order-independent digest of the outcome *set* (keys only)."""
    body = repr(sorted(outcomes, key=repr))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def capture_one(program, config) -> dict:
    explorer = make_explorer(
        program,
        max_schedules=20000,
        max_steps=5000,
        preemption_bound=config.get("preemption_bound"),
        memoize=config.get("memoize", False),
        reduction=config.get("reduction"),
    )
    result = explorer.explore(predicate=lambda run: False)
    row = {
        "outcome_digest": outcome_digest(result.outcomes),
        "schedules_run": result.schedules_run,
        "complete": result.complete,
        "states_expanded": result.states_expanded,
        "cache_hits": result.cache_hits,
        "statuses": {
            status.value: count for status, count in sorted(
                result.statuses.items(), key=lambda item: item[0].value
            )
        },
    }
    if config.get("reduction") == "dpor":
        row["dpor"] = {
            "races_detected": explorer.races_detected,
            "backtrack_points": explorer.backtrack_points,
            "pruned_runs": explorer.pruned_runs,
        }
    return row


def main() -> int:
    from repro.kernels import all_kernels

    kernels = list(all_kernels())
    # Only SC kernels participate: TSO/actor families postdate the
    # baseline by definition.
    kernels = [k for k in kernels if getattr(k, "family", "sc") == "sc"]
    data: dict = {"schema": "repro.sc-invariance/v1", "kernels": {}}
    for kernel in kernels:
        rows = {}
        for config in CONFIGS:
            rows[config["name"]] = capture_one(kernel.buggy, config)
        data["kernels"][kernel.name] = rows
        print(f"{kernel.name}: {len(rows)} configs captured")
    OUT.parent.mkdir(parents=True, exist_ok=True)
    OUT.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"wrote {OUT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
