#!/usr/bin/env python3
"""Generate the bug-record modules in src/repro/bugdb/records/.

The ASPLOS'08 study's raw per-bug coding sheet was never released; what is
published are the aggregate counts (74 non-deadlock + 31 deadlock across
four applications, pattern/threads/variables/accesses/fix distributions).
This tool synthesises a per-bug record set whose *every marginal matches
the published aggregates exactly*, anchors the well-known example bugs
from the paper's figures as bespoke entries, and emits the records as
reviewable literal Python.  It asserts every target before writing a
single file, so the emitted database cannot drift from the calibration.

Regenerate with:  python tools/gen_bugdb.py
"""

from __future__ import annotations

import sys
from collections import Counter
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Tuple

REPO = Path(__file__).resolve().parent.parent
OUT = REPO / "src" / "repro" / "bugdb" / "records"

# --------------------------------------------------------------------------
# Record spec (mirrors BugRecord, as plain data for generation)
# --------------------------------------------------------------------------


@dataclass
class Spec:
    app: str                      # MYSQL / APACHE / MOZILLA / OPENOFFICE
    category: str                 # ND / DL
    patterns: Tuple[str, ...]     # subset of {A, O, X}; empty for DL
    threads: int
    variables: Optional[int]
    resources: Optional[int]
    accesses: int
    fix: str                      # schema FixStrategy member name
    impact: str                   # schema Impact member name
    buggy_fix: bool = False
    component: str = ""
    description: str = ""
    report_ref: str = ""
    kernel: Optional[str] = None
    bug_id: str = ""


# --------------------------------------------------------------------------
# Calibration targets (published aggregates of the study)
# --------------------------------------------------------------------------

APP_SPLIT = {  # app -> (non-deadlock, deadlock)
    "MOZILLA": (41, 16),
    "MYSQL": (14, 9),
    "APACHE": (13, 4),
    "OPENOFFICE": (6, 2),
}

# Non-deadlock pattern allocation per app: (A-only, O-only, both, other).
ND_PATTERNS = {
    "MOZILLA": (27, 11, 2, 1),
    "MYSQL": (9, 4, 1, 0),
    "APACHE": (9, 4, 0, 0),
    "OPENOFFICE": (3, 2, 0, 1),
}

# Non-deadlock fix allocation per app within pattern groups.
# {app: {group: {fix: count}}}
ND_FIXES = {
    "MOZILLA": {
        "A": {"ADD_LOCK": 10, "COND_CHECK": 8, "DESIGN_CHANGE": 7, "CODE_SWITCH": 2},
        "O": {"CODE_SWITCH": 4, "DESIGN_CHANGE": 4, "COND_CHECK": 3},
        "AO": {"DESIGN_CHANGE": 1, "ADD_LOCK": 1},
        "X": {"DESIGN_CHANGE": 1},
    },
    "MYSQL": {
        "A": {"ADD_LOCK": 4, "COND_CHECK": 3, "DESIGN_CHANGE": 2},
        "O": {"CODE_SWITCH": 2, "COND_CHECK": 1, "DESIGN_CHANGE": 1},
        "AO": {"DESIGN_CHANGE": 1},
        "X": {},
    },
    "APACHE": {
        "A": {"ADD_LOCK": 3, "COND_CHECK": 2, "DESIGN_CHANGE": 3, "CODE_SWITCH": 1},
        "O": {"COND_CHECK": 1, "DESIGN_CHANGE": 2, "CODE_SWITCH": 1},
        "AO": {},
        "X": {},
    },
    "OPENOFFICE": {
        "A": {"ADD_LOCK": 2, "COND_CHECK": 1},
        "O": {"DESIGN_CHANGE": 2},
        "AO": {},
        "X": {"OTHER_NON_DEADLOCK": 1},
    },
}

# Multi-variable non-deadlock records per app per group (rest are 1-var).
ND_MULTIVAR = {
    "MOZILLA": {"A": 11, "O": 2, "AO": 2, "X": 0},
    "MYSQL": {"A": 3, "O": 0, "AO": 1, "X": 0},
    "APACHE": {"A": 4, "O": 0, "AO": 0, "X": 0},
    "OPENOFFICE": {"A": 1, "O": 1, "AO": 0, "X": 0},
}

# Records needing >4 ordered accesses per app (assigned to multi-var A).
ND_BIG_ACCESS = {"MOZILLA": 4, "MYSQL": 1, "APACHE": 1, "OPENOFFICE": 1}

# Non-deadlock records needing 3 threads: (app, group) pairs.
ND_THREE_THREADS = [("MOZILLA", "AO"), ("MOZILLA", "A"), ("MYSQL", "O")]

# Buggy first patches among non-deadlock records per app per group.
ND_BUGGY = {
    "MOZILLA": {"A": 3, "O": 1, "AO": 1},
    "MYSQL": {"A": 2, "O": 1},
    "APACHE": {"A": 2, "O": 1},
    "OPENOFFICE": {"A": 1},
}

# Deadlock allocation per app: resources histogram and fixes.
DL_RESOURCES = {
    "MOZILLA": {1: 4, 2: 11, 3: 1},
    "MYSQL": {1: 2, 2: 7},
    "APACHE": {1: 1, 2: 3},
    "OPENOFFICE": {2: 2},
}
DL_FIXES = {
    "MOZILLA": {"GIVE_UP_RESOURCE": 10, "ACQUIRE_ORDER": 4, "SPLIT_RESOURCE": 1, "OTHER_DEADLOCK": 1},
    "MYSQL": {"GIVE_UP_RESOURCE": 5, "ACQUIRE_ORDER": 1, "SPLIT_RESOURCE": 1, "OTHER_DEADLOCK": 2},
    "APACHE": {"GIVE_UP_RESOURCE": 2, "ACQUIRE_ORDER": 1, "OTHER_DEADLOCK": 1},
    "OPENOFFICE": {"GIVE_UP_RESOURCE": 2},
}
DL_BUGGY = {"MOZILLA": 2, "MYSQL": 1, "APACHE": 1, "OPENOFFICE": 1}

# --------------------------------------------------------------------------
# Flavour text
# --------------------------------------------------------------------------

COMPONENTS = {
    "MOZILLA": [
        "js engine", "necko (network)", "layout", "xpcom threads", "imglib",
        "plugin host", "editor", "cache service", "timer thread", "docshell",
        "security (NSS glue)", "mailnews",
    ],
    "MYSQL": [
        "replication/binlog", "innodb buffer pool", "query cache",
        "thread pool", "myisam", "optimizer statistics", "data dictionary",
        "net I/O layer",
    ],
    "APACHE": [
        "mpm worker", "mod_log_config", "apr pools", "mod_ssl session cache",
        "scoreboard", "mod_mem_cache",
    ],
    "OPENOFFICE": [
        "vcl event loop", "writer core", "sfx2 dispatcher", "ucb content broker",
    ],
}

ATOMICITY_1VAR = [
    "check of {var} and the dependent use are not in one critical section; "
    "a remote update slips between them",
    "read-modify-write on {var} is split across two lock regions, losing a "
    "concurrent update",
    "{var} is tested for validity, then dereferenced after another thread "
    "resets it",
    "status flag {var} is read twice with an intervening remote write, so "
    "the two reads disagree",
    "counter {var} is incremented without holding the protecting lock on "
    "one rarely-executed path",
]
ATOMICITY_NVAR = [
    "{var} and its companion length/state field are updated in two steps; "
    "a reader observes the intermediate combination",
    "pointer {var} and its validity flag are set non-atomically, so a "
    "consumer sees a stale pair",
    "two related fields ({var} and its mirror) must change together but "
    "are written under different lock acquisitions",
]
ORDER_TEXT = [
    "{var} is consumed by the child thread before the creator finishes "
    "publishing it",
    "notification is issued before the waiter blocks on the condition, so "
    "the wakeup is lost",
    "shutdown path tears down {var} while a late callback still expects it",
    "initialisation of {var} races with its first use on the new thread",
]
OTHER_TEXT = [
    "ad-hoc synchronisation via a sleep/poll loop on {var} breaks under load",
]
DL_TEXT = {
    1: "a callback re-enters a routine that re-acquires the already-held "
       "non-recursive mutex",
    2: "two code paths take the same pair of locks in opposite orders",
    3: "three subsystems form a circular lock-acquisition chain",
}
VAR_NAMES = [
    "gState", "mRefCnt", "pending_count", "cache_table", "conn->status",
    "log_pos", "buf_len", "mDocument", "query_len", "thd->proc_info",
    "is_open", "handler_ptr", "num_waiters", "mThread", "free_list",
]

# --------------------------------------------------------------------------
# Bespoke entries (the paper's figure examples and other anchors)
# --------------------------------------------------------------------------


def bespoke() -> List[Spec]:
    return [
        # --- Mozilla, the paper's running examples --------------------------
        Spec(
            app="MOZILLA", category="ND", patterns=("A",), threads=2,
            variables=1, resources=None, accesses=3, fix="COND_CHECK",
            impact="CRASH", buggy_fix=True, component="js engine",
            description=(
                "js_DestroyContext reads gcLevel and proceeds to free GC "
                "things while a concurrent collection is still mutating the "
                "same state; the check and the use are not atomic"
            ),
            report_ref="anchored:fig-atomicity-js",
            kernel="atomicity_single_var",
            bug_id="mozilla-nd-js-gc",
        ),
        Spec(
            app="MOZILLA", category="ND", patterns=("A",), threads=2,
            variables=2, resources=None, accesses=4, fix="ADD_LOCK",
            impact="WRONG_OUTPUT", component="js engine",
            description=(
                "the property cache table and its empty flag are cleared in "
                "two steps; a lookup between the steps trusts a stale flag "
                "and reads freed entries (multi-variable involvement)"
            ),
            report_ref="anchored:fig-multivar-cache",
            kernel="multivar_buffer_flag",
            bug_id="mozilla-nd-cache-flush",
        ),
        Spec(
            app="MOZILLA", category="ND", patterns=("O",), threads=2,
            variables=1, resources=None, accesses=2, fix="COND_CHECK",
            impact="CRASH", component="xpcom threads",
            description=(
                "the spawned thread dereferences mThread before the creating "
                "thread stores the PR_CreateThread result into it — the "
                "intended 'create happens-before first use' order is never "
                "enforced"
            ),
            report_ref="anchored:fig-order-init",
            kernel="order_use_before_init",
            bug_id="mozilla-nd-thread-init",
        ),
        Spec(
            app="MOZILLA", category="ND", patterns=("O",), threads=2,
            variables=1, resources=None, accesses=4, fix="DESIGN_CHANGE",
            impact="HANG", component="timer thread",
            description=(
                "the timer thread can signal completion before the requester "
                "starts waiting; the unprotected ready-flag check makes the "
                "wakeup vanish and the requester blocks forever"
            ),
            report_ref="anchored:fig-order-wakeup",
            kernel="order_lost_wakeup",
            bug_id="mozilla-nd-timer-wakeup",
        ),
        Spec(
            app="MOZILLA", category="ND", patterns=("A", "O"), threads=3,
            variables=2, resources=None, accesses=4, fix="DESIGN_CHANGE",
            impact="WRONG_OUTPUT", component="cache service",
            description=(
                "eviction both assumes the scan set up the entry first "
                "(order) and assumes entry+state update atomicity; with a "
                "third thread loading, both assumptions break together"
            ),
            report_ref="anchored:mixed-cache-eviction",
            kernel=None,
            bug_id="mozilla-nd-cache-eviction",
        ),
        Spec(
            app="MOZILLA", category="DL", patterns=(), threads=1,
            variables=None, resources=1, accesses=2, fix="GIVE_UP_RESOURCE",
            impact="HANG", component="security (NSS glue)",
            description=(
                "a certificate-verification callback re-enters the store and "
                "re-acquires the already-held non-recursive monitor"
            ),
            report_ref="anchored:self-monitor",
            kernel="deadlock_self",
            bug_id="mozilla-dl-nested-monitor",
        ),
        Spec(
            app="MOZILLA", category="DL", patterns=(), threads=2,
            variables=None, resources=2, accesses=4, fix="ACQUIRE_ORDER",
            impact="HANG", buggy_fix=True, component="layout",
            description=(
                "layout takes the reflow lock then the net-image lock; the "
                "decoder callback path takes them in the opposite order"
            ),
            report_ref="anchored:abba-layout-imglib",
            kernel="deadlock_abba",
            bug_id="mozilla-dl-layout-imglib",
        ),
        # --- MySQL ------------------------------------------------------------
        Spec(
            app="MYSQL", category="ND", patterns=("A",), threads=2,
            variables=1, resources=None, accesses=3, fix="COND_CHECK",
            impact="WRONG_OUTPUT", component="replication/binlog",
            description=(
                "binlog rotation closes the log between a writer's "
                "'log is open' check and its append, so committed events "
                "silently miss the binlog (the classic MySQL#791 shape)"
            ),
            report_ref="MySQL#791",
            kernel="atomicity_wwr_log",
            bug_id="mysql-nd-binlog-rotate",
        ),
        Spec(
            app="MYSQL", category="ND", patterns=("A",), threads=2,
            variables=1, resources=None, accesses=3, fix="ADD_LOCK",
            impact="CRASH", component="data dictionary",
            description=(
                "DROP TABLE invalidates the table object between another "
                "session's existence check and use of the handler pointer"
            ),
            report_ref="anchored:dict-drop-race",
            kernel="atomicity_single_var",
            bug_id="mysql-nd-drop-handler",
        ),
        Spec(
            app="MYSQL", category="DL", patterns=(), threads=2,
            variables=None, resources=2, accesses=4, fix="ACQUIRE_ORDER",
            impact="HANG", component="replication/binlog",
            description=(
                "LOCK_log and LOCK_index are taken in opposite orders by "
                "rotation and by PURGE, deadlocking the server under load"
            ),
            report_ref="anchored:lock-log-index",
            kernel="deadlock_abba",
            bug_id="mysql-dl-log-index",
        ),
        # --- Apache --------------------------------------------------------------
        Spec(
            app="APACHE", category="ND", patterns=("A",), threads=2,
            variables=2, resources=None, accesses=4, fix="ADD_LOCK",
            impact="CORRUPTION", component="mod_log_config",
            description=(
                "two workers append to the shared log buffer: buffer bytes "
                "and the length field are updated non-atomically, "
                "interleaving corrupts the access log"
            ),
            report_ref="Apache#25520",
            kernel="multivar_buffer_flag",
            bug_id="apache-nd-log-buffer",
        ),
        Spec(
            app="APACHE", category="ND", patterns=("A",), threads=2,
            variables=1, resources=None, accesses=4, fix="DESIGN_CHANGE",
            impact="CRASH", buggy_fix=True, component="mod_mem_cache",
            description=(
                "the reference-count decrement and the zero check are two "
                "separate operations; two threads both see zero and the "
                "object is freed twice (fixed with an atomic decrement)"
            ),
            report_ref="Apache#21287",
            kernel="atomicity_lock_free",
            bug_id="apache-nd-refcount",
        ),
        Spec(
            app="APACHE", category="DL", patterns=(), threads=1,
            variables=None, resources=1, accesses=2, fix="GIVE_UP_RESOURCE",
            impact="HANG", component="apr pools",
            description=(
                "a pool-cleanup handler re-acquires the global allocator "
                "mutex already held by the destroying thread"
            ),
            report_ref="anchored:apr-pool-self",
            kernel="deadlock_self",
            bug_id="apache-dl-pool-cleanup",
        ),
        # --- OpenOffice ---------------------------------------------------------------
        Spec(
            app="OPENOFFICE", category="ND", patterns=("X",), threads=2,
            variables=1, resources=None, accesses=3, fix="OTHER_NON_DEADLOCK",
            impact="WRONG_OUTPUT", component="vcl event loop",
            description=(
                "clipboard handover relies on a sleep/poll loop instead of "
                "synchronisation; under load the poll misses the update "
                "window entirely (neither a clean atomicity nor order shape)"
            ),
            report_ref="anchored:clipboard-poll",
            kernel=None,
            bug_id="openoffice-nd-clipboard",
        ),
    ]


# --------------------------------------------------------------------------
# Generation
# --------------------------------------------------------------------------


def group_of(spec: Spec) -> str:
    if spec.category == "DL":
        return "DL"
    if spec.patterns == ("A", "O"):
        return "AO"
    return spec.patterns[0]


IMPACT_CYCLES = {
    "A": ["CRASH", "WRONG_OUTPUT", "CRASH", "CORRUPTION", "WRONG_OUTPUT"],
    "O": ["CRASH", "HANG"],
    "AO": ["WRONG_OUTPUT"],
    "X": ["WRONG_OUTPUT"],
}


def generate_app_nd(app: str, anchors: List[Spec]) -> List[Spec]:
    a_only, o_only, both, other = ND_PATTERNS[app]
    want = {"A": a_only, "O": o_only, "AO": both, "X": other}
    fixes = {g: Counter(t) for g, t in ND_FIXES[app].items()}
    multivar = dict(ND_MULTIVAR[app])
    big_access = ND_BIG_ACCESS.get(app, 0)
    three_threads = Counter(g for (a, g) in ND_THREE_THREADS if a == app)
    buggy = Counter(ND_BUGGY.get(app, {}))

    # Subtract anchored records from the pools.
    out: List[Spec] = []
    for spec in anchors:
        g = group_of(spec)
        want[g] -= 1
        fixes[g][spec.fix] -= 1
        assert fixes[g][spec.fix] >= 0, (app, g, spec.fix)
        if spec.variables and spec.variables > 1:
            multivar[g] -= 1
        if spec.accesses > 4:
            big_access -= 1
        if spec.threads > 2:
            three_threads[g] -= 1
        if spec.buggy_fix:
            buggy[g] -= 1
        out.append(spec)
    assert all(v >= 0 for v in want.values()), (app, want)
    assert all(v >= 0 for v in multivar.values())
    assert all(v >= 0 for v in buggy.values()), (app, buggy)

    components = COMPONENTS[app]
    serial = 0
    for g in ("A", "O", "AO", "X"):
        group_fixes: List[str] = []
        for fix_name, n in sorted(fixes[g].items()):
            group_fixes.extend([fix_name] * n)
        assert len(group_fixes) == want[g], (app, g, group_fixes, want[g])
        n_multi = multivar[g]
        n_big = big_access if g == "A" else 0
        for i in range(want[g]):
            serial += 1
            is_multi = i < n_multi
            threads = 3 if three_threads[g] > 0 else 2
            if threads == 3:
                three_threads[g] -= 1
            if g == "A":
                if is_multi and n_big > 0:
                    accesses = 6 if n_big == 1 and ND_BIG_ACCESS[app] >= 5 else 5
                    n_big -= 1
                else:
                    accesses = 4 if is_multi else 3
            elif g == "O":
                accesses = 4 if is_multi else 2
            elif g == "AO":
                accesses = 4
            else:
                accesses = 3
            variables = (2 if serial % 2 else 3) if is_multi else 1
            patterns = {"A": ("A",), "O": ("O",), "AO": ("A", "O"), "X": ("X",)}[g]
            impact_cycle = IMPACT_CYCLES[g]
            impact = impact_cycle[i % len(impact_cycle)]
            # Order bugs that lose wakeups hang; keep HANG entries consistent.
            var = VAR_NAMES[(serial * 3 + len(app)) % len(VAR_NAMES)]
            if g == "A":
                pool = ATOMICITY_NVAR if is_multi else ATOMICITY_1VAR
            elif g == "O":
                pool = ORDER_TEXT
            elif g == "AO":
                pool = ATOMICITY_NVAR
            else:
                pool = OTHER_TEXT
            text = pool[i % len(pool)].format(var=var)
            component = components[(serial + i) % len(components)]
            is_buggy = buggy[g] > 0
            if is_buggy:
                buggy[g] -= 1
            kernel = {
                "A": "multivar_buffer_flag" if is_multi else "atomicity_single_var",
                "O": "order_lost_wakeup" if impact == "HANG" else "order_use_before_init",
                "AO": None,
                "X": None,
            }[g]
            out.append(
                Spec(
                    app=app, category="ND", patterns=patterns, threads=threads,
                    variables=variables, resources=None, accesses=accesses,
                    fix=group_fixes[i], impact=impact, buggy_fix=is_buggy,
                    component=component, description=text,
                    report_ref=f"synthetic:{app.lower()}-nd-{serial:03d}",
                    kernel=kernel,
                    bug_id=f"{app.lower()}-nd-{serial:03d}",
                )
            )
        if g == "A":
            assert n_big == 0, (app, "big access left", n_big)
    return out


def generate_app_dl(app: str, anchors: List[Spec]) -> List[Spec]:
    resources = Counter(DL_RESOURCES[app])
    fixes = Counter(DL_FIXES[app])
    buggy = DL_BUGGY.get(app, 0)
    out: List[Spec] = []
    for spec in anchors:
        resources[spec.resources] -= 1
        fixes[spec.fix] -= 1
        if spec.buggy_fix:
            buggy -= 1
        assert resources[spec.resources] >= 0 and fixes[spec.fix] >= 0
        out.append(spec)
    assert buggy >= 0

    fix_list: List[str] = []
    for fix_name, n in sorted(fixes.items()):
        fix_list.extend([fix_name] * n)
    res_list: List[int] = []
    for res, n in sorted(resources.items()):
        res_list.extend([res] * n)
    assert len(fix_list) == len(res_list)
    # Pair give-up fixes with 2-resource bugs first, order fixes likewise;
    # simple deterministic zip after sorting suffices for calibration.
    components = COMPONENTS[app]
    serial = 0
    for res, fix_name in zip(sorted(res_list), fix_list):
        serial += 1
        threads = res if res > 1 else 1
        accesses = {1: 2, 2: 4, 3: 6}[res]
        is_buggy = buggy > 0
        if is_buggy:
            buggy -= 1
        kernel = {1: "deadlock_self", 2: "deadlock_abba", 3: "deadlock_three_way"}[res]
        out.append(
            Spec(
                app=app, category="DL", patterns=(), threads=threads,
                variables=None, resources=res, accesses=accesses,
                fix=fix_name, impact="HANG", buggy_fix=is_buggy,
                component=components[serial % len(components)],
                description=DL_TEXT[res],
                report_ref=f"synthetic:{app.lower()}-dl-{serial:03d}",
                kernel=kernel,
                bug_id=f"{app.lower()}-dl-{serial:03d}",
            )
        )
    return out


def generate() -> Dict[str, List[Spec]]:
    anchors_by = {}
    for spec in bespoke():
        anchors_by.setdefault((spec.app, spec.category), []).append(spec)
    result: Dict[str, List[Spec]] = {}
    for app in APP_SPLIT:
        nd = generate_app_nd(app, anchors_by.get((app, "ND"), []))
        dl = generate_app_dl(app, anchors_by.get((app, "DL"), []))
        assert len(nd) == APP_SPLIT[app][0], (app, len(nd))
        assert len(dl) == APP_SPLIT[app][1], (app, len(dl))
        result[app] = nd + dl
    return result


# --------------------------------------------------------------------------
# Calibration self-check
# --------------------------------------------------------------------------


def check(all_specs: List[Spec]) -> None:
    nd = [s for s in all_specs if s.category == "ND"]
    dl = [s for s in all_specs if s.category == "DL"]
    assert len(all_specs) == 105 and len(nd) == 74 and len(dl) == 31

    atom = [s for s in nd if "A" in s.patterns]
    order = [s for s in nd if "O" in s.patterns]
    both = [s for s in nd if s.patterns == ("A", "O")]
    other = [s for s in nd if s.patterns == ("X",)]
    assert len(atom) == 51, len(atom)
    assert len(order) == 24, len(order)
    assert len(both) == 3 and len(other) == 2
    assert len(set(id(s) for s in atom) | set(id(s) for s in order)) == 72

    assert sum(1 for s in all_specs if s.threads <= 2) == 101
    assert sum(1 for s in nd if s.variables == 1) == 49
    assert sum(1 for s in nd if s.variables > 1) == 25
    assert sum(1 for s in dl if s.resources <= 2) == 30
    assert sum(1 for s in dl if s.resources == 1) == 7
    assert sum(1 for s in dl if s.accesses <= 4) == 30
    assert sum(1 for s in all_specs if s.accesses <= 4) == 97

    nd_fixes = Counter(s.fix for s in nd)
    assert nd_fixes == Counter(
        {"COND_CHECK": 19, "CODE_SWITCH": 10, "DESIGN_CHANGE": 24,
         "ADD_LOCK": 20, "OTHER_NON_DEADLOCK": 1}
    ), nd_fixes
    dl_fixes = Counter(s.fix for s in dl)
    assert dl_fixes == Counter(
        {"GIVE_UP_RESOURCE": 19, "ACQUIRE_ORDER": 6, "SPLIT_RESOURCE": 2,
         "OTHER_DEADLOCK": 4}
    ), dl_fixes
    assert sum(1 for s in all_specs if s.buggy_fix) == 17
    ids = [s.bug_id for s in all_specs]
    assert len(set(ids)) == len(ids)


# --------------------------------------------------------------------------
# Emission
# --------------------------------------------------------------------------

HEADER = '''"""Bug records for {app_title} — generated by tools/gen_bugdb.py.

Do not edit by hand: regenerate with ``python tools/gen_bugdb.py``.
Records whose ``report_ref`` starts with ``anchored:`` model specific,
well-known bugs discussed in the paper; ``synthetic:`` records are
calibration entries whose aggregate statistics (and only those) are
meaningful.  See DESIGN.md section 2 and EXPERIMENTS.md.
"""

from repro.bugdb.schema import (
    Application,
    BugCategory,
    BugPattern,
    BugRecord,
    FixStrategy,
    Impact,
)

RECORDS = (
'''

PATTERN_NAME = {"A": "ATOMICITY", "O": "ORDER", "X": "OTHER"}


def emit_record(spec: Spec) -> str:
    patterns = ", ".join(f"BugPattern.{PATTERN_NAME[p]}" for p in spec.patterns)
    if patterns:
        patterns += ","
    lines = [
        "    BugRecord(",
        f"        bug_id={spec.bug_id!r},",
        f"        report_ref={spec.report_ref!r},",
        f"        application=Application.{spec.app},",
        f"        component={spec.component!r},",
        f"        description=(",
    ]
    # Wrap the description at ~64 chars.
    words = spec.description.split()
    line = ""
    desc_lines = []
    for word in words:
        if len(line) + len(word) + 1 > 60:
            desc_lines.append(line)
            line = word
        else:
            line = f"{line} {word}".strip()
    desc_lines.append(line)
    for i, dl_line in enumerate(desc_lines):
        suffix = "" if i == len(desc_lines) - 1 else " "
        lines.append(f"            {dl_line + suffix!r}")
    lines.append("        ),")
    category = "NON_DEADLOCK" if spec.category == "ND" else "DEADLOCK"
    lines.append(f"        category=BugCategory.{category},")
    lines.append(f"        patterns=({patterns}),")
    lines.append(f"        impact=Impact.{spec.impact},")
    lines.append(f"        threads_involved={spec.threads},")
    lines.append(f"        accesses_to_manifest={spec.accesses},")
    lines.append(f"        fix_strategy=FixStrategy.{spec.fix},")
    if spec.variables is not None:
        lines.append(f"        variables_involved={spec.variables},")
    if spec.resources is not None:
        lines.append(f"        resources_involved={spec.resources},")
    if spec.buggy_fix:
        lines.append("        first_fix_buggy=True,")
    if spec.kernel is not None:
        lines.append(f"        kernel={spec.kernel!r},")
    lines.append("    ),")
    return "\n".join(lines)


FILES = {
    "MOZILLA": "mozilla.py",
    "MYSQL": "mysql.py",
    "APACHE": "apache.py",
    "OPENOFFICE": "openoffice.py",
}


def main() -> int:
    per_app = generate()
    all_specs = [s for specs in per_app.values() for s in specs]
    check(all_specs)
    OUT.mkdir(parents=True, exist_ok=True)
    for app, filename in FILES.items():
        body = HEADER.format(app_title=app.title())
        body += "\n".join(emit_record(s) for s in per_app[app])
        body += "\n)\n"
        (OUT / filename).write_text(body)
        print(f"wrote {OUT / filename} ({len(per_app[app])} records)")
    init = '''"""The studied bug records, one module per application."""

from typing import List, Tuple

from repro.bugdb.records.apache import RECORDS as APACHE_RECORDS
from repro.bugdb.records.mozilla import RECORDS as MOZILLA_RECORDS
from repro.bugdb.records.mysql import RECORDS as MYSQL_RECORDS
from repro.bugdb.records.openoffice import RECORDS as OPENOFFICE_RECORDS

__all__ = [
    "APACHE_RECORDS",
    "MOZILLA_RECORDS",
    "MYSQL_RECORDS",
    "OPENOFFICE_RECORDS",
    "all_records",
]


def all_records():
    """Every studied record, grouped by application, stable order."""
    return (
        MYSQL_RECORDS + APACHE_RECORDS + MOZILLA_RECORDS + OPENOFFICE_RECORDS
    )
'''
    (OUT / "__init__.py").write_text(init)
    print(f"total: {len(all_specs)} records")
    return 0


if __name__ == "__main__":
    sys.exit(main())
