"""Table generator tests: every headline cell pinned to the published value."""

import pytest

from repro.bugdb import BugDatabase
from repro.study import (
    all_tables,
    table1_applications,
    table2_bug_sources,
    table3_patterns,
    table4_threads,
    table5_variables,
    table6_accesses,
    table7_fixes,
    table8_patch_quality,
)
from repro.study.render import Table


@pytest.fixture(scope="module")
def db():
    return BugDatabase.load()


class TestRender:
    def test_row_arity_checked(self):
        table = Table("X", "test", ["a", "b"])
        with pytest.raises(ValueError, match="expected 2"):
            table.add_row(1)

    def test_cell_lookup(self):
        table = Table("X", "test", ["k", "v"])
        table.add_row("one", 1)
        assert table.cell("one", "v") == 1
        with pytest.raises(KeyError):
            table.cell("two", "v")

    def test_column_extraction(self):
        table = Table("X", "test", ["k", "v"])
        table.add_row("a", 1)
        table.add_row("b", 2)
        assert table.column("v") == [1, 2]

    def test_format_contains_title_and_notes(self):
        table = Table("X", "my title", ["k"], notes=["a note"])
        table.add_row("val")
        text = table.format()
        assert "my title" in text
        assert "note: a note" in text
        assert "val" in text


class TestTable1And2:
    def test_t1_totals(self, db):
        table = table1_applications(db)
        assert table.cell("Total", "Bugs examined") == 105
        assert table.cell("Mozilla", "Bugs examined") == 57

    def test_t2_category_split(self, db):
        table = table2_bug_sources(db)
        assert table.cell("Total", "Non-deadlock") == 74
        assert table.cell("Total", "Deadlock") == 31
        assert table.cell("MySQL", "Non-deadlock") == 14
        assert table.cell("MySQL", "Deadlock") == 9
        assert table.cell("Apache", "Non-deadlock") == 13
        assert table.cell("Mozilla", "Deadlock") == 16
        assert table.cell("OpenOffice", "Total") == 8

    def test_t2_rows_sum_to_totals(self, db):
        table = table2_bug_sources(db)
        body = [row for row in table.rows if row[0] != "Total"]
        assert sum(row[1] for row in body) == 74
        assert sum(row[2] for row in body) == 31


class TestTable3:
    def test_pattern_counts(self, db):
        table = table3_patterns(db)
        assert table.cell("Atomicity violation", "Bugs") == 51
        assert table.cell("Order violation", "Bugs") == 24
        assert table.cell("Atomicity or order", "Bugs") == 72
        assert table.cell("Other", "Bugs") == 2

    def test_percentages(self, db):
        table = table3_patterns(db)
        assert table.cell("Atomicity violation", "% of non-deadlock") == "69%"
        assert table.cell("Atomicity or order", "% of non-deadlock") == "97%"


class TestTable4:
    def test_thread_histogram(self, db):
        table = table4_threads(db)
        assert table.cell(2, "Bugs") == 94
        assert table.cell(1, "Bugs") == 7  # single-resource deadlocks
        assert table.cell(3, "Bugs") == 4

    def test_note_states_96_percent(self, db):
        assert "101 of 105 (96%)" in table4_threads(db).format()


class TestTable5:
    def test_variable_rows(self, db):
        table = table5_variables(db)
        assert table.cell("non-deadlock", "Bugs") == 49  # first nd row: 1 var

    def test_resource_distribution(self, db):
        table = table5_variables(db)
        dl_rows = [r for r in table.rows if r[0] == "deadlock"]
        counts = {r[1]: r[2] for r in dl_rows}
        assert counts == {"1 resource": 7, "2 resources": 23, "3 resources": 1}

    def test_nd_rows_sum_to_74(self, db):
        table = table5_variables(db)
        nd_rows = [r for r in table.rows if r[0] == "non-deadlock"]
        assert sum(r[2] for r in nd_rows) == 74


class TestTable6:
    def test_small_access_note(self, db):
        assert "97/105 (92%)" in table6_accesses(db).format()

    def test_histogram_sums(self, db):
        table = table6_accesses(db)
        assert sum(table.column("Bugs")) == 105


class TestTable7:
    def test_non_deadlock_strategies(self, db):
        table = table7_fixes(db)
        rows = {r[1]: r[2] for r in table.rows if r[0] == "non-deadlock"}
        assert rows == {
            "Condition check (COND)": 19,
            "Code switch (Switch)": 10,
            "Design change (Design)": 24,
            "Add/change lock (Lock)": 20,
            "Other": 1,
        }

    def test_deadlock_strategies(self, db):
        table = table7_fixes(db)
        rows = {r[1]: r[2] for r in table.rows if r[0] == "deadlock"}
        assert rows == {
            "Give up resource": 19,
            "Change acquisition order": 6,
            "Split resource": 2,
            "Other": 4,
        }

    def test_lockless_note(self, db):
        assert "54/74 (73%)" in table7_fixes(db).format()


class TestTable8:
    def test_total_buggy_patches(self, db):
        table = table8_patch_quality(db)
        assert table.cell("Total", "Buggy first patches") == 17

    def test_per_app_sums(self, db):
        table = table8_patch_quality(db)
        body = [r for r in table.rows if r[0] != "Total"]
        assert sum(r[1] for r in body) == 17


class TestSupplementaryTables:
    def test_t3b_per_application_split(self, db):
        from repro.study import table3b_patterns_by_application

        table = table3b_patterns_by_application(db)
        assert table.cell("Mozilla", "Atomicity") == 29
        assert table.cell("MySQL", "Order") == 5
        assert table.cell("Total", "Atomicity") == 51
        assert table.cell("Total", "Order") == 24
        assert table.cell("Total", "Both") == 3

    def test_t4b_impacts_sum(self, db):
        from repro.study import table4b_impacts

        table = table4b_impacts(db)
        assert table.cell("Total", "Total") == 105
        assert table.cell("hang", "Deadlock") == 31
        body = [r for r in table.rows if r[0] != "Total"]
        assert sum(r[3] for r in body) == 105


class TestAllTables:
    def test_ten_tables(self, db):
        tables = all_tables(db)
        assert sorted(tables) == [
            "T1", "T2", "T3", "T3b", "T4", "T4b", "T5", "T6", "T7", "T8",
        ]

    def test_default_database_loaded(self):
        tables = all_tables()
        assert tables["T1"].cell("Total", "Bugs examined") == 105


class TestCsvExport:
    def test_csv_round_trips_through_csv_reader(self, db):
        import csv
        import io

        table = table2_bug_sources(db)
        rows = list(csv.reader(io.StringIO(table.to_csv())))
        assert rows[0] == table.columns
        assert rows[-1][0] == "Total"
        assert rows[-1][1] == "74"

    def test_csv_has_no_notes(self, db):
        table = table6_accesses(db)
        assert "note" not in table.to_csv()
