"""Finding checks and full-report tests."""

import pytest

from repro.bugdb import BugDatabase
from repro.study import FINDINGS, StudyReport, check_all, generate_report


@pytest.fixture(scope="module")
def db():
    return BugDatabase.load()


class TestFindings:
    def test_ten_findings_defined(self):
        assert len(FINDINGS) == 10
        assert [f.finding_id for f in FINDINGS] == [
            f"F{i}" for i in range(1, 11)
        ]

    def test_all_findings_pass_on_shipped_database(self, db):
        results = check_all(db)
        failures = [r.summary() for r in results if not r.passed]
        assert not failures, failures

    def test_every_finding_has_statement_and_implication(self):
        for finding in FINDINGS:
            assert finding.statement.strip()
            assert finding.implication.strip()

    def test_findings_fail_on_perturbed_database(self, db):
        # Drop one atomicity bug: F2 must fail, proving checks are real.
        perturbed = db.filter(lambda r: r.bug_id != "mozilla-nd-js-gc")
        results = {r.finding_id: r for r in check_all(perturbed)}
        assert not results["F2"].passed

    def test_result_summary_format(self, db):
        result = check_all(db)[0]
        assert "F1" in result.summary()
        assert "PASS" in result.summary()

    def test_expected_ratios_match_paper(self, db):
        expected = {
            "F1": "72/74",
            "F2": "51/74",
            "F3": "24/74",
            "F4": "101/105",
            "F5": "49/74",
            "F6": "30/31",
            "F7": "97/105",
            "F8": "54/74",
            "F9": "19/31",
            "F10": "17/105",
        }
        for result in check_all(db):
            assert result.observed == expected[result.finding_id]


class TestReport:
    def test_quick_report_structure(self, db):
        report = generate_report(db, quick=True)
        assert isinstance(report, StudyReport)
        assert len(report.tables) == 10
        assert len(report.findings) == 10
        assert report.all_findings_pass
        assert report.kernel_evidence == []

    def test_quick_report_renders_verdict(self, db):
        text = generate_report(db, quick=True).format()
        assert "ALL FINDINGS REPRODUCED" in text
        assert "T7" in text
        assert "F10" in text

    def test_full_report_includes_kernel_evidence(self, db):
        report = generate_report(db, quick=False)
        assert len(report.kernel_evidence) == 16
        text = report.format()
        assert "Executable kernel evidence" in text
        assert "order-guarantees=yes" in text
        assert "NO" not in "".join(report.kernel_evidence)

    def test_mismatch_verdict_on_perturbed_data(self, db):
        perturbed = db.filter(lambda r: not r.is_deadlock)
        report = generate_report(perturbed, quick=True)
        assert not report.all_findings_pass
        assert "MISMATCH" in report.format()
