"""Operation dataclass and VirtualThread state-machine tests."""

import pytest

from repro.errors import ProgramError, SimCrash
from repro.sim import ops
from repro.sim.thread import ThreadState, VirtualThread


class TestOps:
    def test_ops_are_frozen(self):
        op = ops.Read("x")
        with pytest.raises(Exception):
            op.var = "y"

    def test_labels_default_to_none(self):
        for op in (
            ops.Read("x"),
            ops.Write("x", 1),
            ops.Acquire("L"),
            ops.Wait("cv"),
            ops.Yield(),
        ):
            assert op.label is None

    def test_labels_are_carried(self):
        assert ops.Read("x", label="S1").label == "S1"
        assert ops.Write("x", 0, label="S2").label == "S2"

    def test_describe_is_informative(self):
        assert "x" in ops.Read("x").describe()
        assert "L" in ops.Acquire("L").describe()
        assert "cv" in ops.Notify("cv").describe()
        assert "3" in ops.Sleep(3).describe()

    def test_memory_op_classification(self):
        from repro.sim import events as ev

        read = ev.ReadEvent(seq=0, thread="T", var="x", value=1)
        acquire = ev.AcquireEvent(seq=0, thread="T", lock="L")
        assert read.is_memory_access and not read.is_sync
        assert acquire.is_sync and not acquire.is_memory_access

    def test_equality_by_value(self):
        assert ops.Read("x") == ops.Read("x")
        assert ops.Read("x") != ops.Read("y")


class TestVirtualThread:
    def make(self, body):
        return VirtualThread("T", body)

    def test_initial_state_is_new(self):
        vt = self.make(lambda: iter(()))
        assert vt.state is ThreadState.NEW
        assert not vt.alive and not vt.done

    def test_start_advances_to_first_op(self):
        def body():
            yield ops.Yield()

        vt = self.make(body)
        vt.start()
        assert vt.state is ThreadState.RUNNABLE
        assert isinstance(vt.pending, ops.Yield)

    def test_double_start_raises(self):
        def body():
            yield ops.Yield()

        vt = self.make(body)
        vt.start()
        with pytest.raises(ProgramError, match="started twice"):
            vt.start()

    def test_empty_body_finishes_immediately(self):
        def body():
            return
            yield  # pragma: no cover - makes this a generator function

        vt = self.make(body)
        vt.start()
        assert vt.state is ThreadState.FINISHED
        assert vt.done

    def test_advance_feeds_result(self):
        seen = []

        def body():
            value = yield ops.Read("x")
            seen.append(value)

        vt = self.make(body)
        vt.start()
        vt.advance(41)
        assert seen == [41]
        assert vt.state is ThreadState.FINISHED

    def test_crash_captured(self):
        def body():
            yield ops.Yield()
            raise SimCrash("boom")

        vt = self.make(body)
        vt.start()
        vt.advance(None)
        assert vt.state is ThreadState.CRASHED
        assert vt.crash_reason == "boom"
        assert vt.done

    def test_park_unpark_cycle(self):
        def body():
            yield ops.Wait("cv")
            yield ops.Yield()

        vt = self.make(body)
        vt.start()
        vt.park("cond:cv")
        assert vt.state is ThreadState.PARKED
        assert vt.pending is None
        reacquire = ops._ReacquireAfterWait(cond="cv", lock="L")
        vt.unpark(reacquire)
        assert vt.state is ThreadState.RUNNABLE
        assert vt.pending is reacquire

    def test_unpark_when_not_parked_raises(self):
        def body():
            yield ops.Yield()

        vt = self.make(body)
        vt.start()
        with pytest.raises(ProgramError):
            vt.unpark(ops.Yield())

    def test_advance_in_wrong_state_raises(self):
        def body():
            yield ops.Yield()

        vt = self.make(body)
        with pytest.raises(ProgramError):
            vt.advance(None)

    def test_non_op_yield_raises_program_error(self):
        def body():
            yield 123

        vt = self.make(body)
        with pytest.raises(ProgramError, match="must yield"):
            vt.start()
