"""Sliced resumable exploration: the sliced ≡ unsliced contract.

The frontier layer's core promise (``src/repro/sim/frontier.py``): an
exploration cut into arbitrary slices — each slice optionally
round-tripped through ``ExplorationFrontier.to_bytes`` as the service
scheduler does between worker pulls — produces a terminal result
*identical* to one unsliced ``explore()`` call: same outcome multiset,
statuses, schedule counts, first-finding index, and cache counters.
Property-tested over the generated corpus for both sliceable searches
(plain DFS and sleep sets) composed with memoization, stop-on-first,
and preemption bounds; the explorers that refuse slicing refuse loudly.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    DPORExplorer,
    ExplorationFrontier,
    Explorer,
    ParallelExplorer,
    SleepSetExplorer,
)
from repro.sim.dpor_parallel import ParallelDPORExplorer
from repro.sim.frontier import SLICEABLE_EXPLORERS
from tests import helpers
from tests.helpers import corpus_programs, worker_counts

SLICEABLE_CLASSES = {"dfs": Explorer, "sleepset": SleepSetExplorer}


def explore_sliced(
    explorer_factory,
    slice_budget,
    *,
    roundtrip=False,
    predicate=None,
    stop_on_first=False,
    max_slices=10_000,
):
    """Drive an exploration slice by slice until the terminal result.

    ``roundtrip=True`` serializes the frontier between slices — the
    exact path a checkpoint takes through the service scheduler — so
    the property also pins that nothing is lost crossing ``to_bytes``.
    A fresh explorer instance per slice mirrors the service too: each
    slice may land on a different worker process.
    """
    frontier = None
    slices = 0
    while True:
        explorer = explorer_factory()
        result = explorer.explore(
            predicate=predicate,
            stop_on_first=stop_on_first,
            slice_budget=slice_budget,
            frontier=frontier,
        )
        slices += 1
        if result.frontier is None:
            return result, slices
        frontier = result.frontier
        if roundtrip:
            frontier = ExplorationFrontier.from_bytes(frontier.to_bytes())
        assert slices < max_slices, "sliced exploration failed to terminate"


def assert_results_equal(sliced, whole):
    """The terminal sliced result matches the unsliced one field by field."""
    assert sliced.outcomes == whole.outcomes
    assert sliced.statuses == whole.statuses
    assert sliced.schedules_run == whole.schedules_run
    assert sliced.match_count == whole.match_count
    assert sliced.complete == whole.complete
    assert sliced.first_match_schedule == whole.first_match_schedule
    assert (
        sliced.schedules_to_first_finding == whole.schedules_to_first_finding
    )
    assert sliced.cache_hits == whole.cache_hits
    assert sliced.states_expanded == whole.states_expanded
    assert sliced.frontier is None


class TestSlicedEqualsUnsliced:
    @settings(max_examples=12, deadline=None, derandomize=True)
    @given(
        corpus_programs(),
        st.integers(min_value=1, max_value=7),
        st.booleans(),
    )
    def test_dfs_property(self, program, slice_budget, memoize):
        whole = Explorer(program, memoize=memoize).explore()
        sliced, slices = explore_sliced(
            lambda: Explorer(program, memoize=memoize),
            slice_budget,
            roundtrip=True,
        )
        assert_results_equal(sliced, whole)
        # Tiny slices against a multi-schedule space must actually pause.
        if whole.schedules_run + whole.cache_hits > slice_budget:
            assert slices > 1

    @settings(max_examples=12, deadline=None, derandomize=True)
    @given(
        corpus_programs(),
        st.integers(min_value=1, max_value=7),
        st.booleans(),
    )
    def test_sleepset_property(self, program, slice_budget, memoize):
        whole = SleepSetExplorer(program, memoize=memoize).explore()
        sliced, _ = explore_sliced(
            lambda: SleepSetExplorer(program, memoize=memoize),
            slice_budget,
            roundtrip=True,
        )
        assert_results_equal(sliced, whole)

    @settings(max_examples=8, deadline=None, derandomize=True)
    @given(corpus_programs(), st.integers(min_value=1, max_value=5))
    def test_stop_on_first_finds_same_schedule(self, program, slice_budget):
        """First-finding searches agree on *which* schedule failed."""
        whole = Explorer(program, keep_matches=1).explore(stop_on_first=True)
        sliced, _ = explore_sliced(
            lambda: Explorer(program, keep_matches=1),
            slice_budget,
            stop_on_first=True,
            roundtrip=True,
        )
        assert sliced.match_count == whole.match_count
        assert sliced.first_match_schedule == whole.first_match_schedule
        assert (
            sliced.schedules_to_first_finding
            == whole.schedules_to_first_finding
        )

    def test_preemption_bound_composes(self):
        program = helpers.racy_counter(threads=3)
        whole = Explorer(program, preemption_bound=1).explore()
        sliced, slices = explore_sliced(
            lambda: Explorer(program, preemption_bound=1), 3, roundtrip=True
        )
        assert_results_equal(sliced, whole)
        assert sliced.preemptions_spent == whole.preemptions_spent
        assert slices > 1

    def test_max_schedules_budget_spans_slices(self):
        """The global budget is charged cumulatively across slices."""
        program = helpers.racy_counter(threads=3)
        whole = Explorer(program, max_schedules=10).explore()
        assert not whole.complete
        sliced, _ = explore_sliced(
            lambda: Explorer(program, max_schedules=10), 3, roundtrip=True
        )
        assert sliced.schedules_run == whole.schedules_run == 10
        assert not sliced.complete

    @pytest.mark.parametrize("workers", worker_counts())
    def test_sliced_serial_matches_parallel_whole(self, workers):
        """The sliced serial search and a parallel run agree on outcomes."""
        program = helpers.racy_counter(threads=3)
        sliced, _ = explore_sliced(lambda: Explorer(program), 5)
        parallel = ParallelExplorer(program, workers=workers).explore()
        assert sliced.outcomes == parallel.outcomes
        assert sliced.statuses == parallel.statuses


class TestFrontierObject:
    def _paused(self, memoize=False):
        result = Explorer(
            helpers.racy_counter(threads=3), memoize=memoize
        ).explore(slice_budget=2)
        assert result.frontier is not None
        return result.frontier

    def test_pickle_roundtrip_preserves_everything(self):
        frontier = self._paused(memoize=True)
        clone = ExplorationFrontier.from_bytes(frontier.to_bytes())
        assert clone.explorer == frontier.explorer
        assert clone.program == frontier.program
        assert clone.pending == frontier.pending
        assert clone.attempts == frontier.attempts
        assert clone.outcomes == frontier.outcomes
        assert clone.cache_state == frontier.cache_state

    def test_from_bytes_rejects_foreign_pickles(self):
        with pytest.raises(ValueError, match="ExplorationFrontier"):
            ExplorationFrontier.from_bytes(pickle.dumps({"not": "a frontier"}))

    def test_summary_mentions_pending_work(self):
        frontier = self._paused()
        assert "pending" in frontier.summary()
        assert "racy-counter" in frontier.summary()

    def test_check_rejects_wrong_explorer_kind(self):
        frontier = self._paused()
        assert frontier.explorer == "dfs"
        sleep = SleepSetExplorer(helpers.racy_counter(threads=3))
        with pytest.raises(ValueError, match="cannot resume"):
            sleep.explore(frontier=frontier)

    def test_check_rejects_wrong_program(self):
        frontier = self._paused()
        other = Explorer(helpers.abba_deadlock())
        with pytest.raises(ValueError, match="belongs to program"):
            other.explore(frontier=frontier)

    def test_check_rejects_memoize_mismatch(self):
        frontier = self._paused(memoize=True)
        plain = Explorer(helpers.racy_counter(threads=3), memoize=False)
        with pytest.raises(ValueError, match="memoize"):
            plain.explore(frontier=frontier)

    def test_sliceable_explorers_constant(self):
        assert set(SLICEABLE_EXPLORERS) == set(SLICEABLE_CLASSES)


class TestRefusals:
    """Non-checkpointable searches refuse slicing with a ValueError."""

    def test_dpor_refuses(self):
        explorer = DPORExplorer(helpers.racy_counter())
        with pytest.raises(ValueError, match="restart with a larger"):
            explorer.explore(slice_budget=5)
        paused = Explorer(helpers.racy_counter(threads=3)).explore(
            slice_budget=2
        )
        with pytest.raises(ValueError, match="sliced resumable"):
            explorer.explore(frontier=paused.frontier)

    def test_parallel_dpor_refuses(self):
        explorer = ParallelDPORExplorer(helpers.racy_counter(), workers=2)
        with pytest.raises(ValueError, match="sliced resumable"):
            explorer.explore(slice_budget=5)

    def test_parallel_explorer_refuses(self):
        explorer = ParallelExplorer(helpers.racy_counter(), workers=2)
        with pytest.raises(ValueError, match="sliced resumable"):
            explorer.explore(slice_budget=5)

    def test_pipeline_refuses(self):
        from repro.detectors.pipeline import DetectorPipeline
        from repro.detectors.suite import default_detectors

        program = helpers.racy_counter()
        pipeline = DetectorPipeline(default_detectors(program))
        explorer = Explorer(program, pipeline=pipeline)
        with pytest.raises(ValueError, match="pipeline"):
            explorer.explore(slice_budget=5)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_nonpositive_slice_budget_rejected(self, bad):
        with pytest.raises(ValueError, match="positive"):
            Explorer(helpers.racy_counter()).explore(slice_budget=bad)
        with pytest.raises(ValueError, match="positive"):
            SleepSetExplorer(helpers.racy_counter()).explore(slice_budget=bad)
