"""Determinism regressions for speculative parallel DPOR.

:class:`~repro.sim.dpor_parallel.ParallelDPORExplorer` promises
*bit-identical* results to the serial :class:`DPORExplorer` for any
worker count: same ``outcomes`` (with counts), same ``matching`` list,
same ``schedules_to_first_finding``, same run totals — including under
``stop_on_first`` and with crash/abort-truncated runs, where the race
sweep has to treat the item's partial tail correctly.  These tests
force real worker processes with ``pool="fork"`` (the in-process
fallback is serial by construction, so it would vacuously pass) and
use fixed programs rather than hypothesis: a failure here must
reproduce exactly.

The two documented deviations are pinned too: ``memoize`` guarantees
outcome-*set* equality only (per-item caches lose cross-item hits,
never invent them), and the budget is enforced per item.
"""

from __future__ import annotations

import pytest

from repro.kernels import all_kernels
from repro.sim.dpor import DPORExplorer
from repro.sim.dpor_parallel import ParallelDPORExplorer
from tests import helpers
from tests.helpers import corpus_program, worker_counts

BUDGET = 60000

#: Race-heavy kernels where the coordinator actually dispatches rounds
#: (narrow-frontier kernels just take the serial path end to end).
DEEP_KERNELS = (
    "multivar_torn_invariant",
    "deadlock_three_way",
    "deadlock_rwlock_upgrade",
    "order_lost_wakeup",
)

#: Fixed corpus programs with crashing readers: crash-truncated runs
#: inside items exercise the truncation-race path across the merge.
CRASHING_SPECS = [
    [
        (False, (("write", "x"), ("write", "x")), False),
        (False, (("read", "x"), ("write", "x")), True),
        (False, (("write", "x"),), False),
    ],
    [
        (True, (("write", "y"), ("read", "x")), True),
        (False, (("write", "x"), ("write", "y")), False),
        (True, (("read", "y"),), True),
    ],
]


def _identical(serial, parallel, label=""):
    assert parallel.outcomes == serial.outcomes, label
    assert parallel.statuses == serial.statuses, label
    assert parallel.found == serial.found, label
    assert parallel.schedules_run == serial.schedules_run, label
    assert (
        parallel.schedules_to_first_finding
        == serial.schedules_to_first_finding
    ), label
    assert [run.schedule for run in parallel.matching] == [
        run.schedule for run in serial.matching
    ], label


class TestBitIdenticalToSerial:
    def test_kernels_any_worker_count(self):
        for name in DEEP_KERNELS:
            kernel = next(k for k in all_kernels() if k.name == name)
            serial = DPORExplorer(
                kernel.buggy, max_schedules=BUDGET
            ).explore(predicate=kernel.failure)
            for workers in worker_counts(default=(2, 4)):
                parallel = ParallelDPORExplorer(
                    kernel.buggy, workers=workers, max_schedules=BUDGET,
                    pool="fork",
                ).explore(predicate=kernel.failure)
                _identical(serial, parallel, f"{name} workers={workers}")

    def test_crash_truncated_corpus_programs(self):
        for index, specs in enumerate(CRASHING_SPECS):
            program = corpus_program(specs, name=f"crashing{index}")
            serial = DPORExplorer(program, max_schedules=BUDGET).explore()
            parallel = ParallelDPORExplorer(
                program, workers=2, max_schedules=BUDGET, pool="fork"
            ).explore()
            _identical(serial, parallel, f"crashing{index}")

    def test_bounded_parallel_matches_bounded_serial(self):
        kernel = next(
            k for k in all_kernels() if k.name == "multivar_torn_invariant"
        )
        for bound in (1, 2):
            serial = DPORExplorer(
                kernel.buggy, max_schedules=BUDGET, preemption_bound=bound
            ).explore(predicate=kernel.failure)
            parallel = ParallelDPORExplorer(
                kernel.buggy, workers=2, max_schedules=BUDGET,
                preemption_bound=bound, pool="fork",
            ).explore(predicate=kernel.failure)
            _identical(serial, parallel, f"bound={bound}")

    def test_stop_on_first_matches_serial(self):
        for name in DEEP_KERNELS:
            kernel = next(k for k in all_kernels() if k.name == name)
            serial = DPORExplorer(
                kernel.buggy, max_schedules=BUDGET
            ).explore(predicate=kernel.failure, stop_on_first=True)
            parallel = ParallelDPORExplorer(
                kernel.buggy, workers=2, max_schedules=BUDGET, pool="fork"
            ).explore(predicate=kernel.failure, stop_on_first=True)
            assert parallel.found == serial.found, name
            assert (
                parallel.first_match_schedule == serial.first_match_schedule
            ), name
            assert (
                parallel.schedules_to_first_finding
                == serial.schedules_to_first_finding
            ), name

    def test_in_process_fallback_is_serial(self):
        kernel = next(
            k for k in all_kernels() if k.name == "deadlock_three_way"
        )
        serial = DPORExplorer(kernel.buggy, max_schedules=BUDGET).explore(
            predicate=kernel.failure
        )
        explorer = ParallelDPORExplorer(
            kernel.buggy, workers=2, max_schedules=BUDGET, pool="none"
        )
        parallel = explorer.explore(predicate=kernel.failure)
        _identical(serial, parallel, "pool=none")
        assert explorer.rounds == 0
        assert parallel.shards == 0


class TestDocumentedDeviations:
    def test_memoize_preserves_outcome_set(self):
        kernel = next(
            k for k in all_kernels() if k.name == "multivar_torn_invariant"
        )
        serial = DPORExplorer(
            kernel.buggy, max_schedules=BUDGET, memoize=True
        ).explore(predicate=kernel.failure)
        parallel = ParallelDPORExplorer(
            kernel.buggy, workers=2, max_schedules=BUDGET, memoize=True,
            pool="fork",
        ).explore(predicate=kernel.failure)
        assert set(parallel.outcomes) == set(serial.outcomes)
        assert parallel.found == serial.found

    def test_exhausted_budget_reports_incomplete(self):
        kernel = next(
            k for k in all_kernels() if k.name == "multivar_torn_invariant"
        )
        parallel = ParallelDPORExplorer(
            kernel.buggy, workers=2, max_schedules=20, pool="fork"
        ).explore(predicate=kernel.failure)
        assert not parallel.complete


class TestSpeculationMechanics:
    def test_deep_kernel_actually_dispatches_rounds(self):
        kernel = next(
            k for k in all_kernels() if k.name == "multivar_torn_invariant"
        )
        explorer = ParallelDPORExplorer(
            kernel.buggy, workers=2, max_schedules=BUDGET, pool="fork"
        )
        result = explorer.explore(predicate=kernel.failure)
        assert explorer.rounds > 0
        assert explorer.items_accepted > 0
        assert result.shards == explorer.items_accepted
        assert (
            explorer.items_accepted + explorer.items_wasted
            == explorer.items_dispatched
        )

    def test_telemetry_counters_match_serial(self):
        # Coordinator + accepted items must account for exactly the
        # serial search's race detections and plants.
        kernel = next(
            k for k in all_kernels() if k.name == "deadlock_three_way"
        )
        serial = DPORExplorer(kernel.buggy, max_schedules=BUDGET)
        serial.explore(predicate=kernel.failure)
        parallel = ParallelDPORExplorer(
            kernel.buggy, workers=2, max_schedules=BUDGET, pool="fork"
        )
        parallel.explore(predicate=kernel.failure)
        assert parallel.races_detected == serial.races_detected
        assert parallel.backtrack_points == serial.backtrack_points

    def test_invalid_arguments_raise(self):
        with pytest.raises(ValueError, match="workers"):
            ParallelDPORExplorer(helpers.racy_counter(), workers=0)
        with pytest.raises(ValueError, match="pool"):
            ParallelDPORExplorer(helpers.racy_counter(), pool="threads")
