"""Property-based tests over the simulator core.

Programs are generated from a restricted grammar (straight-line threads of
reads/writes/lock sections over a small variable/lock alphabet) so every
generated program terminates and is explorable.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    RandomScheduler,
    RunStatus,
    Trace,
    enumerate_outcomes,
    replay,
    run_program,
)
from tests.helpers import corpus_programs, corpus_spec_lengths


def small_programs(max_threads=3, max_ops=3):
    """Crash-free corpus programs with their specs (for the count bound)."""
    return corpus_programs(
        min_threads=1,
        max_threads=max_threads,
        max_ops=max_ops,
        crashes=False,
        with_specs=True,
    )


@settings(max_examples=40, deadline=None)
@given(small_programs())
def test_random_runs_are_deterministic_per_seed(prog_and_spec):
    prog, _ = prog_and_spec
    a = run_program(prog, RandomScheduler(seed=5))
    b = run_program(prog, RandomScheduler(seed=5))
    assert a.schedule == b.schedule
    assert a.memory == b.memory
    assert a.status == b.status


@settings(max_examples=40, deadline=None)
@given(small_programs(), st.integers(min_value=0, max_value=99))
def test_every_run_is_replayable(prog_and_spec, seed):
    prog, _ = prog_and_spec
    original = run_program(prog, RandomScheduler(seed=seed))
    rerun = replay(prog, original.schedule)
    assert rerun.memory == original.memory
    assert rerun.status == original.status
    assert len(rerun.trace) == len(original.trace)


@settings(max_examples=25, deadline=None)
@given(small_programs(max_threads=2))
def test_exploration_is_exhaustive_and_duplicate_free(prog_and_spec):
    prog, specs = prog_and_spec
    seen = set()

    def record(run):
        key = tuple(run.schedule)
        assert key not in seen
        seen.add(key)
        return False

    from repro.sim import Explorer

    result = Explorer(prog, max_schedules=50000).explore(predicate=record)
    assert result.complete
    assert len(seen) == result.schedules_run
    # Straight-line unlocked threads: schedule count equals the multinomial
    # of per-thread scheduling-point counts.  (Locked threads serialise,
    # reducing counts, so the multinomial is an upper bound in general.)
    lengths = corpus_spec_lengths(specs)
    bound = math.factorial(sum(lengths))
    for n in lengths:
        bound //= math.factorial(n)
    assert result.schedules_run <= bound
    if not any(locked for locked, _ops, _crashes in specs):
        assert result.schedules_run == bound


@settings(max_examples=30, deadline=None)
@given(small_programs(), st.integers(min_value=0, max_value=49))
def test_trace_serialisation_round_trips(prog_and_spec, seed):
    prog, _ = prog_and_spec
    trace = run_program(prog, RandomScheduler(seed=seed)).trace
    restored = Trace.from_dicts(trace.to_dicts())
    assert [type(e) for e in restored] == [type(e) for e in trace]
    assert [vars(e) for e in restored] == [vars(e) for e in trace]


@settings(max_examples=30, deadline=None)
@given(small_programs(max_threads=2))
def test_all_generated_programs_terminate_ok(prog_and_spec):
    prog, _ = prog_and_spec
    result = enumerate_outcomes(prog, require_complete=True)
    # One lock, properly nested sections, straight-line code: no schedule
    # can deadlock, crash, or hang.
    assert set(result.statuses) == {RunStatus.OK}


@settings(max_examples=30, deadline=None)
@given(small_programs(), st.integers(min_value=0, max_value=19))
def test_schedule_entries_name_real_threads(prog_and_spec, seed):
    prog, _ = prog_and_spec
    result = run_program(prog, RandomScheduler(seed=seed))
    assert set(result.schedule) <= set(prog.thread_names())
    # Event seq numbers are dense and ordered.
    assert [e.seq for e in result.trace] == list(range(len(result.trace)))
