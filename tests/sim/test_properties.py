"""Property-based tests over the simulator core.

Programs are generated from a restricted grammar (straight-line threads of
reads/writes/lock sections over a small variable/lock alphabet) so every
generated program terminates and is explorable.
"""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    Acquire,
    FixedScheduler,
    Program,
    RandomScheduler,
    Read,
    Release,
    RunStatus,
    Trace,
    Write,
    enumerate_outcomes,
    replay,
    run_program,
)

VARS = ["x", "y"]
LOCKS = ["L"]


@st.composite
def straightline_ops(draw, max_ops=4):
    """A short straight-line sequence of memory ops, optionally locked."""
    count = draw(st.integers(min_value=1, max_value=max_ops))
    ops_spec = []
    for _ in range(count):
        kind = draw(st.sampled_from(["read", "write"]))
        var = draw(st.sampled_from(VARS))
        ops_spec.append((kind, var))
    locked = draw(st.booleans())
    return (locked, tuple(ops_spec))


def build_body(spec):
    locked, op_list = spec

    def body():
        if locked:
            yield Acquire("L")
        acc = 0
        for kind, var in op_list:
            if kind == "read":
                value = yield Read(var)
                acc += value if isinstance(value, int) else 0
            else:
                acc += 1
                yield Write(var, acc)
        if locked:
            yield Release("L")

    return body


@st.composite
def small_programs(draw, max_threads=3):
    thread_count = draw(st.integers(min_value=1, max_value=max_threads))
    specs = [draw(straightline_ops()) for _ in range(thread_count)]
    threads = {f"T{i}": build_body(spec) for i, spec in enumerate(specs, 1)}
    return Program(
        "generated",
        threads=threads,
        initial={v: 0 for v in VARS},
        locks=LOCKS,
    ), specs


@settings(max_examples=40, deadline=None)
@given(small_programs())
def test_random_runs_are_deterministic_per_seed(prog_and_spec):
    prog, _ = prog_and_spec
    a = run_program(prog, RandomScheduler(seed=5))
    b = run_program(prog, RandomScheduler(seed=5))
    assert a.schedule == b.schedule
    assert a.memory == b.memory
    assert a.status == b.status


@settings(max_examples=40, deadline=None)
@given(small_programs(), st.integers(min_value=0, max_value=99))
def test_every_run_is_replayable(prog_and_spec, seed):
    prog, _ = prog_and_spec
    original = run_program(prog, RandomScheduler(seed=seed))
    rerun = replay(prog, original.schedule)
    assert rerun.memory == original.memory
    assert rerun.status == original.status
    assert len(rerun.trace) == len(original.trace)


@settings(max_examples=25, deadline=None)
@given(small_programs(max_threads=2))
def test_exploration_is_exhaustive_and_duplicate_free(prog_and_spec):
    prog, specs = prog_and_spec
    seen = set()

    def record(run):
        key = tuple(run.schedule)
        assert key not in seen
        seen.add(key)
        return False

    from repro.sim import Explorer

    result = Explorer(prog, max_schedules=50000).explore(predicate=record)
    assert result.complete
    assert len(seen) == result.schedules_run
    # Straight-line unlocked threads: schedule count equals the multinomial
    # of per-thread op counts.  (Locked threads serialise, reducing counts,
    # so the multinomial is an upper bound in general.)
    lengths = [len(ops) + (2 if locked else 0) for locked, ops in specs]
    bound = math.factorial(sum(lengths))
    for n in lengths:
        bound //= math.factorial(n)
    assert result.schedules_run <= bound
    if not any(locked for locked, _ in specs):
        assert result.schedules_run == bound


@settings(max_examples=30, deadline=None)
@given(small_programs(), st.integers(min_value=0, max_value=49))
def test_trace_serialisation_round_trips(prog_and_spec, seed):
    prog, _ = prog_and_spec
    trace = run_program(prog, RandomScheduler(seed=seed)).trace
    restored = Trace.from_dicts(trace.to_dicts())
    assert [type(e) for e in restored] == [type(e) for e in trace]
    assert [vars(e) for e in restored] == [vars(e) for e in trace]


@settings(max_examples=30, deadline=None)
@given(small_programs(max_threads=2))
def test_all_generated_programs_terminate_ok(prog_and_spec):
    prog, _ = prog_and_spec
    result = enumerate_outcomes(prog, require_complete=True)
    # One lock, properly nested sections, straight-line code: no schedule
    # can deadlock, crash, or hang.
    assert set(result.statuses) == {RunStatus.OK}


@settings(max_examples=30, deadline=None)
@given(small_programs(), st.integers(min_value=0, max_value=19))
def test_schedule_entries_name_real_threads(prog_and_spec, seed):
    prog, _ = prog_and_spec
    result = run_program(prog, RandomScheduler(seed=seed))
    assert set(result.schedule) <= set(prog.thread_names())
    # Event seq numbers are dense and ordered.
    assert [e.seq for e in result.trace] == list(range(len(result.trace)))
