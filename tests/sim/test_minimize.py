"""Witness-minimisation tests."""

import pytest

from repro.errors import ReplayError
from repro.sim import (
    RandomScheduler,
    RunStatus,
    minimize_preemptions,
    preemption_count,
    replay,
    run_program,
)
from tests import helpers


class TestPreemptionCount:
    def test_serial_schedule_has_zero(self):
        prog = helpers.racy_counter()
        assert preemption_count(prog, ["T1", "T1", "T2", "T2"]) == 0

    def test_single_preemption_counted(self):
        prog = helpers.racy_counter()
        assert preemption_count(prog, ["T1", "T2", "T2", "T1"]) == 1

    def test_alternation_counts_only_preemptive_switches(self):
        prog = helpers.racy_counter()
        # T1.read, T2.read (preempt), T1.write (preempt), T2.write — the
        # final switch is free because T1 finished at its write.
        assert preemption_count(prog, ["T1", "T2", "T1", "T2"]) == 2

    def test_forced_switch_is_free(self):
        # After T1 finishes both ops, moving to T2 is not a preemption.
        prog = helpers.locked_counter()
        schedule = ["T1"] * 4 + ["T2"] * 4
        assert preemption_count(prog, schedule) == 0

    def test_switch_away_from_blocked_thread_is_free(self):
        prog = helpers.abba_deadlock()
        # T1 acquires A (T2 still enabled on B): switching to T2 is one
        # preemption; T1 then blocks on B so the deadlock costs nothing more.
        assert preemption_count(prog, ["T1", "T2"]) == 1

    def test_wrong_schedule_raises(self):
        prog = helpers.racy_counter()
        with pytest.raises(ReplayError):
            preemption_count(prog, ["T1"])


class TestMinimize:
    def test_lost_update_needs_one_preemption(self):
        prog = helpers.racy_counter()
        witness = minimize_preemptions(
            prog, predicate=lambda r: r.memory["counter"] == 1
        )
        assert witness is not None
        assert witness.preemptions == 1
        rerun = replay(prog, witness.run.schedule)
        assert rerun.memory["counter"] == 1

    def test_self_deadlock_needs_zero(self):
        witness = minimize_preemptions(
            helpers.self_deadlock(), predicate=lambda r: r.failed
        )
        assert witness.preemptions == 0

    def test_impossible_failure_returns_none(self):
        witness = minimize_preemptions(
            helpers.locked_counter(),
            predicate=lambda r: r.memory["counter"] == 1,
            max_bound=3,
        )
        assert witness is None

    def test_every_kernel_fails_within_one_preemption(self):
        """The CHESS small-bound claim, measured on all nine kernels."""
        from repro.kernels import all_kernels

        for kernel in all_kernels():
            witness = minimize_preemptions(kernel.buggy, kernel.failure)
            assert witness is not None, kernel.name
            assert witness.preemptions <= 1, kernel.name

    def test_witness_is_no_worse_than_random_finds(self):
        prog = helpers.racy_counter()
        witness = minimize_preemptions(
            prog, predicate=lambda r: r.memory["counter"] == 1
        )
        # Any random failing run has at least as many preemptions.
        for seed in range(40):
            run = run_program(prog, RandomScheduler(seed=seed))
            if run.memory["counter"] == 1:
                assert (
                    preemption_count(prog, run.schedule) >= witness.preemptions
                )

    def test_summary_mentions_counts(self):
        witness = minimize_preemptions(
            helpers.abba_deadlock(), predicate=lambda r: r.failed
        )
        text = witness.summary()
        assert "preemption" in text
        assert "witness" in text
