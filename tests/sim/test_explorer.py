"""Exploration tests: counting, completeness, bounds, search."""

import math

import pytest

from repro.errors import ExplorationError
from repro.sim import (
    Explorer,
    Program,
    Read,
    RunStatus,
    Write,
    Yield,
    enumerate_outcomes,
    find_schedule,
)
from tests import helpers


def interleaving_count(*lengths):
    """Number of interleavings of independent straight-line threads."""
    total = math.factorial(sum(lengths))
    for n in lengths:
        total //= math.factorial(n)
    return total


class TestEnumeration:
    def test_two_by_two_has_six_schedules(self):
        result = enumerate_outcomes(helpers.racy_counter(), require_complete=True)
        assert result.schedules_run == interleaving_count(2, 2) == 6
        assert result.complete

    def test_three_threads_count(self):
        result = enumerate_outcomes(
            helpers.racy_counter(threads=3), require_complete=True
        )
        assert result.schedules_run == interleaving_count(2, 2, 2) == 90

    def test_yield_only_counts(self):
        result = enumerate_outcomes(
            helpers.yield_only(steps=3, threads=2), require_complete=True
        )
        assert result.schedules_run == interleaving_count(3, 3) == 20

    def test_outcome_partition_sums_to_total(self):
        result = enumerate_outcomes(helpers.racy_counter(), require_complete=True)
        assert sum(result.outcomes.values()) == result.schedules_run

    def test_racy_counter_outcome_split(self):
        result = enumerate_outcomes(helpers.racy_counter(), require_complete=True)
        by_counter = {
            key[1][0][1]: count for key, count in result.outcomes.items()
        }
        assert by_counter == {1: 4, 2: 2}

    def test_locked_counter_single_outcome(self):
        result = enumerate_outcomes(helpers.locked_counter(), require_complete=True)
        assert len(result.outcomes) == 1
        ((key, count),) = result.outcomes.items()
        assert key[0] == "ok"

    def test_deadlock_counted(self):
        result = enumerate_outcomes(helpers.abba_deadlock(), require_complete=True)
        assert result.statuses[RunStatus.DEADLOCK] == 2
        assert result.statuses[RunStatus.OK] == 4
        assert result.failure_rate() == pytest.approx(2 / 6)


class TestBudgets:
    def test_budget_exhaustion_flagged(self):
        explorer = Explorer(helpers.racy_counter(threads=3), max_schedules=10)
        result = explorer.explore(predicate=lambda run: False)
        assert result.schedules_run == 10
        assert not result.complete

    def test_require_complete_raises_on_budget(self):
        with pytest.raises(ExplorationError, match="budget"):
            enumerate_outcomes(
                helpers.racy_counter(threads=3),
                max_schedules=10,
                require_complete=True,
            )

    def test_preemption_bound_zero_is_nonpreemptive_only(self):
        result = Explorer(
            helpers.racy_counter(), preemption_bound=0
        ).explore(predicate=lambda run: False)
        # Only the two thread orders survive: T1 whole then T2, or reverse.
        assert result.schedules_run == 2

    def test_preemption_bound_grows_coverage(self):
        counts = []
        for bound in (0, 1, 2):
            result = Explorer(
                helpers.racy_counter(), preemption_bound=bound
            ).explore(predicate=lambda run: False)
            counts.append(result.schedules_run)
        assert counts[0] < counts[1] <= counts[2]
        # Bound 2 on a 2x2-op program is already everything.
        assert counts[2] == 6

    def test_single_preemption_suffices_for_lost_update(self):
        run = find_schedule(
            helpers.racy_counter(),
            predicate=lambda r: r.memory["counter"] == 1,
            preemption_bound=1,
        )
        assert run is not None


class TestSearch:
    def test_find_schedule_returns_matching_run(self):
        run = find_schedule(
            helpers.racy_counter(), predicate=lambda r: r.memory["counter"] == 1
        )
        assert run is not None
        assert run.memory["counter"] == 1

    def test_find_schedule_none_when_impossible(self):
        run = find_schedule(
            helpers.locked_counter(), predicate=lambda r: r.memory["counter"] == 1
        )
        assert run is None

    def test_default_predicate_finds_failures(self):
        result = Explorer(helpers.abba_deadlock()).explore()
        assert result.found
        assert all(r.status is RunStatus.DEADLOCK for r in result.matching)

    def test_first_match_schedule_is_replayable(self):
        from repro.sim import replay

        prog = helpers.null_deref_race()
        result = Explorer(prog).explore(stop_on_first=True)
        assert result.first_match_schedule is not None
        rerun = replay(prog, result.first_match_schedule)
        assert rerun.status is RunStatus.CRASH

    def test_keep_matches_caps_storage(self):
        explorer = Explorer(helpers.abba_deadlock(), keep_matches=1)
        result = explorer.explore()
        assert len(result.matching) == 1
        assert result.statuses[RunStatus.DEADLOCK] == 2

    def test_matching_runs_satisfy_predicate(self):
        result = Explorer(helpers.racy_counter()).explore(
            predicate=lambda r: r.memory["counter"] == 2
        )
        assert all(r.memory["counter"] == 2 for r in result.matching)
        assert len(result.matching) == 2


class TestExhaustivenessAgainstBruteForce:
    def test_every_schedule_is_unique(self):
        seen = set()

        def record(run):
            key = tuple(run.schedule)
            assert key not in seen, "duplicate schedule explored"
            seen.add(key)
            return False

        result = Explorer(helpers.racy_counter(threads=3)).explore(predicate=record)
        assert len(seen) == result.schedules_run == 90

    def test_blocked_programs_explored_fully(self):
        # Locked counter: schedules differ only in lock-grant order.
        result = enumerate_outcomes(helpers.locked_counter(), require_complete=True)
        # Each thread does 4 ops; the lock serialises them, so the only
        # choice is who goes first: 2 schedules.
        assert result.schedules_run == 2

    def test_summary_mentions_counts(self):
        result = enumerate_outcomes(helpers.racy_counter(), require_complete=True)
        text = result.summary()
        assert "6 schedules" in text
        assert "complete" in text
