"""Program generator and fuzz-harness tests (kept fast: small budgets)."""

import pytest

from repro.sim import Explorer, RandomScheduler, RunStatus, run_program
from repro.sim.generate import FuzzReport, GeneratorConfig, fuzz_explorers, generate_program


class TestGenerateProgram:
    def test_deterministic_in_seed(self):
        a = generate_program(42)
        b = generate_program(42)
        assert a.thread_names() == b.thread_names()
        run_a = run_program(a, RandomScheduler(seed=1))
        run_b = run_program(b, RandomScheduler(seed=1))
        assert run_a.memory == run_b.memory
        assert run_a.schedule == run_b.schedule

    def test_different_seeds_differ_eventually(self):
        shapes = {
            tuple(generate_program(seed).thread_names()) for seed in range(20)
        }
        assert len(shapes) > 1

    def test_default_config_never_deadlocks(self):
        for seed in range(15):
            program = generate_program(seed)
            result = Explorer(program, max_schedules=3000).explore(
                predicate=lambda run: run.status is RunStatus.DEADLOCK,
                stop_on_first=True,
            )
            assert not result.found, seed

    def test_deadlock_config_can_deadlock(self):
        config = GeneratorConfig(allow_deadlock=True, crash_probability=0.0)
        found_one = False
        for seed in range(40):
            program = generate_program(seed, config)
            result = Explorer(program, max_schedules=4000).explore(
                predicate=lambda run: run.status is RunStatus.DEADLOCK,
                stop_on_first=True,
            )
            if result.found:
                found_one = True
                break
        assert found_one

    def test_crash_probability_zero_never_crashes(self):
        config = GeneratorConfig(crash_probability=0.0)
        for seed in range(20):
            run = run_program(generate_program(seed, config), RandomScheduler(seed=seed))
            assert run.status is not RunStatus.CRASH

    def test_generated_programs_terminate(self):
        for seed in range(20):
            run = run_program(generate_program(seed), RandomScheduler(seed=0))
            assert run.status in (RunStatus.OK, RunStatus.CRASH)


class TestFuzzExplorers:
    def test_no_divergence_on_default_family(self):
        report = fuzz_explorers(programs=15, max_schedules=3000)
        assert report.clean, report.mismatch_seeds
        assert report.programs > 10
        assert report.total_reduced_schedules <= report.total_full_schedules

    def test_no_divergence_with_deadlocks(self):
        config = GeneratorConfig(allow_deadlock=True)
        report = fuzz_explorers(programs=15, max_schedules=4000, config=config)
        assert report.clean, report.mismatch_seeds

    def test_reduction_factor_reported(self):
        report = fuzz_explorers(programs=15, max_schedules=4000)
        assert report.reduction_factor() >= 1.0
        assert "reduction" in report.summary()

    def test_over_budget_programs_skipped_not_failed(self):
        report = fuzz_explorers(programs=10, max_schedules=5)
        assert report.clean
        assert report.skipped > 0
        assert "over budget" in report.summary()

    def test_empty_report_is_clean(self):
        report = FuzzReport()
        assert report.clean
        assert report.reduction_factor() == 1.0
