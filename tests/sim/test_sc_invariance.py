"""Refactor-invariance guard: the SC path is bit-identical to pre-refactor.

``tests/data/sc_invariance.json`` was captured (``tools/capture_sc_baseline.py``)
against commit 5d82cca — the tree where ``SharedMemory`` *was* the memory
layer, before it became the pluggable ``MemoryModel`` family.  This test
re-measures every (kernel, explorer config) cell on the current tree and
asserts the whole row — outcome-set digest, schedules run, states
expanded, cache hits, status tally, DPOR telemetry — matches the golden
file exactly.  Not just "same outcomes": the *explored tree itself* must
be unchanged, which is the ISSUE's definition of the SC path being a
pure refactor.

If a cell legitimately changes (a new reduction, a scheduler fix), re-run
the capture tool against the new tree and say why in the commit.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.kernels import all_kernels
from repro.sim.explorer import make_explorer

GOLDEN = Path(__file__).resolve().parent.parent / "data" / "sc_invariance.json"
DATA = json.loads(GOLDEN.read_text(encoding="utf-8"))

#: Mirrors tools/capture_sc_baseline.py CONFIGS — keep in lockstep.
CONFIGS = {
    "dfs": {"reduction": None},
    "dfs-bound2": {"reduction": None, "preemption_bound": 2},
    "dfs-memo": {"reduction": None, "memoize": True},
    "sleepset": {"reduction": "sleepset"},
    "dpor": {"reduction": "dpor"},
    "dpor-memo": {"reduction": "dpor", "memoize": True},
    "dpor-bound2": {"reduction": "dpor", "preemption_bound": 2},
}

SC_KERNELS = {k.name: k for k in all_kernels(family="sc")}


def _outcome_digest(outcomes) -> str:
    body = repr(sorted(outcomes, key=repr))
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


def _measure(program, config, workers=None) -> dict:
    explorer = make_explorer(
        program,
        max_schedules=20000,
        max_steps=5000,
        preemption_bound=config.get("preemption_bound"),
        memoize=config.get("memoize", False),
        reduction=config.get("reduction"),
        workers=workers,
    )
    result = explorer.explore(predicate=lambda run: False)
    row = {
        "outcome_digest": _outcome_digest(result.outcomes),
        "schedules_run": result.schedules_run,
        "complete": result.complete,
        "states_expanded": result.states_expanded,
        "cache_hits": result.cache_hits,
        "statuses": {
            status.value: count for status, count in sorted(
                result.statuses.items(), key=lambda item: item[0].value
            )
        },
    }
    if config.get("reduction") == "dpor":
        row["dpor"] = {
            "races_detected": explorer.races_detected,
            "backtrack_points": explorer.backtrack_points,
            "pruned_runs": explorer.pruned_runs,
        }
    return row


def test_golden_file_covers_the_sc_family_exactly():
    assert DATA["schema"] == "repro.sc-invariance/v1"
    assert set(DATA["kernels"]) == set(SC_KERNELS)
    for name, rows in DATA["kernels"].items():
        assert set(rows) == set(CONFIGS), name


@pytest.mark.parametrize("name", sorted(SC_KERNELS), ids=str)
def test_sc_exploration_matches_pre_refactor_baseline(name):
    kernel = SC_KERNELS[name]
    golden_rows = DATA["kernels"][name]
    for config_name, config in CONFIGS.items():
        measured = _measure(kernel.buggy, config)
        assert measured == golden_rows[config_name], (
            f"{name}/{config_name}: SC exploration diverged from the "
            f"pre-refactor baseline"
        )


@pytest.mark.parametrize("config_name", ["dfs", "dpor"])
def test_parallel_sc_exploration_matches_baseline(config_name):
    # Parallel merges are bit-identical to serial by construction; one
    # kernel per config keeps the fork-pool cost bounded.
    kernel = SC_KERNELS["atomicity_single_var"]
    golden = DATA["kernels"]["atomicity_single_var"][config_name]
    measured = _measure(kernel.buggy, CONFIGS[config_name], workers=2)
    assert measured["outcome_digest"] == golden["outcome_digest"]
    assert measured["statuses"] == golden["statuses"]
    assert measured["complete"] == golden["complete"]
    assert measured["schedules_run"] == golden["schedules_run"]
