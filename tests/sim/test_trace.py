"""Trace query and serialisation tests."""

import pytest

from repro.sim import (
    CooperativeScheduler,
    FixedScheduler,
    RoundRobinScheduler,
    Trace,
    run_program,
)
from repro.sim import events as ev
from tests import helpers


def trace_of(program, scheduler=None):
    return run_program(program, scheduler or RoundRobinScheduler()).trace


class TestQueries:
    def test_memory_accesses_filters_to_reads_writes(self):
        trace = trace_of(helpers.locked_counter())
        accesses = trace.memory_accesses()
        assert all(e.is_memory_access for e in accesses)
        assert len(accesses) == 4  # 2 threads x (read + write)

    def test_memory_accesses_by_variable(self):
        trace = trace_of(helpers.null_deref_race(), CooperativeScheduler())
        # Init runs first under cooperative order? Reader is first declared:
        # it reads ptr then crashes or proceeds; either way ptr accesses exist.
        assert trace.memory_accesses("ptr")
        assert trace.memory_accesses("nonexistent") == []

    def test_variables_touched_in_first_touch_order(self):
        trace = trace_of(helpers.spawn_join_chain(), CooperativeScheduler())
        assert trace.variables_touched() == ["result", "observed"]

    def test_threads_listed(self):
        trace = trace_of(helpers.racy_counter())
        assert set(trace.threads()) >= {"T1", "T2"}

    def test_by_thread_is_ordered_subset(self):
        trace = trace_of(helpers.racy_counter())
        events = trace.by_thread("T1")
        assert all(e.thread == "T1" for e in events)
        assert [e.seq for e in events] == sorted(e.seq for e in events)

    def test_labelled_lookup(self):
        from repro.sim import Program, Read, Write

        def body():
            value = yield Read("x", label="site-A")
            yield Write("x", value + 1, label="site-B")

        prog = Program("labels", threads={"T": body}, initial={"x": 0})
        trace = trace_of(prog, CooperativeScheduler())
        assert len(trace.labelled("site-A")) == 1
        assert len(trace.labelled("site-B")) == 1
        assert trace.labelled("site-C") == []

    def test_crashes_collected(self):
        result = run_program(
            helpers.null_deref_race(), FixedScheduler(["Reader"], strict=False)
        )
        crashes = result.trace.crashes()
        assert len(crashes) == 1
        assert crashes[0].thread == "Reader"

    def test_deadlock_event_found(self):
        result = run_program(
            helpers.abba_deadlock(), FixedScheduler(["T1", "T2"], strict=False)
        )
        deadlock = result.trace.deadlock()
        assert deadlock is not None
        assert len(deadlock.blocked) == 2

    def test_no_deadlock_returns_none(self):
        trace = trace_of(helpers.locked_counter())
        assert trace.deadlock() is None

    def test_critical_sections_extents(self):
        trace = trace_of(helpers.locked_counter(), CooperativeScheduler())
        sections = trace.critical_sections()
        assert len(sections) == 2
        for thread, lock, start, end in sections:
            assert lock == "L"
            assert start < end

    def test_lock_events_filter(self):
        trace = trace_of(helpers.locked_counter())
        assert len(trace.lock_events("L")) == 4
        assert trace.lock_events("M") == []


class TestAppendDiscipline:
    def test_appending_wrong_seq_raises(self):
        trace = Trace()
        with pytest.raises(ValueError, match="seq 5"):
            trace.append(ev.YieldEvent(seq=5, thread="T"))

    def test_sequential_appends_accepted(self):
        trace = Trace()
        trace.append(ev.YieldEvent(seq=0, thread="T"))
        trace.append(ev.YieldEvent(seq=1, thread="T"))
        assert len(trace) == 2


class TestSerialisation:
    def test_round_trip_preserves_events(self):
        original = trace_of(helpers.lost_wakeup())
        restored = Trace.from_dicts(original.to_dicts())
        assert len(restored) == len(original)
        for a, b in zip(original, restored):
            assert type(a) is type(b)
            assert vars(a) == vars(b)

    def test_round_trip_through_json(self):
        import json

        original = trace_of(helpers.abba_deadlock(), FixedScheduler(["T1", "T2"], strict=False))
        text = json.dumps(original.to_dicts())
        restored = Trace.from_dicts(json.loads(text))
        deadlock = restored.deadlock()
        assert deadlock is not None
        assert deadlock.blocked == original.deadlock().blocked

    def test_unknown_event_type_rejected(self):
        with pytest.raises(ValueError, match="unknown event type"):
            Trace.from_dicts([{"type": "Bogus", "seq": 0, "thread": "T"}])

    def test_format_is_readable(self):
        trace = trace_of(helpers.racy_counter())
        text = trace.format()
        assert "read" in text and "write" in text

    def test_format_limit_truncates(self):
        trace = trace_of(helpers.racy_counter())
        text = trace.format(limit=2)
        assert "more events" in text


class TestColumnRendering:
    def test_one_column_per_thread(self):
        trace = trace_of(helpers.racy_counter())
        text = trace.format_columns(width=20)
        header = text.splitlines()[0]
        assert "T1" in header and "T2" in header

    def test_events_land_in_their_column(self):
        from repro.sim import FixedScheduler

        result = run_program(
            helpers.racy_counter(), FixedScheduler(["T1", "T1", "T2", "T2"])
        )
        lines = result.trace.format_columns(width=20).splitlines()
        # After header+rule: T1's events are left-aligned, T2's indented.
        body = lines[2:]
        t1_lines = [l for l in body if l.startswith("start") or l.startswith("read") or l.startswith("write") or l.startswith("finish")]
        t2_lines = [l for l in body if l.startswith(" ")]
        assert t1_lines and t2_lines

    def test_empty_trace_handled(self):
        from repro.sim import Trace

        assert Trace().format_columns() == "(empty trace)"
