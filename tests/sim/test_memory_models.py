"""Property tests for the pluggable memory models.

Three contracts from the ISSUE:

* **TSO semantics** — store buffers forward to their own thread, keep
  other threads on the stale global value, and flush FIFO.
* **Fenced TSO ≡ SC** — a program that fences after *every* store has
  no observable store-buffer reorderings: its terminal outcome set under
  TSO equals the same program's outcome set under SC.
* **Weak-memory bugs are model-gated** — the store-buffering litmus
  outcome (and the weakmem kernel's failure) is unreachable under SC and
  found under TSO; and DPOR stays sound on the extended vocabulary
  (flush steps, channels): its outcome set matches plain DFS exactly.
"""

from __future__ import annotations

import pytest

from repro.errors import ProgramError
from repro.kernels import get_kernel
from repro.sim import Fence, Program, Read, Write
from repro.sim.explorer import make_explorer
from repro.sim.memory import (
    FLUSH_PREFIX,
    SCMemory,
    SharedMemory,
    TSOMemory,
    flush_label,
    make_memory_model,
)

# ---------------------------------------------------------------------------
# TSOMemory unit semantics
# ---------------------------------------------------------------------------


class TestTSOMemoryUnit:
    def test_store_to_load_forwarding_newest_wins(self):
        mem = TSOMemory({"x": 0})
        mem.write("x", 1, thread="T0", label="a")
        mem.write("x", 2, thread="T0", label="b")
        assert mem.read("x", thread="T0") == 2  # own newest buffered value
        assert mem.read("x", thread="T1") == 0  # stale global for others
        assert mem.read("x") == 0  # thread=None is the global view

    def test_flush_is_fifo_and_returns_entry(self):
        mem = TSOMemory({"x": 0, "y": 0})
        mem.write("x", 1, thread="T0", label="wx")
        mem.write("y", 2, thread="T0", label="wy")
        assert mem.peek("T0") == ("x", 1, "wx")
        assert mem.flush_one("T0") == ("x", 1, 0, "wx")
        assert mem.read("x") == 1 and mem.read("y") == 0
        assert mem.flush_one("T0") == ("y", 2, 0, "wy")
        assert not mem.has_buffered()

    def test_buffers_protocol_tracks_owners(self):
        mem = TSOMemory({"x": 0})
        assert mem.flushable() == () and not mem.has_buffered("T0")
        mem.write("x", 1, thread="T1")
        mem.write("x", 2, thread="T0")
        assert mem.flushable() == ("T0", "T1")  # sorted owners
        assert mem.buffers() == {
            "T0": (("x", 2, None),),
            "T1": (("x", 1, None),),
        }
        assert mem.has_buffered("T0") and mem.has_buffered()

    def test_snapshot_merges_buffered_stores(self):
        mem = TSOMemory({"x": 0, "y": 0})
        mem.write("x", 1, thread="T0")
        snap = mem.snapshot()
        assert snap == {"x": 1, "y": 0}  # buffered store applied
        assert mem.read("x") == 0  # ... without mutating the global state

    def test_flush_without_buffered_store_raises(self):
        mem = TSOMemory({"x": 0})
        with pytest.raises(ProgramError):
            mem.flush_one("T0")
        with pytest.raises(ProgramError):
            mem.peek("T0")

    def test_sc_has_no_buffers_and_keeps_alias(self):
        mem = SCMemory({"x": 0})
        mem.write("x", 1, thread="T0")
        assert mem.read("x", thread="T1") == 1  # immediately visible
        assert mem.buffers() == {} and mem.flushable() == ()
        assert SharedMemory is SCMemory  # the historical name still works

    def test_registry_dispatch_and_unknown_model(self):
        assert isinstance(make_memory_model("sc", {}), SCMemory)
        assert isinstance(make_memory_model("tso", {}), TSOMemory)
        with pytest.raises(ProgramError, match="unknown memory model"):
            make_memory_model("arm", {})

    def test_flush_label_derivation(self):
        assert flush_label("t0.announce") == FLUSH_PREFIX + "t0.announce"
        assert flush_label(None) is None


# ---------------------------------------------------------------------------
# Litmus programs and the fencing transform
# ---------------------------------------------------------------------------


def _sb_litmus(memory):
    """Store buffering: r0=0 ∧ r1=0 is the TSO-only outcome."""

    def t0():
        yield Write("x", 1)
        r0 = yield Read("y")
        yield Write("r0", r0)

    def t1():
        yield Write("y", 1)
        r1 = yield Read("x")
        yield Write("r1", r1)

    return Program(
        f"sb-litmus({memory})",
        threads={"T0": t0, "T1": t1},
        initial={"x": 0, "y": 0, "r0": None, "r1": None},
        memory=memory,
    )


def _mp_litmus(memory):
    """Message passing: TSO's FIFO buffers preserve store order, so the
    r1=1 ∧ r2=0 outcome is unreachable under *both* models."""

    def writer():
        yield Write("data", 1)
        yield Write("flag", 1)

    def reader():
        r1 = yield Read("flag")
        r2 = yield Read("data")
        yield Write("r1", r1)
        yield Write("r2", r2)

    return Program(
        f"mp-litmus({memory})",
        threads={"W": writer, "R": reader},
        initial={"data": 0, "flag": 0, "r1": None, "r2": None},
        memory=memory,
    )


def _fence_after_every_store(program):
    """The program with a ``Fence`` appended after every ``Write``."""

    def fenced(body):
        def wrapper():
            gen = body()
            sent = None
            while True:
                try:
                    op = gen.send(sent)
                except StopIteration:
                    return
                sent = yield op
                if isinstance(op, Write):
                    yield Fence()

        return wrapper

    threads = {name: fenced(body) for name, body in program.threads.items()}
    return program.with_threads(threads, name=f"{program.name}+fences")


def _outcomes(program, reduction="dpor"):
    explorer = make_explorer(
        program, max_schedules=50000, max_steps=5000, reduction=reduction
    )
    result = explorer.explore(predicate=lambda run: False)
    assert result.complete, program.name
    return set(result.outcomes)


# ---------------------------------------------------------------------------
# Fenced TSO ≡ SC
# ---------------------------------------------------------------------------


class TestFencedTSOEqualsSC:
    @pytest.mark.parametrize("litmus", [_sb_litmus, _mp_litmus], ids=["sb", "mp"])
    def test_litmus_fenced_tso_matches_sc(self, litmus):
        sc = _outcomes(litmus("sc"))
        fenced_tso = _outcomes(_fence_after_every_store(litmus("tso")))
        assert fenced_tso == sc

    def test_weakmem_kernel_fenced_tso_matches_sc(self):
        kernel = get_kernel("weakmem_store_buffer")
        sc = _outcomes(kernel.buggy.with_memory("sc"))
        fenced_tso = _outcomes(_fence_after_every_store(kernel.buggy))
        assert fenced_tso == sc

    def test_sb_relaxed_outcome_is_tso_only(self):
        sc = _outcomes(_sb_litmus("sc"))
        tso = _outcomes(_sb_litmus("tso"))
        relaxed = tso - sc

        def both_zero(outcome):
            memory = dict(outcome[1])
            return memory["r0"] == 0 and memory["r1"] == 0

        assert sc < tso  # TSO only *adds* behaviours
        assert any(both_zero(o) for o in relaxed)
        assert not any(both_zero(o) for o in sc)

    def test_mp_litmus_needs_no_fence_under_tso(self):
        # FIFO buffers keep the data→flag store order: the reader can
        # never see the flag without the data under either model.
        assert _outcomes(_mp_litmus("tso")) == _outcomes(_mp_litmus("sc"))


# ---------------------------------------------------------------------------
# Model-gated manifestation + DPOR soundness on the extended vocabulary
# ---------------------------------------------------------------------------


class TestModelGatedManifestation:
    def test_weakmem_kernel_manifests_under_tso_only(self):
        kernel = get_kernel("weakmem_store_buffer")
        assert kernel.buggy.memory == "tso"
        found = kernel.find_manifestation()
        assert found is not None

        sc = make_explorer(
            kernel.buggy.with_memory("sc"), max_schedules=50000, max_steps=5000,
            reduction="dpor",
        ).explore(predicate=kernel.failure)
        assert sc.complete  # the whole SC space was searched ...
        assert not sc.found  # ... and the bug is unreachable in it

    @pytest.mark.parametrize(
        "program_name",
        ["weakmem_store_buffer", "actor_mailbox_order", "actor_lost_message"],
    )
    def test_dpor_matches_dfs_on_extended_vocabulary(self, program_name):
        # Soundness of the dependence relation over flush steps and
        # channel ops: the reduced search must reach the exact same
        # terminal outcome set as the exhaustive one.
        program = get_kernel(program_name).buggy
        assert _outcomes(program, reduction="dpor") == _outcomes(
            program, reduction=None
        )
