"""Scheduler policy tests: determinism and policy shape."""

import pytest

from repro.errors import ReplayError, SchedulerError
from repro.sim import (
    CooperativeScheduler,
    FixedScheduler,
    PCTScheduler,
    Program,
    RandomScheduler,
    RoundRobinScheduler,
    RunStatus,
    Yield,
    run_program,
)
from tests import helpers


class TestRandomScheduler:
    def test_same_seed_same_schedule(self):
        prog = helpers.racy_counter(threads=3)
        first = run_program(prog, RandomScheduler(seed=7))
        second = run_program(prog, RandomScheduler(seed=7))
        assert first.schedule == second.schedule
        assert first.memory == second.memory

    def test_different_seeds_eventually_differ(self):
        prog = helpers.racy_counter(threads=3)
        schedules = {
            tuple(run_program(prog, RandomScheduler(seed=s)).schedule)
            for s in range(20)
        }
        assert len(schedules) > 1

    def test_reset_restores_seed_stream(self):
        scheduler = RandomScheduler(seed=3)
        prog = helpers.racy_counter(threads=3)
        first = run_program(prog, scheduler)
        second = run_program(prog, scheduler)  # engine calls reset()
        assert first.schedule == second.schedule


class TestCooperativeScheduler:
    def test_runs_one_thread_to_completion_first(self):
        prog = helpers.racy_counter()
        result = run_program(prog, CooperativeScheduler())
        # The first thread's two ops happen before the second thread starts.
        assert result.schedule == ["T1", "T1", "T2", "T2"]

    def test_no_lost_update_without_preemption(self):
        result = run_program(helpers.racy_counter(), CooperativeScheduler())
        assert result.memory["counter"] == 2

    def test_moves_on_when_current_blocks(self):
        result = run_program(helpers.semaphore_pingpong(), CooperativeScheduler())
        assert result.status is RunStatus.OK
        assert result.memory["turns"] == 4


class TestRoundRobinScheduler:
    def test_alternates_between_enabled_threads(self):
        prog = helpers.yield_only(steps=2, threads=2)
        result = run_program(prog, RoundRobinScheduler())
        assert result.schedule == ["T1", "T2", "T1", "T2"]

    def test_wraps_around_thread_order(self):
        prog = helpers.yield_only(steps=1, threads=3)
        result = run_program(prog, RoundRobinScheduler())
        assert result.schedule == ["T1", "T2", "T3"]


class TestPCTScheduler:
    def test_deterministic_given_seed(self):
        prog = helpers.racy_counter(threads=3)
        a = run_program(prog, PCTScheduler(seed=11, depth=2))
        b = run_program(prog, PCTScheduler(seed=11, depth=2))
        assert a.schedule == b.schedule

    def test_depth_must_be_positive(self):
        with pytest.raises(SchedulerError):
            PCTScheduler(seed=0, depth=0)

    def test_depth_one_is_pure_priority(self):
        # With no change points, the highest-priority thread runs to the end
        # whenever enabled, so every run is non-preemptive.
        prog = helpers.racy_counter()
        result = run_program(prog, PCTScheduler(seed=5, depth=1))
        assert result.schedule in (
            ["T1", "T1", "T2", "T2"],
            ["T2", "T2", "T1", "T1"],
        )

    def test_finds_racy_outcome_across_seeds(self):
        # Horizon matched to program length so the priority-change point
        # actually lands inside the run (PCT's k parameter).
        prog = helpers.racy_counter()
        outcomes = {
            run_program(
                prog, PCTScheduler(seed=s, depth=2, horizon=5)
            ).memory["counter"]
            for s in range(40)
        }
        assert 1 in outcomes  # the lost update shows up within a few runs


class TestFixedScheduler:
    def test_replays_exact_sequence(self):
        prog = helpers.racy_counter()
        result = run_program(prog, FixedScheduler(["T1", "T2", "T2", "T1"]))
        assert result.memory["counter"] == 1

    def test_strict_mode_rejects_disabled_choice(self):
        prog = helpers.locked_counter()
        # T2 cannot run its second op (read under lock) while T1 holds L.
        with pytest.raises(ReplayError, match="not enabled"):
            run_program(prog, FixedScheduler(["T1", "T2", "T2"]))

    def test_strict_mode_rejects_truncated_schedule(self):
        prog = helpers.racy_counter()
        with pytest.raises(ReplayError, match="exhausted"):
            run_program(prog, FixedScheduler(["T1"]))

    def test_lenient_mode_falls_back(self):
        prog = helpers.racy_counter()
        result = run_program(prog, FixedScheduler(["T2"], strict=False))
        assert result.status is RunStatus.OK

    def test_reset_rewinds_replay(self):
        scheduler = FixedScheduler(["T1", "T2", "T2", "T1"])
        prog = helpers.racy_counter()
        first = run_program(prog, scheduler)
        second = run_program(prog, scheduler)
        assert first.schedule == second.schedule == ["T1", "T2", "T2", "T1"]
