"""Unit tests for repro.sim.memory."""

import pytest

from repro.errors import ProgramError
from repro.sim.memory import SharedMemory


def test_read_returns_initial_value():
    mem = SharedMemory({"x": 7})
    assert mem.read("x") == 7


def test_write_returns_old_value():
    mem = SharedMemory({"x": 1})
    assert mem.write("x", 2) == 1
    assert mem.read("x") == 2


def test_update_returns_old_and_new():
    mem = SharedMemory({"x": 10})
    old, new = mem.update("x", lambda v: v * 2)
    assert (old, new) == (10, 20)
    assert mem.read("x") == 20


def test_undeclared_read_raises():
    mem = SharedMemory({"x": 0})
    with pytest.raises(ProgramError, match="undeclared shared variable 'y'"):
        mem.read("y")


def test_undeclared_write_raises():
    mem = SharedMemory({})
    with pytest.raises(ProgramError):
        mem.write("ghost", 1)


def test_undeclared_update_raises():
    mem = SharedMemory({})
    with pytest.raises(ProgramError):
        mem.update("ghost", lambda v: v)


def test_initial_values_are_deep_copied():
    initial = {"lst": [1, 2]}
    mem = SharedMemory(initial)
    initial["lst"].append(3)
    assert mem.read("lst") == [1, 2]


def test_snapshot_is_independent_copy():
    mem = SharedMemory({"lst": [1]})
    snap = mem.snapshot()
    snap["lst"].append(2)
    assert mem.read("lst") == [1]


def test_contains_and_variables():
    mem = SharedMemory({"a": 0, "b": 1})
    assert "a" in mem
    assert "c" not in mem
    assert sorted(mem.variables()) == ["a", "b"]


def test_values_can_be_arbitrary_objects():
    sentinel = object()
    mem = SharedMemory({"obj": sentinel})
    # deepcopy of a plain object() produces a distinct instance
    assert isinstance(mem.read("obj"), object)
    mem.write("obj", None)
    assert mem.read("obj") is None
