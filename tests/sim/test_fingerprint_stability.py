"""Cross-process stability of the persistent-cache program fingerprints.

The service result cache (``docs/service.md``) survives interpreter
restarts, so its keys — :func:`repro.sim.statecache.program_fingerprint`
digests — must be pure functions of program *content*: no ``id()``, no
hash-seed-dependent iteration order, no memory addresses, no file
locations.  These tests pin that contract:

* the same three kernels fingerprint identically in this process and in
  fresh subprocess invocations under different ``PYTHONHASHSEED``s;
* rebuilding a value-identical program yields the same digest
  (value-based, not identity-based);
* editing a thread body, an initial value, or a declaration changes it.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

from repro.sim import Program, Read, Write
from repro.sim.statecache import (
    canonical_value,
    fingerprint_digest,
    program_fingerprint,
)

#: The three kernels the regression pins (one per studied bug class).
PINNED_KERNELS = ("atomicity_lost_update", "order_lost_wakeup", "deadlock_abba")

_SUBPROCESS_SNIPPET = """
import sys
from repro.sim.statecache import program_fingerprint
from repro.kernels import get_kernel
for name in {names!r}:
    kernel = get_kernel(name)
    print(name, program_fingerprint(kernel.buggy), program_fingerprint(kernel.fixed))
"""


def _fingerprints_in_subprocess(hash_seed: str) -> dict:
    src = str(Path(__file__).resolve().parents[2] / "src")
    proc = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_SNIPPET.format(names=PINNED_KERNELS)],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": src, "PYTHONHASHSEED": hash_seed, "PATH": ""},
    )
    out = {}
    for line in proc.stdout.splitlines():
        name, buggy, fixed = line.split()
        out[name] = (buggy, fixed)
    return out


def test_kernel_fingerprints_stable_across_interpreter_runs():
    """The regression the persistent cache rests on: digests survive
    fresh interpreters and adversarial hash seeds."""
    from repro.kernels import get_kernel

    local = {
        name: (
            program_fingerprint(get_kernel(name).buggy),
            program_fingerprint(get_kernel(name).fixed),
        )
        for name in PINNED_KERNELS
    }
    for seed in ("0", "1", "424242"):
        assert _fingerprints_in_subprocess(seed) == local, (
            f"program fingerprints drifted under PYTHONHASHSEED={seed}"
        )


def _make_counter(increment_by: int = 1, initial: int = 0) -> Program:
    def inc():
        value = yield Read("counter")
        yield Write("counter", value + increment_by)

    return Program(
        "counter", threads={"T1": inc, "T2": inc},
        initial={"counter": initial}, locks=["L"],
    )


def test_fingerprint_is_value_based_not_identity_based():
    assert program_fingerprint(_make_counter()) == program_fingerprint(
        _make_counter()
    )


def test_fingerprint_changes_with_body_edit():
    assert program_fingerprint(_make_counter(1)) != program_fingerprint(
        _make_counter(2)
    )


def test_fingerprint_changes_with_initial_value():
    assert program_fingerprint(_make_counter(initial=0)) != program_fingerprint(
        _make_counter(initial=7)
    )


def test_fingerprint_changes_with_declarations():
    base = _make_counter()
    extra_lock = Program(
        "counter", threads=dict(base.threads),
        initial=base.initial, locks=["L", "M"],
    )
    renamed = Program(
        "counter2", threads=dict(base.threads),
        initial=base.initial, locks=["L"],
    )
    fingerprints = {
        program_fingerprint(base),
        program_fingerprint(extra_lock),
        program_fingerprint(renamed),
    }
    assert len(fingerprints) == 3


def test_fingerprint_insensitive_to_closure_identity():
    """Two closures capturing equal values canonicalise equally."""
    first, second = _make_counter(5), _make_counter(5)
    assert first.threads["T1"] is not second.threads["T1"]
    assert program_fingerprint(first) == program_fingerprint(second)


class _Opaque:
    """Unpicklable and without __repr__: canonicalisation falls back to
    the default repr, which embeds the instance address."""

    def __reduce__(self):
        raise TypeError("deliberately unpicklable")


def test_stable_canonicalisation_scrubs_addresses():
    a, b = canonical_value(_Opaque(), stable=True), canonical_value(
        _Opaque(), stable=True
    )
    assert a == b
    assert "0x7" not in repr(a)
    # The default (in-process memoization) mode keeps instances distinct:
    # an address-bearing repr must degrade to a miss, never a false hit.
    assert canonical_value(_Opaque()) != canonical_value(_Opaque())


def test_fingerprint_digest_deterministic():
    fp = ("a", (1, 2), b"bytes", 3.5, None)
    assert fingerprint_digest(fp) == fingerprint_digest(fp)
    assert len(fingerprint_digest(fp)) == 64
    assert fingerprint_digest(fp) != fingerprint_digest(fp + ("x",))
