"""State-fingerprint edge cases: what must (and must not) collide.

Memoization is only sound if the fingerprint captures *everything* that
determines future behaviour.  These tests drive small programs to
mid-execution states along chosen schedule prefixes and assert that
states differing in rwlock reader sets, semaphore counts, condition-wait
FIFO order, in-flight atomic closures, or generator locals never share a
fingerprint — and that genuinely equivalent states (independent ops
reordered) do.
"""

from __future__ import annotations

from repro.sim import (
    Acquire,
    Program,
    Read,
    Release,
    SemRelease,
    Wait,
    Write,
    Yield,
)
from repro.sim.engine import Engine
from repro.sim.ops import AtomicUpdate
from repro.sim.scheduler import Scheduler
from repro.sim.statecache import (
    StateCache,
    canonical_value,
    state_fingerprint,
)
from repro.sim.statecache import _canonical_op
from tests import helpers


class _Snapshot(Exception):
    def __init__(self, fingerprint):
        self.fingerprint = fingerprint


class _SnapshotScheduler(Scheduler):
    """Follow a prefix, then capture the state fingerprint and bail out."""

    def __init__(self, prefix):
        self.prefix = list(prefix)
        self.engine = None
        self._index = 0

    def choose(self, enabled, step):
        if self._index >= len(self.prefix):
            raise _Snapshot(state_fingerprint(self.engine))
        choice = self.prefix[self._index]
        self._index += 1
        assert choice in enabled, (choice, sorted(enabled))
        return choice


def fingerprint_after(program: Program, prefix) -> tuple:
    """The state fingerprint at the decision point right after ``prefix``."""
    scheduler = _SnapshotScheduler(prefix)
    engine = Engine(program, scheduler)
    scheduler.engine = engine
    try:
        engine.run()
    except _Snapshot as snapshot:
        return snapshot.fingerprint
    raise AssertionError("program finished before the prefix was consumed")


class TestSyncObjectStates:
    def test_rwlock_reader_counts_distinguish(self):
        program = helpers.rwlock_readers_writer()
        one_reader = fingerprint_after(program, ["R1"])
        two_readers = fingerprint_after(program, ["R1", "R2"])
        assert one_reader != two_readers

    def test_rwlock_reader_identity_distinguishes(self):
        program = helpers.rwlock_readers_writer()
        assert fingerprint_after(program, ["R1"]) != fingerprint_after(
            program, ["R2"]
        )

    def test_semaphore_values_distinguish(self):
        def releaser():
            yield SemRelease("s")
            yield SemRelease("s")
            yield Yield()

        program = Program(
            "sem-values", threads={"T": releaser}, semaphores={"s": 0}
        )
        assert fingerprint_after(program, ["T"]) != fingerprint_after(
            program, ["T", "T"]
        )

    def test_condition_wait_queue_order_distinguishes(self):
        # notify_one wakes the FIFO head, so [W1, W2] and [W2, W1] queues
        # have different futures despite identical memory/locks.
        def waiter():
            yield Acquire("L")
            yield Wait("cv")
            yield Release("L")

        def notifier():
            yield Yield()

        program = Program(
            "cv-order",
            threads={"W1": waiter, "W2": waiter, "N": notifier},
            locks=["L"],
            conditions={"cv": "L"},
        )
        w1_first = fingerprint_after(program, ["W1", "W1", "W2", "W2"])
        w2_first = fingerprint_after(program, ["W2", "W2", "W1", "W1"])
        assert w1_first != w2_first


class TestThreadContinuations:
    def test_in_flight_atomic_closures_distinguish(self):
        # B's pending AtomicUpdate closes over the value it read from
        # "k"; the two prefixes normalise memory to the same contents, so
        # only the closure (and B's locals) tell the states apart.
        def setter():
            yield Write("k", 0)

        def updater():
            k = yield Read("k")
            yield Write("k", 0)
            yield AtomicUpdate("acc", lambda current: (current or 0) + k)

        program = Program(
            "atomic-closure",
            threads={"S": setter, "B": updater},
            initial={"k": 1, "acc": 0},
        )
        captured_zero = fingerprint_after(program, ["S", "B", "B"])
        captured_one = fingerprint_after(program, ["B", "B", "S"])
        assert captured_zero != captured_one

    def test_generator_locals_distinguish_at_equal_step_counts(self):
        def body():
            for _ in range(2):
                yield Yield()

        program = Program("loops", threads={"A": body, "B": body})
        # Both states are 3 steps in with identical pending ops; only the
        # loop counters inside the suspended generator frames differ.
        a_ahead = fingerprint_after(program, ["A", "A", "B"])
        b_ahead = fingerprint_after(program, ["A", "B", "B"])
        assert a_ahead != b_ahead

    def test_reordered_independent_ops_collide(self):
        # The memoization win: schedules that differ only by swapping
        # independent operations converge on one fingerprint.
        def writer(var):
            def body():
                yield Write(var, 1)
                yield Yield()

            return body

        program = Program(
            "independent",
            threads={"A": writer("x"), "B": writer("y")},
            initial={"x": 0, "y": 0},
        )
        assert fingerprint_after(program, ["A", "B"]) == fingerprint_after(
            program, ["B", "A"]
        )

class TestCanonicalValue:
    def test_atoms_pass_through(self):
        assert canonical_value(3) == 3
        assert canonical_value("s") == "s"
        assert canonical_value(None) is None

    def test_dicts_are_order_insensitive(self):
        assert canonical_value({"a": 1, "b": 2}) == canonical_value(
            {"b": 2, "a": 1}
        )

    def test_sets_are_order_insensitive(self):
        assert canonical_value({3, 1, 2}) == canonical_value({2, 3, 1})

    def test_closures_with_equal_captures_collide(self):
        def make(k):
            return lambda v: v + k

        assert canonical_value(make(5)) == canonical_value(make(5))

    def test_closures_with_different_captures_differ(self):
        def make(k):
            return lambda v: v + k

        assert canonical_value(make(1)) != canonical_value(make(2))

    def test_atomic_update_ops_fingerprint_their_closures(self):
        def make(k):
            return AtomicUpdate("acc", lambda v: (v or 0) + k)

        assert _canonical_op(make(1)) != _canonical_op(make(2))
        assert _canonical_op(make(7)) == _canonical_op(make(7))

    def test_cycles_terminate(self):
        loop = []
        loop.append(loop)
        assert canonical_value(loop)  # no RecursionError


class TestStateCache:
    def test_check_and_mark(self):
        cache = StateCache()
        assert not cache.seen("fp1")
        assert cache.seen("fp1")
        assert not cache.seen("fp2")
        assert len(cache) == 2
        assert cache.hits == 1
        assert cache.lookups == 3

    def test_hit_rate_and_summary(self):
        cache = StateCache()
        assert cache.hit_rate() == 0.0
        cache.seen("a")
        cache.seen("a")
        assert cache.hit_rate() == 0.5
        assert "1/2" in cache.summary()
