"""Unit tests for repro.sim.sync primitives."""

import pytest

from repro.errors import ProgramError
from repro.sim.sync import Barrier, Condition, Mutex, RWLock, Semaphore, SyncObjects


class TestMutex:
    def test_free_mutex_is_acquirable(self):
        m = Mutex("L")
        assert m.can_acquire("T1")

    def test_held_mutex_is_not_acquirable_even_by_owner(self):
        m = Mutex("L")
        m.acquire("T1")
        assert not m.can_acquire("T2")
        assert not m.can_acquire("T1")  # non-recursive

    def test_acquire_sets_owner(self):
        m = Mutex("L")
        m.acquire("T1")
        assert m.owner == "T1"

    def test_release_by_owner_frees(self):
        m = Mutex("L")
        m.acquire("T1")
        m.release("T1")
        assert m.owner is None

    def test_release_by_non_owner_raises(self):
        m = Mutex("L")
        m.acquire("T1")
        with pytest.raises(ProgramError, match="owned by 'T1'"):
            m.release("T2")

    def test_release_of_free_mutex_raises(self):
        m = Mutex("L")
        with pytest.raises(ProgramError):
            m.release("T1")

    def test_double_acquire_scheduling_is_engine_bug(self):
        m = Mutex("L")
        m.acquire("T1")
        with pytest.raises(ProgramError, match="engine bug"):
            m.acquire("T2")

    def test_try_acquire_success_and_failure(self):
        m = Mutex("L")
        assert m.try_acquire("T1") is True
        assert m.try_acquire("T2") is False
        assert m.owner == "T1"


class TestRWLock:
    def test_multiple_readers_allowed(self):
        rw = RWLock("RW")
        rw.acquire_read("R1")
        assert rw.can_acquire_read("R2")
        rw.acquire_read("R2")
        assert rw.readers == {"R1", "R2"}

    def test_writer_excludes_readers(self):
        rw = RWLock("RW")
        rw.acquire_write("W")
        assert not rw.can_acquire_read("R1")
        assert not rw.can_acquire_write("W2")

    def test_readers_exclude_writer(self):
        rw = RWLock("RW")
        rw.acquire_read("R1")
        assert not rw.can_acquire_write("W")
        assert rw.can_acquire_read("R2")

    def test_release_read_unknown_reader_raises(self):
        rw = RWLock("RW")
        with pytest.raises(ProgramError):
            rw.release_read("R1")

    def test_release_write_wrong_thread_raises(self):
        rw = RWLock("RW")
        rw.acquire_write("W")
        with pytest.raises(ProgramError):
            rw.release_write("X")

    def test_write_after_readers_drain(self):
        rw = RWLock("RW")
        rw.acquire_read("R1")
        rw.release_read("R1")
        assert rw.can_acquire_write("W")

    def test_sole_reader_may_upgrade_in_place(self):
        rw = RWLock("RW")
        rw.acquire_read("T1")
        assert rw.can_acquire_write("T1")
        rw.acquire_write("T1")
        assert rw.writer == "T1"
        assert "T1" in rw.readers  # the read hold survives the upgrade
        rw.release_write("T1")
        rw.release_read("T1")

    def test_upgrade_blocked_by_other_reader(self):
        rw = RWLock("RW")
        rw.acquire_read("T1")
        rw.acquire_read("T2")
        assert not rw.can_acquire_write("T1")
        assert not rw.can_acquire_write("T2")


class TestSemaphore:
    def test_initial_value_respected(self):
        s = Semaphore("S", 2)
        assert s.can_acquire("T")
        assert s.acquire("T") == 1
        assert s.acquire("T") == 0
        assert not s.can_acquire("T")

    def test_release_unblocks(self):
        s = Semaphore("S", 0)
        assert not s.can_acquire("T")
        assert s.release("T") == 1
        assert s.can_acquire("T")

    def test_negative_initial_raises(self):
        with pytest.raises(ProgramError):
            Semaphore("S", -1)

    def test_drained_acquire_is_engine_bug(self):
        s = Semaphore("S", 0)
        with pytest.raises(ProgramError, match="engine bug"):
            s.acquire("T")


class TestCondition:
    def test_notify_one_is_fifo(self):
        c = Condition("cv", "L")
        c.park("T1")
        c.park("T2")
        assert c.notify_one() == ["T1"]
        assert c.notify_one() == ["T2"]

    def test_notify_without_waiters_is_lost(self):
        c = Condition("cv", "L")
        assert c.notify_one() == []

    def test_notify_all_drains_everyone(self):
        c = Condition("cv", "L")
        c.park("T1")
        c.park("T2")
        assert c.notify_all() == ["T1", "T2"]
        assert c.waiters == []


class TestBarrier:
    def test_last_arrival_can_pass(self):
        b = Barrier("bar", 3)
        assert not b.can_pass("T1")
        b.arrive("T1")
        assert not b.can_pass("T2")
        b.arrive("T2")
        assert b.can_pass("T3")

    def test_trip_resets_for_reuse(self):
        b = Barrier("bar", 2)
        b.arrive("T1")
        assert b.trip() == ["T1"]
        assert b.arrived == []
        assert not b.can_pass("T1")

    def test_party_size_validation(self):
        with pytest.raises(ProgramError):
            Barrier("bar", 0)


class TestSyncObjects:
    def _make(self, **kwargs):
        defaults = dict(locks=[], rwlocks=[], semaphores={}, conditions={}, barriers={})
        defaults.update(kwargs)
        return SyncObjects(**defaults)

    def test_lookup_of_each_kind(self):
        sync = self._make(
            locks=["L"],
            rwlocks=["RW"],
            semaphores={"S": 1},
            conditions={"cv": "L"},
            barriers={"bar": 2},
        )
        assert sync.mutex("L").name == "L"
        assert sync.rwlock("RW").name == "RW"
        assert sync.semaphore("S").value == 1
        assert sync.condition("cv").lock == "L"
        assert sync.barrier("bar").parties == 2

    def test_undeclared_lookup_raises(self):
        sync = self._make(locks=["L"])
        with pytest.raises(ProgramError, match="undeclared lock 'M'"):
            sync.mutex("M")

    def test_condition_requires_declared_lock(self):
        with pytest.raises(ProgramError, match="undeclared lock"):
            self._make(conditions={"cv": "nope"})

    def test_duplicate_names_across_kinds_raise(self):
        with pytest.raises(ProgramError, match="more than once"):
            self._make(locks=["X"], rwlocks=["X"])

    def test_held_by_reports_mutexes_and_rwlocks(self):
        sync = self._make(locks=["L"], rwlocks=["RW"])
        sync.mutex("L").acquire("T1")
        sync.rwlock("RW").acquire_read("T1")
        assert sorted(sync.held_by("T1")) == ["L", "RW"]
        assert sync.held_by("T2") == []
