"""Race-directed exploration: visit-order bias, tree invariance, speedup.

``targets=`` must change only the *order* schedules are visited in,
never the set of schedules a complete search covers — directed DFS is a
reordering of undirected DFS, and directed sleep-set search prunes
soundly whatever the sibling order.  Given that invariance, the payoff
is measurable: predicted pairs pull manifesting schedules forward.
"""

import warnings

import pytest

from repro.kernels import all_kernels, get_kernel
from repro.sim.explorer import Explorer, _make_explorer, make_explorer
from repro.sim.reduction import SleepSetExplorer
from repro.static import analyse
from repro.static.pairs import TargetPair, TargetSite
from tests import helpers

#: Kernels where direction must strictly beat undirected DFS
#: (acceptance floor is three; these five are stable wins).
STRICTLY_FASTER = [
    "atomicity_single_var",
    "multivar_buffer_flag",
    "order_lost_wakeup",
    "deadlock_abba",
    "deadlock_three_way",
]


def first_finding_schedules(kernel, targets):
    explorer = make_explorer(
        kernel.buggy, 20000, 5000, None, None, False,
        keep_matches=1, targets=targets,
    )
    result = explorer.explore(predicate=kernel.failure, stop_on_first=True)
    assert result.found, kernel.name
    return result.schedules_run


class TestTreeInvariance:
    @pytest.mark.parametrize("builder", [helpers.racy_counter, helpers.lost_wakeup])
    def test_dfs_explores_identical_tree(self, builder):
        program = builder()
        targets = analyse(program).pairs
        plain = Explorer(program).explore()
        directed = Explorer(program, targets=targets).explore()
        assert directed.schedules_run == plain.schedules_run
        assert directed.statuses == plain.statuses
        assert directed.outcomes == plain.outcomes

    @pytest.mark.parametrize("builder", [helpers.racy_counter, helpers.lost_wakeup])
    def test_sleep_set_outcomes_unchanged(self, builder):
        program = builder()
        targets = analyse(program).pairs
        plain = SleepSetExplorer(program).explore()
        directed = SleepSetExplorer(program, targets=targets).explore()
        # Pruning is order-dependent, so run counts may differ — but the
        # reachable outcome set must not.
        assert set(directed.outcomes) == set(plain.outcomes)
        assert set(directed.statuses) == set(plain.statuses)

    def test_empty_targets_means_undirected(self):
        program = helpers.racy_counter()
        assert Explorer(program, targets=[]).directed is None
        assert Explorer(program).directed is None


class TestDirectedSpeedup:
    @pytest.mark.parametrize("name", STRICTLY_FASTER)
    def test_directed_reaches_finding_strictly_sooner(self, name):
        kernel = get_kernel(name)
        undirected = first_finding_schedules(kernel, None)
        directed = first_finding_schedules(kernel, kernel.static_targets())
        assert directed < undirected, (
            f"{name}: directed {directed} !< undirected {undirected}"
        )

    def test_directed_never_slower_across_corpus(self):
        for kernel in all_kernels():
            undirected = first_finding_schedules(kernel, None)
            directed = first_finding_schedules(kernel, kernel.static_targets())
            assert directed <= undirected, kernel.name

    def test_find_manifestation_directed_flag(self):
        kernel = get_kernel("deadlock_three_way")
        run = kernel.find_manifestation(directed=True)
        assert run is not None
        assert kernel.failure(run)


class TestTargetMatching:
    def test_matching_prefers_first_site_of_best_pair(self):
        # Hand-build a pair preferring T2's write; the directed DFS must
        # visit a T2-first schedule before the undirected T1-first one.
        program = helpers.racy_counter()
        pair = TargetPair(
            first=TargetSite(thread="T2", kind="write", obj="counter"),
            second=TargetSite(thread="T1", kind="read", obj="counter"),
            score=99,
            reason="test",
        )
        directed = Explorer(program, targets=[pair]).explore(
            predicate=lambda run: run.memory["counter"] == 1,
            stop_on_first=True,
        )
        plain = Explorer(program).explore(
            predicate=lambda run: run.memory["counter"] == 1,
            stop_on_first=True,
        )
        assert directed.schedules_run <= plain.schedules_run

    def test_label_constrains_the_match(self):
        from repro.sim import Write

        site = TargetSite(thread="T1", kind="write", obj="x", label="w1")
        assert not site.matches("T1", Write("x", 1, label="w2"))
        assert not site.matches("T2", Write("x", 1, label="w1"))
        assert site.matches("T1", Write("x", 1, label="w1"))


class TestDeprecatedAlias:
    def test_emits_exactly_one_deprecation_warning(self):
        program = helpers.racy_counter()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            explorer = _make_explorer(program, 100, 5000, None, None, False)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "make_explorer" in str(deprecations[0].message)

    def test_returns_the_same_object_make_explorer_builds(self):
        program = helpers.racy_counter()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            aliased = _make_explorer(program, 100, 5000, None, None, False)
        direct = make_explorer(program, 100, 5000, None, None, False)
        assert type(aliased) is type(direct)
        assert aliased.program is direct.program
        assert aliased.max_schedules == direct.max_schedules
