"""Sleep-set reduction tests: equivalence with plain DFS, then savings.

The key property: over any program in the generated family (straight-line
threads with reads/writes/lock sections, optionally crashing), the
reduced exploration reaches exactly the same set of terminal outcomes
(status + final memory) and the same failure verdict as exhaustive DFS —
while running no more schedules.
"""

from __future__ import annotations

from hypothesis import assume, given, settings

from repro.kernels import all_kernels
from repro.sim import Explorer, Program, Write
from repro.sim.reduction import SleepSetExplorer, op_footprint, ops_dependent
from repro.sim import ops as op_mod
from tests import helpers
from tests.helpers import corpus_programs

# Three threads x (2 mem ops -> up to 4 events) + lock ops stays well
# under the exploration budget; anything bigger is skipped via assume()
# in the tests.


@settings(max_examples=20, deadline=None, derandomize=True)
@given(corpus_programs())
def test_outcome_sets_match_plain_dfs(program):
    full = Explorer(program, max_schedules=60000).explore(
        predicate=lambda run: False
    )
    assume(full.complete)  # outsized programs carry no comparison value
    reducer = SleepSetExplorer(program, max_schedules=60000)
    reduced = reducer.explore(predicate=lambda run: False)
    assert reduced.complete
    assert set(reduced.outcomes) == set(full.outcomes)
    assert reduced.schedules_run <= full.schedules_run


@settings(max_examples=12, deadline=None, derandomize=True)
@given(corpus_programs())
def test_failure_verdicts_match(program):
    full = Explorer(program, max_schedules=60000).explore()
    assume(full.complete)
    reduced = SleepSetExplorer(program, max_schedules=60000).explore()
    assert full.found == reduced.found
    full_statuses = {s for s in full.statuses}
    reduced_statuses = {s for s in reduced.statuses}
    assert full_statuses == reduced_statuses


class TestOnKnownPrograms:
    def test_racy_counter_keeps_both_outcomes(self):
        reduced = SleepSetExplorer(helpers.racy_counter()).explore(
            predicate=lambda run: False
        )
        finals = {key[1][0][1] for key in reduced.outcomes}
        assert finals == {1, 2}

    def test_every_kernel_verdict_preserved(self):
        for kernel in all_kernels():
            full = Explorer(kernel.buggy, max_schedules=100000).explore(
                predicate=kernel.failure
            )
            reduced = SleepSetExplorer(kernel.buggy, max_schedules=100000).explore(
                predicate=kernel.failure
            )
            assert reduced.found == full.found, kernel.name
            assert set(reduced.outcomes) == set(full.outcomes), kernel.name
            assert reduced.schedules_run <= full.schedules_run, kernel.name

    def test_reduction_actually_prunes(self):
        reducer = SleepSetExplorer(helpers.abba_deadlock())
        reduced = reducer.explore(predicate=lambda run: False)
        assert reducer.pruned_runs > 0
        assert reduced.schedules_run < 6  # plain DFS needs 6

    def test_independent_threads_explode_linearly(self):
        def writer(var):
            def body():
                yield Write(var, 1)
                yield Write(var, 2)

            return body

        program = Program(
            "independent",
            threads={"A": writer("x"), "B": writer("y")},
            initial={"x": 0, "y": 0},
        )
        full = Explorer(program).explore(predicate=lambda run: False)
        reduced = SleepSetExplorer(program).explore(predicate=lambda run: False)
        assert full.schedules_run == 6  # C(4,2) interleavings
        assert reduced.schedules_run == 1  # a single representative


class TestFootprints:
    def fp(self, op, thread="T"):
        return op_footprint(op, thread, {"cv": "L"})

    def test_read_read_independent(self):
        assert not ops_dependent(
            self.fp(op_mod.Read("x"), "A"), self.fp(op_mod.Read("x"), "B")
        )

    def test_read_write_dependent(self):
        assert ops_dependent(
            self.fp(op_mod.Read("x"), "A"), self.fp(op_mod.Write("x", 1), "B")
        )

    def test_different_vars_independent(self):
        assert not ops_dependent(
            self.fp(op_mod.Write("x", 1), "A"), self.fp(op_mod.Write("y", 1), "B")
        )

    def test_same_lock_dependent(self):
        assert ops_dependent(
            self.fp(op_mod.Acquire("L"), "A"), self.fp(op_mod.Release("L"), "B")
        )

    def test_different_locks_independent(self):
        assert not ops_dependent(
            self.fp(op_mod.Acquire("L"), "A"), self.fp(op_mod.Acquire("M"), "B")
        )

    def test_wait_touches_cond_and_its_lock(self):
        wait_fp = self.fp(op_mod.Wait("cv"), "A")
        assert ops_dependent(wait_fp, self.fp(op_mod.Acquire("L"), "B"))
        assert ops_dependent(wait_fp, self.fp(op_mod.Notify("cv"), "B"))

    def test_join_depends_on_target_thread_ops(self):
        join_fp = self.fp(op_mod.Join("W"), "Main")
        target_op = self.fp(op_mod.Yield(), "W")
        assert ops_dependent(join_fp, target_op)

    def test_yields_of_different_threads_independent(self):
        assert not ops_dependent(
            self.fp(op_mod.Yield(), "A"), self.fp(op_mod.Yield(), "B")
        )
