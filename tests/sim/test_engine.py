"""Engine semantics tests: one behaviour per test."""

import pytest

from repro.errors import ProgramError, SchedulerError, SimCrash
from repro.sim import (
    Acquire,
    AtomicUpdate,
    CooperativeScheduler,
    Engine,
    FixedScheduler,
    Join,
    Notify,
    NotifyAll,
    Program,
    Read,
    Release,
    RoundRobinScheduler,
    RunStatus,
    Sleep,
    Spawn,
    TryAcquire,
    Wait,
    Write,
    Yield,
    run_program,
)
from repro.sim import events as ev
from tests import helpers


def run_fixed(program, schedule):
    return run_program(program, FixedScheduler(schedule, strict=False))


class TestBasicExecution:
    def test_single_thread_runs_to_completion(self):
        def body():
            value = yield Read("x")
            yield Write("x", value + 1)

        prog = Program("one", threads={"T": body}, initial={"x": 0})
        result = run_program(prog, CooperativeScheduler())
        assert result.status is RunStatus.OK
        assert result.memory["x"] == 1

    def test_read_result_is_sent_into_generator(self):
        observed = []

        def body():
            value = yield Read("x")
            observed.append(value)

        prog = Program("read", threads={"T": body}, initial={"x": 99})
        run_program(prog, CooperativeScheduler())
        assert observed == [99]

    def test_atomic_update_returns_new_value(self):
        observed = []

        def body():
            new = yield AtomicUpdate("x", lambda v: v + 5)
            observed.append(new)

        prog = Program("atomic", threads={"T": body}, initial={"x": 1})
        result = run_program(prog, CooperativeScheduler())
        assert observed == [6]
        assert result.memory["x"] == 6

    def test_local_state_is_per_thread(self):
        def body():
            local = 0
            for _ in range(3):
                local += 1
                yield Yield()
            yield Write("out", local)

        prog = Program(
            "local",
            threads={"A": body, "B": body},
            initial={"out": None},
        )
        result = run_program(prog, RoundRobinScheduler())
        assert result.memory["out"] == 3

    def test_schedule_records_every_decision(self):
        prog = helpers.racy_counter()
        result = run_program(prog, RoundRobinScheduler())
        assert len(result.schedule) == 4  # 2 threads x (read + write)
        assert set(result.schedule) == {"T1", "T2"}

    def test_trace_schedule_matches_engine_schedule(self):
        prog = helpers.semaphore_pingpong()
        result = run_program(prog, RoundRobinScheduler())
        assert result.trace.schedule() == result.schedule


class TestMutexSemantics:
    def test_locked_counter_never_loses_updates(self):
        prog = helpers.locked_counter()
        for scheduler in (RoundRobinScheduler(), CooperativeScheduler()):
            result = run_program(prog, scheduler)
            assert result.memory["counter"] == 2

    def test_blocked_acquire_is_not_scheduled(self):
        prog = helpers.locked_counter()
        # Force strict alternation: T2 must simply not run while blocked.
        result = run_program(prog, RoundRobinScheduler())
        acquires = [e for e in result.trace if isinstance(e, ev.AcquireEvent)]
        releases = [e for e in result.trace if isinstance(e, ev.ReleaseEvent)]
        assert len(acquires) == 2
        assert len(releases) == 2
        # Second acquire strictly after first release.
        assert acquires[1].seq > releases[0].seq

    def test_try_acquire_failure_returns_false(self):
        outcomes = []

        def holder():
            yield Acquire("L")
            yield Yield()
            yield Release("L")

        def taster():
            ok = yield TryAcquire("L")
            outcomes.append(ok)

        prog = Program("try", threads={"H": holder, "T": taster}, locks=["L"])
        run_fixed(prog, ["H", "T"])
        assert outcomes == [False]

    def test_release_of_unowned_lock_is_program_error(self):
        def body():
            yield Release("L")

        prog = Program("bad-release", threads={"T": body}, locks=["L"])
        with pytest.raises(ProgramError):
            run_program(prog, CooperativeScheduler())


class TestTermination:
    def test_self_deadlock_is_deadlock_status(self):
        result = run_program(helpers.self_deadlock(), CooperativeScheduler())
        assert result.status is RunStatus.DEADLOCK
        assert result.blocked and result.blocked[0][0] == "T1"

    def test_abba_deadlock_reached_by_alternation(self):
        result = run_fixed(helpers.abba_deadlock(), ["T1", "T2"])
        assert result.status is RunStatus.DEADLOCK
        assert len(result.blocked) == 2

    def test_abba_avoided_by_cooperative_scheduler(self):
        result = run_program(helpers.abba_deadlock(), CooperativeScheduler())
        assert result.status is RunStatus.OK

    def test_crash_terminates_whole_run(self):
        result = run_fixed(helpers.null_deref_race(), ["Reader"])
        assert result.status is RunStatus.CRASH
        assert "null pointer" in result.crash_reasons[0]
        # Init never got to run after the crash.
        assert result.memory["ptr"] is None

    def test_unnotified_wait_is_hang_not_deadlock(self):
        # Signaller runs entirely first: its notify is lost, waiter hangs.
        result = run_fixed(
            helpers.lost_wakeup(), ["Waiter", "Signaller"] + ["Signaller"] * 5
        )
        assert result.status in (RunStatus.HANG, RunStatus.OK)

    def test_lost_wakeup_hang_exists(self):
        # Waiter reads done=False, then Signaller completes, then Waiter waits.
        schedule = ["Waiter", "Signaller", "Signaller", "Signaller", "Signaller"]
        result = run_program(
            helpers.lost_wakeup(), FixedScheduler(schedule, strict=False)
        )
        assert result.status is RunStatus.HANG
        blocked = dict(result.blocked)
        assert blocked["Waiter"].startswith("cond:")

    def test_step_budget_aborts(self):
        def spinner():
            while True:
                yield Yield()

        prog = Program("spin", threads={"T": spinner})
        result = run_program(prog, CooperativeScheduler(), max_steps=50)
        assert result.status is RunStatus.ABORTED
        assert result.steps == 50

    def test_ok_run_reports_all_finished(self):
        result = run_program(helpers.locked_counter(), CooperativeScheduler())
        assert result.ok and not result.failed
        assert result.stop_reason == "all threads finished"


class TestConditionVariables:
    def test_wait_releases_and_reacquires_lock(self):
        prog = helpers.lost_wakeup()
        # Proper order: waiter parks, then signaller notifies.
        schedule = ["Waiter", "Waiter", "Waiter", "Signaller", "Signaller",
                    "Signaller", "Signaller", "Waiter", "Waiter"]
        result = run_program(prog, FixedScheduler(schedule, strict=False))
        assert result.status is RunStatus.OK
        parks = [e for e in result.trace if isinstance(e, ev.WaitParkEvent)]
        resumes = [e for e in result.trace if isinstance(e, ev.WaitResumeEvent)]
        assert len(parks) == 1 and len(resumes) == 1
        assert resumes[0].seq > parks[0].seq

    def test_notify_event_records_woken_threads(self):
        prog = helpers.lost_wakeup()
        schedule = ["Waiter", "Waiter", "Waiter", "Signaller", "Signaller",
                    "Signaller", "Signaller", "Waiter", "Waiter"]
        result = run_program(prog, FixedScheduler(schedule, strict=False))
        notifies = [e for e in result.trace if isinstance(e, ev.NotifyEvent)]
        assert notifies[0].woken == ("Waiter",)

    def test_lost_notify_records_empty_woken(self):
        result = run_fixed(helpers.lost_wakeup(), ["Signaller"] * 4 + ["Waiter"] * 3)
        notifies = [e for e in result.trace if isinstance(e, ev.NotifyEvent)]
        assert notifies[0].woken == ()

    def test_wait_without_lock_is_program_error(self):
        def body():
            yield Wait("cv")

        prog = Program(
            "bad-wait", threads={"T": body}, locks=["L"], conditions={"cv": "L"}
        )
        with pytest.raises(ProgramError, match="without holding"):
            run_program(prog, CooperativeScheduler())

    def test_notify_all_wakes_every_waiter(self):
        def waiter():
            yield Acquire("L")
            yield Wait("cv")
            yield Release("L")

        def broadcaster():
            yield Acquire("L")
            yield NotifyAll("cv")
            yield Release("L")

        prog = Program(
            "broadcast",
            threads={"W1": waiter, "W2": waiter, "B": broadcaster},
            locks=["L"],
            conditions={"cv": "L"},
        )
        schedule = (
            ["W1"] * 2 + ["W2"] * 2 + ["B"] * 3
        )
        result = run_program(prog, FixedScheduler(schedule, strict=False))
        assert result.status is RunStatus.OK
        notify = [e for e in result.trace if isinstance(e, ev.NotifyEvent)][0]
        assert set(notify.woken) == {"W1", "W2"}


class TestSpawnJoin:
    def test_spawned_thread_becomes_runnable(self):
        result = run_program(helpers.spawn_join_chain(), CooperativeScheduler())
        assert result.status is RunStatus.OK
        assert result.memory["observed"] == 42

    def test_join_blocks_until_target_done(self):
        result = run_program(helpers.spawn_join_chain(), RoundRobinScheduler())
        joins = [e for e in result.trace if isinstance(e, ev.JoinEvent)]
        finishes = [
            e for e in result.trace
            if isinstance(e, ev.ThreadFinishEvent) and e.thread == "Worker"
        ]
        assert joins[0].seq > finishes[0].seq

    def test_double_spawn_is_program_error(self):
        def main():
            yield Spawn("W")
            yield Spawn("W")

        def worker():
            yield Yield()

        prog = Program("double-spawn", threads={"Main": main, "W": worker}, start=["Main"])
        with pytest.raises(ProgramError, match="already"):
            run_program(prog, CooperativeScheduler())

    def test_join_on_undeclared_thread_is_program_error(self):
        def main():
            yield Join("Ghost")

        prog = Program("ghost-join", threads={"Main": main})
        with pytest.raises(ProgramError, match="undeclared thread"):
            run_program(prog, CooperativeScheduler())

    def test_unstarted_thread_never_runs(self):
        def main():
            yield Write("out", "main")

        def never():
            yield Write("out", "never")

        prog = Program(
            "unstarted",
            threads={"Main": main, "Never": never},
            initial={"out": None},
            start=["Main"],
        )
        result = run_program(prog, CooperativeScheduler())
        assert result.status is RunStatus.OK
        assert result.memory["out"] == "main"


class TestSleepAndYield:
    def test_sleep_consumes_ticks(self):
        def sleeper():
            yield Sleep(3)
            yield Write("done", True)

        prog = Program("sleep", threads={"T": sleeper}, initial={"done": False})
        result = run_program(prog, CooperativeScheduler())
        yields = [e for e in result.trace if isinstance(e, ev.YieldEvent)]
        assert len(yields) == 3
        assert result.memory["done"] is True

    def test_sleep_is_not_synchronisation(self):
        """A sleep 'fixing' a race still races under an adversarial schedule."""

        def reader():
            yield Sleep(5)
            pointer = yield Read("ptr")
            if pointer is None:
                raise SimCrash("still racy")

        def initialiser():
            yield Write("ptr", "object")

        prog = Program(
            "sleep-no-sync",
            threads={"R": reader, "I": initialiser},
            initial={"ptr": None},
        )
        # Adversarial: run reader through its whole sleep before init runs.
        result = run_fixed(prog, ["R"] * 6)
        assert result.status is RunStatus.CRASH


class TestSchedulerContract:
    def test_scheduler_choosing_disabled_thread_raises(self):
        class Rogue(CooperativeScheduler):
            def choose(self, enabled, step):
                return "NOPE"

        prog = helpers.racy_counter()
        with pytest.raises(SchedulerError):
            Engine(prog, Rogue()).run()

    def test_enabled_filter_restricts_choices(self):
        prog = helpers.racy_counter()

        def only_t2_first(engine, enabled):
            if engine.steps == 0 and "T2" in enabled:
                return ["T2"]
            return enabled

        result = run_program(
            prog, CooperativeScheduler(), enabled_filter=only_t2_first
        )
        assert result.schedule[0] == "T2"

    def test_empty_filter_result_falls_back_to_enabled(self):
        prog = helpers.racy_counter()
        result = run_program(
            prog, CooperativeScheduler(), enabled_filter=lambda e, en: []
        )
        assert result.status is RunStatus.OK
