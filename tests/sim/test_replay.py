"""Record/replay tests."""

import pytest

from repro.errors import ReplayError
from repro.sim import (
    RandomScheduler,
    RunStatus,
    find_schedule,
    replay,
    replay_prefix,
    run_program,
    schedule_from_json,
    schedule_to_json,
)
from tests import helpers


class TestReplay:
    def test_replay_reproduces_memory_and_status(self):
        prog = helpers.racy_counter(threads=3)
        original = run_program(prog, RandomScheduler(seed=123))
        rerun = replay(prog, original.schedule)
        assert rerun.memory == original.memory
        assert rerun.status == original.status
        assert rerun.schedule == original.schedule

    def test_replay_reproduces_found_failure(self):
        prog = helpers.null_deref_race()
        failing = find_schedule(prog)
        assert failing is not None
        rerun = replay(prog, failing.schedule)
        assert rerun.status is RunStatus.CRASH

    def test_replay_of_wrong_program_raises(self):
        schedule = run_program(
            helpers.racy_counter(), RandomScheduler(seed=1)
        ).schedule
        with pytest.raises(ReplayError):
            replay(helpers.abba_deadlock(), schedule)

    def test_replay_reproduces_deadlock(self):
        prog = helpers.abba_deadlock()
        failing = find_schedule(prog)
        rerun = replay(prog, failing.schedule)
        assert rerun.status is RunStatus.DEADLOCK


class TestReplayPrefix:
    def test_prefix_steers_then_continues(self):
        prog = helpers.racy_counter()
        result = replay_prefix(prog, ["T2"])
        assert result.schedule[0] == "T2"
        assert result.status is RunStatus.OK

    def test_prefix_tolerates_disabled_choices(self):
        prog = helpers.locked_counter()
        result = replay_prefix(prog, ["T1", "T2", "T2", "T2"])
        assert result.status is RunStatus.OK
        assert result.memory["counter"] == 2


class TestScheduleSerialisation:
    def test_json_round_trip(self):
        schedule = ["T1", "T2", "T2", "T1"]
        assert schedule_from_json(schedule_to_json(schedule)) == schedule

    def test_rejects_foreign_payload(self):
        with pytest.raises(ValueError):
            schedule_from_json('{"something": "else"}')

    def test_rejects_wrong_version(self):
        with pytest.raises(ValueError):
            schedule_from_json('{"version": 2, "schedule": []}')
