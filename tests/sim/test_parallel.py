"""Differential harness: parallel / memoized exploration vs serial DFS.

The serial :class:`Explorer` is the trusted baseline.  Everything layered
on top for speed — prefix sharding across a process pool, state-space
memoization, their composition with sleep sets — must be *observation
equivalent*:

* a complete parallel search reproduces the serial result exactly
  (outcome tallies, match rate, statuses, first match) at any worker
  count;
* memoized search preserves the terminal outcome *set* and every verdict
  derived from terminal states (found / deadlocked / crashed), though
  not schedule counts;
* fixed seed + fixed worker count is byte-for-byte deterministic.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.sim import (
    Explorer,
    ParallelExplorer,
    RunStatus,
    SleepSetExplorer,
    enumerate_outcomes,
    find_schedule,
)
from repro.sim.generate import GeneratorConfig, generate_program
from tests.helpers import corpus_programs

#: Small enough that most generated programs explore completely within
#: the budget; incomplete ones are skipped via assume() — a truncated
#: search carries no equivalence obligation.
CONFIG = GeneratorConfig(ops_per_thread=(1, 3))
DEADLOCK_CONFIG = GeneratorConfig(
    ops_per_thread=(1, 3), allow_deadlock=True, crash_probability=0.0
)
BUDGET = 4000
WORKER_COUNTS = (1, 2, 4)


def _explore(program, workers=None, memoize=False, predicate=None):
    if workers is None:
        explorer = Explorer(program, max_schedules=BUDGET, memoize=memoize)
    else:
        explorer = ParallelExplorer(
            program, workers=workers, max_schedules=BUDGET, memoize=memoize
        )
    return explorer.explore(predicate=predicate)


@settings(max_examples=10, deadline=None, derandomize=True)
@given(st.integers(min_value=0, max_value=63))
def test_parallel_matches_serial_exactly(seed):
    program = generate_program(seed, CONFIG)
    serial = _explore(program)
    assume(serial.complete)
    for workers in WORKER_COUNTS:
        parallel = _explore(program, workers=workers)
        assert parallel.complete
        assert parallel.outcomes == serial.outcomes, workers
        assert parallel.schedules_run == serial.schedules_run, workers
        assert parallel.statuses == serial.statuses, workers
        assert parallel.match_count == serial.match_count, workers
        assert parallel.match_rate() == serial.match_rate(), workers
        assert parallel.failure_rate() == serial.failure_rate(), workers


@settings(max_examples=8, deadline=None, derandomize=True)
@given(st.integers(min_value=0, max_value=63))
def test_parallel_preserves_deadlock_verdicts(seed):
    program = generate_program(seed, DEADLOCK_CONFIG)
    serial = _explore(program)
    assume(serial.complete)
    for workers in (2, 4):
        parallel = _explore(program, workers=workers)
        assert (RunStatus.DEADLOCK in parallel.statuses) == (
            RunStatus.DEADLOCK in serial.statuses
        )
        assert parallel.statuses == serial.statuses
        assert parallel.match_rate() == serial.match_rate()


@settings(max_examples=8, deadline=None, derandomize=True)
@given(st.integers(min_value=0, max_value=63))
def test_memoized_generated_outcome_sets_match(seed):
    program = generate_program(seed, CONFIG)
    plain = _explore(program)
    assume(plain.complete)
    memoized = _explore(program, memoize=True)
    assert memoized.complete
    assert set(memoized.outcomes) == set(plain.outcomes)
    assert set(memoized.statuses) == set(plain.statuses)
    assert memoized.found == plain.found


@settings(max_examples=10, deadline=None, derandomize=True)
@given(
    st.integers(min_value=0, max_value=63),
    st.integers(min_value=1, max_value=2),
)
def test_memoized_bounded_outcome_sets_match(seed, bound):
    # Memoization x preemption_bound: the bounded fingerprint must key on
    # (state, preemptions spent, last-run thread) — spend alone merges
    # nodes whose budget-feasible subtrees differ and loses outcomes.
    program = generate_program(seed, CONFIG)
    plain = Explorer(
        program, max_schedules=BUDGET, preemption_bound=bound
    ).explore()
    assume(plain.complete)
    memoized = Explorer(
        program, max_schedules=BUDGET, preemption_bound=bound, memoize=True
    ).explore()
    assert memoized.complete
    assert set(memoized.outcomes) == set(plain.outcomes)
    assert set(memoized.statuses) == set(plain.statuses)
    assert memoized.found == plain.found
    sharded = ParallelExplorer(
        program,
        workers=2,
        max_schedules=BUDGET,
        preemption_bound=bound,
        memoize=True,
    ).explore()
    assert set(sharded.outcomes) == set(plain.outcomes)
    assert sharded.found == plain.found


def test_memoized_bounded_regression_seeds():
    # Seeds where fingerprinting only (state, preemptions spent) merged
    # nodes reached via commuting ops with different last threads and
    # dropped reachable outcomes from the bounded search.
    for seed in (2, 16, 17, 33, 41):
        program = generate_program(seed, CONFIG)
        for bound in (1, 2):
            plain = Explorer(
                program, max_schedules=BUDGET, preemption_bound=bound
            ).explore()
            assert plain.complete
            memoized = Explorer(
                program,
                max_schedules=BUDGET,
                preemption_bound=bound,
                memoize=True,
            ).explore()
            assert set(memoized.outcomes) == set(plain.outcomes), (seed, bound)
            serial_first = find_schedule(program, preemption_bound=bound)
            memo_first = find_schedule(
                program, preemption_bound=bound, memoize=True
            )
            assert (serial_first is None) == (memo_first is None), (seed, bound)


@settings(max_examples=12, deadline=None, derandomize=True)
@given(corpus_programs())
def test_memoized_corpus_outcome_sets_match(program):
    plain = Explorer(program, max_schedules=BUDGET).explore()
    assume(plain.complete)
    memoized = Explorer(program, max_schedules=BUDGET, memoize=True).explore()
    assert set(memoized.outcomes) == set(plain.outcomes)
    assert memoized.found == plain.found
    # Sleep sets + memoization compose; the outcome set still survives.
    reduced = SleepSetExplorer(
        program, max_schedules=BUDGET, memoize=True
    ).explore()
    assert set(reduced.outcomes) == set(plain.outcomes)
    assert reduced.found == plain.found


@settings(max_examples=6, deadline=None, derandomize=True)
@given(st.integers(min_value=0, max_value=63))
def test_parallel_stop_on_first_matches_serial(seed):
    program = generate_program(seed, CONFIG)
    serial = _explore(program)
    assume(serial.complete)
    first_serial = Explorer(program, max_schedules=BUDGET).explore(
        stop_on_first=True
    )
    for workers in (2, 4):
        first_parallel = ParallelExplorer(
            program, workers=workers, max_schedules=BUDGET
        ).explore(stop_on_first=True)
        assert first_parallel.found == first_serial.found
        assert (
            first_parallel.first_match_schedule
            == first_serial.first_match_schedule
        )
        if first_serial.found:
            assert (
                first_parallel.schedules_run == first_serial.schedules_run
            )


def test_forced_fork_pool_matches_serial():
    # pool="auto" skips the process pool on single-CPU machines, so pin
    # the actual fork crossing (program inheritance, result pickling)
    # explicitly.
    program = generate_program(7, CONFIG)
    serial = _explore(program)
    assert serial.complete
    forced = ParallelExplorer(
        program, workers=2, max_schedules=BUDGET, pool="fork"
    ).explore()
    assert forced.complete
    assert forced.outcomes == serial.outcomes
    assert forced.schedules_run == serial.schedules_run
    assert forced.shards > 0


class TestWorkStealing:
    """strategy="steal" must stay observation-equivalent to serial DFS.

    The queue timing decides which worker runs which item and how stacks
    get split, but the key-sorted merge reconstructs serial order — so
    every assertion here is exact equality, not set equality.  The fork
    pool is forced: on single-CPU machines pool="auto" takes the
    in-process fallback where stealing never happens.
    """

    def test_steal_matches_serial_exactly(self):
        program = generate_program(7, CONFIG)
        serial = _explore(program)
        assert serial.complete
        for workers in (2, 4):
            stolen = ParallelExplorer(
                program, workers=workers, max_schedules=BUDGET,
                pool="fork", strategy="steal",
            ).explore()
            assert stolen.complete
            assert stolen.outcomes == serial.outcomes, workers
            assert stolen.schedules_run == serial.schedules_run, workers
            assert stolen.statuses == serial.statuses, workers
            assert [r.schedule for r in stolen.matching] == [
                r.schedule for r in serial.matching
            ], workers

    def test_steal_first_finding_position_matches_serial(self):
        # Pick a generated program whose default predicate (failure)
        # actually matches, then compare the serial-order position of
        # the first match under both strategies.
        for seed in range(64):
            program = generate_program(seed, CONFIG)
            serial = _explore(program)
            if serial.complete and serial.found:
                break
        else:
            pytest.skip("no failing generated program in seed range")
        for strategy in ("steal", "shard"):
            parallel = ParallelExplorer(
                program, workers=2, max_schedules=BUDGET,
                pool="fork", strategy=strategy,
            ).explore()
            assert parallel.first_match_schedule == (
                serial.first_match_schedule
            ), strategy
            assert parallel.schedules_to_first_finding == (
                serial.schedules_to_first_finding
            ), strategy

    def test_steal_stop_on_first_matches_serial(self):
        program = generate_program(7, CONFIG)
        first_serial = Explorer(program, max_schedules=BUDGET).explore(
            stop_on_first=True
        )
        first_stolen = ParallelExplorer(
            program, workers=2, max_schedules=BUDGET,
            pool="fork", strategy="steal",
        ).explore(stop_on_first=True)
        assert first_stolen.found == first_serial.found
        assert (
            first_stolen.first_match_schedule
            == first_serial.first_match_schedule
        )

    def test_shard_strategy_still_available(self):
        program = generate_program(7, CONFIG)
        serial = _explore(program)
        sharded = ParallelExplorer(
            program, workers=2, max_schedules=BUDGET,
            pool="fork", strategy="shard",
        ).explore()
        assert sharded.outcomes == serial.outcomes
        assert sharded.schedules_run == serial.schedules_run
        # The legacy path never donates.
        assert sharded.steal_donations == 0
        assert sharded.stolen_prefixes == 0

    def test_in_process_fallback_ignores_strategy(self):
        program = generate_program(7, CONFIG)
        results = [
            ParallelExplorer(
                program, workers=2, max_schedules=BUDGET,
                pool="none", strategy=strategy,
            ).explore()
            for strategy in ("steal", "shard")
        ]
        assert results[0].outcomes == results[1].outcomes
        assert results[0].schedules_run == results[1].schedules_run
        assert results[0].steal_donations == 0

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError, match="strategy"):
            ParallelExplorer(
                generate_program(7, CONFIG), workers=2, strategy="greedy"
            )


def test_forced_fork_pool_unavailable_raises(monkeypatch):
    # An explicit pool="fork" must fail loudly where fork doesn't exist,
    # not silently degrade to in-process execution.
    monkeypatch.setattr(
        "repro.sim.parallel.multiprocessing.get_all_start_methods",
        lambda: ["spawn"],
    )
    with pytest.raises(ValueError, match="fork"):
        ParallelExplorer(generate_program(7, CONFIG), workers=2, pool="fork")


def test_find_schedule_workers_agree():
    program = generate_program(6, CONFIG)
    serial = find_schedule(program)
    parallel = find_schedule(program, workers=2)
    assert (serial is None) == (parallel is None)
    if serial is not None:
        assert parallel.schedule == serial.schedule


def test_enumerate_outcomes_workers_agree():
    program = generate_program(7, CONFIG)
    serial = enumerate_outcomes(program, max_schedules=BUDGET)
    parallel = enumerate_outcomes(program, max_schedules=BUDGET, workers=4)
    assert serial.complete and parallel.complete
    assert parallel.outcomes == serial.outcomes


class TestDeterminism:
    """Fixed seed + fixed worker count => byte-identical results."""

    def test_merged_summary_is_reproducible(self):
        program = generate_program(7, CONFIG)
        for workers in WORKER_COUNTS:
            first = ParallelExplorer(
                program, workers=workers, max_schedules=BUDGET
            ).explore()
            second = ParallelExplorer(
                program, workers=workers, max_schedules=BUDGET
            ).explore()
            assert first.summary() == second.summary()
            assert first.outcomes == second.outcomes
            assert first.statuses == second.statuses
            assert first.shards == second.shards
            assert [r.schedule for r in first.matching] == [
                r.schedule for r in second.matching
            ]

    def test_memoized_runs_are_reproducible(self):
        program = generate_program(7, CONFIG)
        first = Explorer(program, max_schedules=BUDGET, memoize=True).explore()
        second = Explorer(program, max_schedules=BUDGET, memoize=True).explore()
        assert first.summary() == second.summary()
        assert first.outcomes == second.outcomes
        assert first.cache_hits == second.cache_hits
