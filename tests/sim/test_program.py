"""Program construction and validation tests."""

import pytest

from repro.errors import ProgramError
from repro.sim import CooperativeScheduler, Program, Read, Write, Yield, run_program
from repro.sim.thread import ThreadState
from tests import helpers


def noop():
    yield Yield()


class TestConstruction:
    def test_programs_need_threads(self):
        with pytest.raises(ProgramError, match="no threads"):
            Program("empty", threads={})

    def test_start_defaults_to_all_threads(self):
        prog = Program("p", threads={"A": noop, "B": noop})
        assert prog.start == ["A", "B"]

    def test_start_must_reference_declared_threads(self):
        with pytest.raises(ProgramError, match="not declared"):
            Program("p", threads={"A": noop}, start=["B"])

    def test_bodies_must_be_callable(self):
        with pytest.raises(ProgramError, match="not callable"):
            Program("p", threads={"A": 42})

    def test_sync_validation_happens_at_construction(self):
        with pytest.raises(ProgramError, match="undeclared lock"):
            Program("p", threads={"A": noop}, conditions={"cv": "missing"})

    def test_duplicate_sync_names_rejected(self):
        with pytest.raises(ProgramError, match="more than once"):
            Program("p", threads={"A": noop}, locks=["X"], rwlocks=["X"])


class TestRunIsolation:
    def test_runs_do_not_share_memory(self):
        prog = helpers.racy_counter()
        first = run_program(prog, CooperativeScheduler())
        second = run_program(prog, CooperativeScheduler())
        assert first.memory == second.memory == {"counter": 2}

    def test_make_threads_returns_fresh_new_threads(self):
        prog = helpers.racy_counter()
        threads = prog.make_threads()
        assert all(t.state is ThreadState.NEW for t in threads.values())
        again = prog.make_threads()
        assert threads["T1"] is not again["T1"]

    def test_initial_mapping_not_aliased(self):
        initial = {"data": [1, 2]}

        def body():
            value = yield Read("data")
            value.append(3)
            yield Write("data", value)

        prog = Program("alias", threads={"T": body}, initial=initial)
        run_program(prog, CooperativeScheduler())
        assert initial["data"] == [1, 2]


class TestWithThreads:
    def test_swapping_bodies_keeps_declarations(self):
        prog = helpers.locked_counter()

        def fixed():
            yield Yield()

        patched = prog.with_threads({"T1": fixed, "T2": fixed}, name="patched")
        assert patched.name == "patched"
        assert patched.locks == prog.locks
        assert patched.initial == prog.initial
        result = run_program(patched, CooperativeScheduler())
        assert result.memory["counter"] == 0

    def test_start_list_filtered_to_new_threads(self):
        prog = Program("p", threads={"A": noop, "B": noop}, start=["A", "B"])
        reduced = prog.with_threads({"A": noop})
        assert reduced.start == ["A"]


class TestBodyProtocol:
    def test_non_generator_body_rejected_at_run(self):
        def not_a_generator():
            return None

        prog = Program("bad", threads={"T": not_a_generator})
        with pytest.raises(ProgramError, match="not a generator"):
            run_program(prog, CooperativeScheduler())

    def test_yielding_non_op_rejected(self):
        def bad_yield():
            yield "not an op"

        prog = Program("bad", threads={"T": bad_yield})
        with pytest.raises(ProgramError, match="must yield"):
            run_program(prog, CooperativeScheduler())
