"""Differential harness for dynamic partial-order reduction.

The trusted baseline is the plain serial :class:`Explorer`.  A complete
:class:`DPORExplorer` search of the same program must reach exactly the
same terminal outcome set (status + final memory) and the same failure
verdict — while *launching* no more engine runs than the sleep-set
explorer it supersedes.  "Launched" counts every run the engine starts,
completed or pruned mid-flight (``schedules_run + pruned_runs``): that
is the cost-proportional metric, because a pruned sleep-set run still
executes its shared prefix.

The matrix dimensions the seed harness covers for the other explorers
(memoize, preemption bound, workers) all compose with DPOR now:
``memoize`` prunes revisited states as truncated runs,
``preemption_bound`` switches to bounded DPOR (conservative backtrack
points at context-switch boundaries, sleep sets off), and ``workers>1``
routes through the speculative parallel coordinator.  The full
``reduction × bound × workers`` matrix is differential-tested here
against the plain DFS exploring the same (sub)space; the remaining
``ValueError`` cells are sleep-set-specific (sleepset × bound,
sleepset × workers) and stay asserted as such.
"""

from __future__ import annotations

import pytest
from hypothesis import assume, given, settings

from repro.kernels import all_kernels
from repro.sim import Explorer, Program, Write
from repro.sim.dpor import DPORExplorer
from repro.sim.explorer import enumerate_outcomes, find_schedule, make_explorer
from repro.sim.reduction import SleepSetExplorer
from tests import helpers
from tests.helpers import corpus_programs, worker_counts

BUDGET = 60000

#: The composition matrix (satellite of PR 6): preemption bounds and
#: worker counts every reduction is differentially tested under.
BOUNDS = (None, 1, 2)
WORKERS = worker_counts()


def _launched(explorer, result):
    """Engine runs started: completed schedules plus mid-run prunes."""
    return result.schedules_run + explorer.pruned_runs


@settings(max_examples=20, deadline=None, derandomize=True)
@given(corpus_programs())
def test_outcome_sets_match_plain_dfs(program):
    full = Explorer(program, max_schedules=BUDGET).explore(
        predicate=lambda run: False
    )
    assume(full.complete)  # outsized programs carry no comparison value
    reducer = DPORExplorer(program, max_schedules=BUDGET)
    reduced = reducer.explore(predicate=lambda run: False)
    assert reduced.complete
    assert set(reduced.outcomes) == set(full.outcomes)
    assert reduced.schedules_run <= full.schedules_run


@settings(max_examples=12, deadline=None, derandomize=True)
@given(corpus_programs())
def test_launches_no_more_runs_than_sleep_sets(program):
    sleep = SleepSetExplorer(program, max_schedules=BUDGET)
    sleep_result = sleep.explore(predicate=lambda run: False)
    assume(sleep_result.complete)
    dpor = DPORExplorer(program, max_schedules=BUDGET)
    dpor_result = dpor.explore(predicate=lambda run: False)
    assert dpor_result.complete
    assert set(dpor_result.outcomes) == set(sleep_result.outcomes)
    assert dpor_result.schedules_run <= sleep_result.schedules_run
    assert _launched(dpor, dpor_result) <= _launched(sleep, sleep_result)


@settings(max_examples=12, deadline=None, derandomize=True)
@given(corpus_programs())
def test_failure_verdicts_match(program):
    full = Explorer(program, max_schedules=BUDGET).explore()
    assume(full.complete)
    reduced = DPORExplorer(program, max_schedules=BUDGET).explore()
    assert full.found == reduced.found
    assert set(full.statuses) == set(reduced.statuses)


@settings(max_examples=8, deadline=None, derandomize=True)
@given(corpus_programs())
def test_valid_matrix_neighbours_agree(program):
    # The seed matrix (memoize x bound x reduction) restricted to its
    # sound cells: every complete search variant lands on one outcome set.
    full = Explorer(program, max_schedules=BUDGET).explore()
    assume(full.complete)
    outcomes = set(full.outcomes)
    dpor = DPORExplorer(program, max_schedules=BUDGET).explore()
    assert set(dpor.outcomes) == outcomes
    for memoize in (False, True):
        sleep = SleepSetExplorer(
            program, max_schedules=BUDGET, memoize=memoize
        ).explore()
        assert set(sleep.outcomes) == outcomes, memoize
    memoized = Explorer(program, max_schedules=BUDGET, memoize=True).explore()
    assert set(memoized.outcomes) == outcomes
    # A bounded search explores a subtree: its outcomes are a subset of
    # what DPOR (which covers the whole space) reports.
    bounded = Explorer(
        program, max_schedules=BUDGET, preemption_bound=1
    ).explore()
    assert set(bounded.outcomes) <= set(dpor.outcomes)


class TestOnKnownPrograms:
    def test_racy_counter_keeps_both_outcomes(self):
        reduced = DPORExplorer(helpers.racy_counter()).explore(
            predicate=lambda run: False
        )
        finals = {key[1][0][1] for key in reduced.outcomes}
        assert finals == {1, 2}

    def test_every_kernel_verdict_and_outcomes_preserved(self):
        for kernel in all_kernels():
            full = Explorer(kernel.buggy, max_schedules=100000).explore(
                predicate=kernel.failure
            )
            reduced = DPORExplorer(kernel.buggy, max_schedules=100000).explore(
                predicate=kernel.failure
            )
            assert reduced.found == full.found, kernel.name
            assert set(reduced.outcomes) == set(full.outcomes), kernel.name
            assert reduced.schedules_run <= full.schedules_run, kernel.name

    def test_every_kernel_launches_no_more_than_sleep_sets(self):
        for kernel in all_kernels():
            sleep = SleepSetExplorer(kernel.buggy, max_schedules=100000)
            sleep_result = sleep.explore(predicate=kernel.failure)
            dpor = DPORExplorer(kernel.buggy, max_schedules=100000)
            dpor_result = dpor.explore(predicate=kernel.failure)
            assert dpor_result.schedules_run <= sleep_result.schedules_run, (
                kernel.name
            )
            assert _launched(dpor, dpor_result) <= _launched(
                sleep, sleep_result
            ), kernel.name

    def test_independent_threads_collapse_to_one_schedule(self):
        def writer(var):
            def body():
                yield Write(var, 1)
                yield Write(var, 2)

            return body

        program = Program(
            "independent",
            threads={"A": writer("x"), "B": writer("y")},
            initial={"x": 0, "y": 0},
        )
        explorer = DPORExplorer(program)
        reduced = explorer.explore(predicate=lambda run: False)
        assert reduced.schedules_run == 1
        assert explorer.backtrack_points == 0

    def test_reduction_beats_sleep_sets_on_three_way_deadlock(self):
        kernel = next(
            k for k in all_kernels() if k.name == "deadlock_three_way"
        )
        sleep = SleepSetExplorer(kernel.buggy, max_schedules=100000)
        sleep_result = sleep.explore(predicate=kernel.failure)
        dpor = DPORExplorer(kernel.buggy, max_schedules=100000)
        dpor_result = dpor.explore(predicate=kernel.failure)
        assert _launched(dpor, dpor_result) < _launched(sleep, sleep_result)


@settings(max_examples=6, deadline=None, derandomize=True)
@given(corpus_programs())
def test_full_matrix_agrees_with_plain_dfs(program):
    """reduction × bound × workers, every cell vs the same-bound DFS.

    The trusted baseline for a bounded cell is the plain DFS under the
    same bound (both explore exactly the ≤-bound subtree); for
    unbounded cells it is the exhaustive DFS.  Sleep sets only exist in
    the serial unbounded cell.  ``workers>1`` cells go through
    ``make_explorer`` so the parallel coordinator's merge is what's
    under test (in-process on one CPU, forked on CI's multi-core
    matrix job).
    """
    baselines = {}
    for bound in BOUNDS:
        dfs = Explorer(
            program, max_schedules=BUDGET, preemption_bound=bound
        ).explore()
        baselines[bound] = dfs
    assume(baselines[None].complete)
    sleep = SleepSetExplorer(program, max_schedules=BUDGET)
    sleep_result = sleep.explore()
    assert set(sleep_result.outcomes) == set(baselines[None].outcomes)
    for bound in BOUNDS:
        dfs = baselines[bound]
        for workers in WORKERS:
            explorer = make_explorer(
                program, workers=workers, reduction="dpor",
                preemption_bound=bound, max_schedules=BUDGET,
            )
            reduced = explorer.explore()
            cell = f"bound={bound} workers={workers}"
            assert set(reduced.outcomes) == set(dfs.outcomes), cell
            assert reduced.found == dfs.found, cell
            assert set(reduced.statuses) == set(dfs.statuses), cell
            assert reduced.schedules_run <= dfs.schedules_run, cell
            if bound is None and workers == 1:
                # The launched-runs economy only binds where sleep sets
                # are comparable: serial, unbounded.
                assert _launched(explorer, reduced) <= _launched(
                    sleep, sleep_result
                )


@settings(max_examples=8, deadline=None, derandomize=True)
@given(corpus_programs())
def test_memoized_dpor_matches_plain_dfs(program):
    full = Explorer(program, max_schedules=BUDGET).explore()
    assume(full.complete)
    for bound in (None, 2):
        dfs = Explorer(
            program, max_schedules=BUDGET, preemption_bound=bound
        ).explore()
        memo = DPORExplorer(
            program, max_schedules=BUDGET, memoize=True,
            preemption_bound=bound,
        ).explore()
        assert set(memo.outcomes) == set(dfs.outcomes), bound
        assert memo.found == dfs.found, bound


class TestDirectedComposition:
    def test_targets_bias_composes_with_dpor(self):
        kernel = next(
            k for k in all_kernels() if k.name == "atomicity_single_var"
        )
        plain = DPORExplorer(kernel.buggy, max_schedules=BUDGET).explore(
            predicate=kernel.failure
        )
        directed = make_explorer(
            kernel.buggy, targets=kernel.static_targets(), reduction="dpor"
        ).explore(predicate=kernel.failure)
        assert set(directed.outcomes) == set(plain.outcomes)
        assert directed.found == plain.found

    def test_targets_compose_with_bounded_dpor(self):
        # Race-directed ordering permutes exploration order, never the
        # explored set — also under a preemption bound.
        kernel = next(
            k for k in all_kernels() if k.name == "atomicity_single_var"
        )
        for bound in (1, 2):
            plain = DPORExplorer(
                kernel.buggy, max_schedules=BUDGET, preemption_bound=bound
            ).explore(predicate=kernel.failure)
            directed = make_explorer(
                kernel.buggy, targets=kernel.static_targets(),
                reduction="dpor", preemption_bound=bound,
            ).explore(predicate=kernel.failure)
            assert set(directed.outcomes) == set(plain.outcomes), bound
            assert directed.found == plain.found, bound

    def test_targets_compose_with_parallel_dpor(self):
        kernel = next(
            k for k in all_kernels() if k.name == "multivar_torn_invariant"
        )
        plain = DPORExplorer(kernel.buggy, max_schedules=BUDGET).explore(
            predicate=kernel.failure
        )
        for workers in worker_counts(default=(2,)):
            directed = make_explorer(
                kernel.buggy, targets=kernel.static_targets(),
                reduction="dpor", workers=workers,
            ).explore(predicate=kernel.failure)
            assert set(directed.outcomes) == set(plain.outcomes), workers
            assert directed.found == plain.found, workers


class TestComposedAccelerators:
    """The former ValueError cells, now working paths (PR 6)."""

    def test_memoize_accepted_and_equal_on_kernels(self):
        for kernel in all_kernels():
            plain = DPORExplorer(
                kernel.buggy, max_schedules=100000
            ).explore(predicate=kernel.failure)
            memo = DPORExplorer(
                kernel.buggy, max_schedules=100000, memoize=True
            ).explore(predicate=kernel.failure)
            assert set(memo.outcomes) == set(plain.outcomes), kernel.name
            assert memo.found == plain.found, kernel.name
            assert memo.schedules_run <= plain.schedules_run, kernel.name

    def test_memoize_prunes_revisits_on_torn_kernel(self):
        kernel = next(
            k for k in all_kernels() if k.name == "multivar_torn_invariant"
        )
        plain = DPORExplorer(kernel.buggy, max_schedules=100000).explore(
            predicate=kernel.failure
        )
        memo = DPORExplorer(
            kernel.buggy, max_schedules=100000, memoize=True
        ).explore(predicate=kernel.failure)
        assert memo.cache_hits > 0
        assert memo.schedules_run < plain.schedules_run

    def test_bounded_dpor_matches_bounded_dfs_on_kernels(self):
        for kernel in all_kernels():
            for bound in (0, 1, 2):
                dfs = Explorer(
                    kernel.buggy, max_schedules=100000,
                    preemption_bound=bound,
                ).explore(predicate=kernel.failure)
                bounded = DPORExplorer(
                    kernel.buggy, max_schedules=100000,
                    preemption_bound=bound,
                ).explore(predicate=kernel.failure)
                cell = (kernel.name, bound)
                assert set(bounded.outcomes) == set(dfs.outcomes), cell
                assert bounded.found == dfs.found, cell
                assert bounded.schedules_run <= dfs.schedules_run, cell

    def test_bounded_dpor_reduces_three_way_deadlock(self):
        kernel = next(
            k for k in all_kernels() if k.name == "deadlock_three_way"
        )
        dfs = Explorer(
            kernel.buggy, max_schedules=100000, preemption_bound=2
        ).explore(predicate=kernel.failure)
        bounded = DPORExplorer(
            kernel.buggy, max_schedules=100000, preemption_bound=2
        ).explore(predicate=kernel.failure)
        assert bounded.schedules_run < dfs.schedules_run

    def test_make_explorer_routes_dpor_workers_to_parallel(self):
        from repro.sim.dpor_parallel import ParallelDPORExplorer

        explorer = make_explorer(
            helpers.racy_counter(), workers=2, reduction="dpor"
        )
        assert isinstance(explorer, ParallelDPORExplorer)

    def test_make_explorer_sleepset_still_rejects_workers(self):
        with pytest.raises(ValueError, match="workers"):
            make_explorer(
                helpers.racy_counter(), workers=2, reduction="sleepset"
            )

    def test_make_explorer_rejects_unknown_reduction(self):
        with pytest.raises(ValueError, match="reduction"):
            make_explorer(helpers.racy_counter(), reduction="odpor")

    def test_make_explorer_sleepset_rejects_bound(self):
        with pytest.raises(ValueError, match="preemption"):
            make_explorer(
                helpers.racy_counter(), preemption_bound=1,
                reduction="sleepset",
            )


class TestEntryPoints:
    def test_find_schedule_reduction_agrees(self):
        program = helpers.racy_counter()
        serial = find_schedule(program)
        reduced = find_schedule(program, reduction="dpor")
        assert (serial is None) == (reduced is None)

    def test_enumerate_outcomes_reduction_agrees(self):
        program = helpers.racy_counter()
        serial = enumerate_outcomes(program, max_schedules=BUDGET)
        reduced = enumerate_outcomes(
            program, max_schedules=BUDGET, reduction="dpor"
        )
        assert serial.complete and reduced.complete
        assert set(reduced.outcomes) == set(serial.outcomes)
        assert reduced.schedules_run <= serial.schedules_run
