"""Detector-coverage integration: which detector classes catch which kernels.

Reproduces the study's implications-for-detection discussion as assertions:
race detectors flag the racy kernels but are structurally blind to the
race-free atomicity violation; the atomicity detector sees unserializable
interleavings; the deadlock detector owns lock cycles.
"""

import pytest

from repro.detectors import (
    AtomicityDetector,
    DeadlockDetector,
    DetectorSuite,
    FindingKind,
    HappensBeforeDetector,
    LocksetDetector,
    OrderViolationDetector,
)
from repro.kernels import get_kernel


def failing_trace(kernel):
    failing = kernel.find_manifestation()
    assert failing is not None
    return failing.trace


class TestRaceDetectorCoverage:
    def test_hb_flags_single_var_atomicity_kernel(self):
        kernel = get_kernel("atomicity_single_var")
        report = HappensBeforeDetector().analyse(failing_trace(kernel))
        assert not report.clean

    def test_lockset_flags_single_var_atomicity_kernel(self):
        kernel = get_kernel("atomicity_single_var")
        report = LocksetDetector().analyse(failing_trace(kernel))
        assert not report.clean

    def test_race_detectors_blind_to_race_free_atomicity(self):
        """The study's key blind spot: lock-protected non-atomic sections."""
        kernel = get_kernel("atomicity_lock_free")
        trace = failing_trace(kernel)
        assert HappensBeforeDetector().analyse(trace).clean
        assert LocksetDetector().analyse(trace).clean
        # ... while the atomicity detector catches it:
        report = AtomicityDetector().analyse(trace)
        assert report.of_kind(FindingKind.ATOMICITY_VIOLATION)

    def test_multivar_partially_visible_to_race_detectors(self):
        # The individual accesses do race (no locks at all in the buggy
        # version), so race detectors fire — but on *each* variable
        # separately, never seeing the cross-variable invariant.
        kernel = get_kernel("multivar_buffer_flag")
        report = HappensBeforeDetector().analyse(failing_trace(kernel))
        assert not report.clean


class TestAtomicityDetectorCoverage:
    @pytest.mark.parametrize(
        "name", ["atomicity_single_var", "atomicity_wwr_log", "atomicity_lock_free"]
    )
    def test_flags_all_atomicity_kernels(self, name):
        kernel = get_kernel(name)
        report = AtomicityDetector().analyse(failing_trace(kernel))
        assert report.of_kind(FindingKind.ATOMICITY_VIOLATION), name

    def test_does_not_flag_deadlock_kernel(self):
        kernel = get_kernel("deadlock_abba")
        report = AtomicityDetector().analyse(failing_trace(kernel))
        assert report.clean


class TestOrderDetectorCoverage:
    def test_flags_use_before_init(self):
        kernel = get_kernel("order_use_before_init")
        detector = OrderViolationDetector.for_program(kernel.buggy)
        report = detector.analyse(failing_trace(kernel))
        assert report.of_kind(FindingKind.ORDER_VIOLATION)

    def test_flags_lost_wakeup(self):
        kernel = get_kernel("order_lost_wakeup")
        detector = OrderViolationDetector.for_program(kernel.buggy)
        report = detector.analyse(failing_trace(kernel))
        kinds = {f.kind for f in report}
        assert kinds & {FindingKind.ORDER_VIOLATION, FindingKind.HANG}


class TestDeadlockDetectorCoverage:
    @pytest.mark.parametrize(
        "name", ["deadlock_self", "deadlock_abba", "deadlock_three_way"]
    )
    def test_flags_observed_deadlocks(self, name):
        kernel = get_kernel(name)
        report = DeadlockDetector().analyse(failing_trace(kernel))
        assert report.of_kind(FindingKind.DEADLOCK) or report.of_kind(
            FindingKind.POTENTIAL_DEADLOCK
        )

    def test_predicts_abba_from_successful_run(self):
        from repro.sim import CooperativeScheduler, run_program

        kernel = get_kernel("deadlock_abba")
        good = run_program(kernel.buggy, CooperativeScheduler())
        assert good.ok
        report = DeadlockDetector().analyse(good.trace)
        assert report.of_kind(FindingKind.POTENTIAL_DEADLOCK)

    def test_fixed_abba_has_no_cycle(self):
        from repro.sim import CooperativeScheduler, run_program

        kernel = get_kernel("deadlock_abba")
        good = run_program(kernel.fixed, CooperativeScheduler())
        report = DeadlockDetector().analyse(good.trace)
        assert report.clean


class TestSuiteOnKernels:
    def test_every_buggy_kernel_flagged_by_some_detector(self):
        from repro.kernels import all_kernels

        for kernel in all_kernels():
            suite = DetectorSuite.for_program(kernel.buggy)
            result = suite.analyse(failing_trace(kernel))
            assert result.flagged_by(), kernel.name

    def test_fixed_kernels_clean_under_suite(self):
        from repro.bugdb.schema import FixStrategy
        from repro.kernels import all_kernels
        from repro.sim import RandomScheduler, run_program

        for kernel in all_kernels():
            suite = DetectorSuite.for_program(kernel.fixed)
            trace = run_program(kernel.fixed, RandomScheduler(seed=3)).trace
            result = suite.analyse(trace)
            noisy = set(result.flagged_by())
            # Study-faithful nuance: a condition-check fix neutralises the
            # *consequence* without removing the race itself (73% of the
            # studied fixes add no synchronisation).  Race detectors are
            # expected to keep flagging the now-benign race.
            allowed = {"deadlock"}
            if kernel.fix_strategy is FixStrategy.COND_CHECK:
                allowed |= {"happens-before", "lockset", "atomicity"}
            if kernel.fix_strategy is FixStrategy.GIVE_UP_RESOURCE:
                # Give-up fixes re-validate after reacquiring: a benign
                # cross-section pair that untrained AVIO still flags
                # (invariant learning whitelists it — see the AVIO tests).
                allowed |= {"atomicity"}
            if kernel.name == "actor_lost_message":
                # The code-switch fix reorders the send before the flag
                # check but — like most of the studied fixes — adds no
                # synchronisation, so the now-benign race on the
                # shutdown flag stays visible to race detectors.
                allowed |= {"happens-before", "lockset"}
            if kernel.name == "weakmem_store_buffer":
                # The Dekker flag protocol is built from intentionally
                # racy flag accesses; the fence fix orders store
                # *visibility*, not happens-before, so race detectors
                # keep flagging the (correct) idiom.
                allowed |= {"happens-before", "lockset"}
            if kernel.name == "order_teardown_use":
                # Eraser's classic fork-join false positive: the fix orders
                # the accesses via Join, which the lockset discipline cannot
                # see (HB, which models join edges, is clean here).
                allowed |= {"lockset"}
            assert noisy <= allowed, (kernel.name, result.format())

    def test_cond_check_fix_leaves_benign_race_visible(self):
        """The fixed js-gc kernel no longer crashes but still races."""
        from repro.sim import Explorer, RandomScheduler, run_program

        kernel = get_kernel("atomicity_single_var")
        assert kernel.verify_fixed()  # consequence gone...
        trace = run_program(kernel.fixed, RandomScheduler(seed=3)).trace
        report = HappensBeforeDetector().analyse(trace)
        assert not report.clean  # ...but the race remains

    def test_add_lock_alternative_fix_removes_the_race_too(self):
        from repro.sim import RandomScheduler, run_program

        kernel = get_kernel("atomicity_single_var")
        (strategy, locked_program), = kernel.alternative_fixes
        trace = run_program(locked_program, RandomScheduler(seed=3)).trace
        assert HappensBeforeDetector().analyse(trace).clean
