"""Kernel integration tests: every kernel manifests, every fix verifies.

These are the executable form of the paper's figures: each kernel must
(a) manifest under exhaustive exploration, (b) manifest with *exactly* its
recorded characteristics, and (c) stop manifesting once its recorded fix
strategy is applied.
"""

import pytest

from repro.bugdb.schema import BugCategory, DEADLOCK_FIXES, NON_DEADLOCK_FIXES
from repro.kernels import all_kernels, get_kernel, kernel_names
from repro.sim import Explorer, RunStatus, replay

KERNELS = all_kernels()
IDS = [k.name for k in KERNELS]


@pytest.fixture(params=KERNELS, ids=IDS)
def kernel(request):
    return request.param


class TestEveryKernel:
    def test_manifests_under_exploration(self, kernel):
        assert kernel.find_manifestation() is not None

    def test_manifestation_is_replayable(self, kernel):
        failing = kernel.find_manifestation()
        rerun = replay(kernel.buggy, failing.schedule)
        assert kernel.failure(rerun)

    def test_fix_is_exhaustively_clean(self, kernel):
        assert kernel.verify_fixed()

    def test_alternative_fixes_are_clean(self, kernel):
        for strategy, program in kernel.alternative_fixes:
            result = Explorer(program, max_schedules=50000).explore(
                predicate=kernel.failure, stop_on_first=True
            )
            assert result.complete and not result.found, strategy

    def test_fix_strategy_matches_category(self, kernel):
        legal = (
            DEADLOCK_FIXES
            if kernel.category is BugCategory.DEADLOCK
            else NON_DEADLOCK_FIXES
        )
        assert kernel.fix_strategy in legal
        for strategy, _ in kernel.alternative_fixes:
            assert strategy in legal

    def test_thread_count_matches_record(self, kernel):
        assert len(kernel.buggy.threads) == kernel.threads_involved

    def test_dimension_fields_match_category(self, kernel):
        if kernel.category is BugCategory.DEADLOCK:
            assert kernel.resources_involved is not None
            assert kernel.variables_involved is None
        else:
            assert kernel.variables_involved is not None
            assert kernel.resources_involved is None

    def test_manifest_order_labels_are_unique_sites(self, kernel):
        labels = set()
        for earlier, later in kernel.manifest_order:
            labels.update((earlier, later))
        # The constrained sites are at most accesses + critical-section
        # entry proxies; never fewer than the pairs imply.
        assert len(labels) <= max(kernel.accesses_to_manifest * 2, 2)

    def test_summary_mentions_name(self, kernel):
        assert kernel.name in kernel.summary()


class TestVariableInvolvement:
    @pytest.mark.parametrize(
        "name", ["atomicity_single_var", "atomicity_wwr_log", "atomicity_lock_free"]
    )
    def test_single_variable_kernels_fail_through_one_variable(self, name):
        kernel = get_kernel(name)
        assert kernel.variables_involved == 1

    def test_multivar_kernel_involves_two(self):
        kernel = get_kernel("multivar_buffer_flag")
        assert kernel.variables_involved == 2
        failing = kernel.find_manifestation()
        touched = set(failing.trace.variables_touched())
        assert {"table", "empty"} <= touched


class TestDeadlockKernels:
    def test_self_deadlock_manifests_in_every_schedule(self):
        kernel = get_kernel("deadlock_self")
        assert kernel.manifestation_rate() == 1.0

    def test_abba_statuses_partition(self):
        from repro.sim import enumerate_outcomes

        kernel = get_kernel("deadlock_abba")
        result = enumerate_outcomes(kernel.buggy, require_complete=True)
        assert result.statuses[RunStatus.DEADLOCK] > 0
        assert result.statuses[RunStatus.OK] > 0

    def test_three_way_needs_three_threads(self):
        kernel = get_kernel("deadlock_three_way")
        failing = kernel.find_manifestation()
        assert len(failing.blocked) == 3

    def test_resource_counts(self):
        assert get_kernel("deadlock_self").resources_involved == 1
        assert get_kernel("deadlock_abba").resources_involved == 2
        assert get_kernel("deadlock_three_way").resources_involved == 3
        assert get_kernel("deadlock_rwlock_upgrade").resources_involved == 1

    def test_upgrade_deadlock_blocks_both_writers(self):
        kernel = get_kernel("deadlock_rwlock_upgrade")
        failing = kernel.find_manifestation()
        blocked = dict(failing.blocked)
        assert set(blocked) == {"T1", "T2"}
        assert all(reason.startswith("rwlock:") for reason in blocked.values())

    def test_upgrade_fix_is_linearizable(self):
        """The give-up fix must still produce a correct final count."""
        from repro.sim import enumerate_outcomes

        kernel = get_kernel("deadlock_rwlock_upgrade")
        result = enumerate_outcomes(kernel.fixed, require_complete=True)
        finals = {key[1][0][1] for key in result.outcomes}
        assert finals == {2}  # both increments always land


class TestRegistry:
    def test_sixteen_kernels_registered(self):
        assert len(kernel_names()) == 16

    def test_family_filters_partition_the_registry(self):
        from repro.kernels import families

        assert families() == ["actor", "sc", "weakmem"]
        by_family = [kernel_names(family=f) for f in families()]
        assert sorted(sum(by_family, [])) == sorted(kernel_names())
        assert kernel_names(family="actor") == [
            "actor_mailbox_order", "actor_lost_message"
        ]
        assert kernel_names(family="weakmem") == ["weakmem_store_buffer"]
        with pytest.raises(KeyError, match="unknown kernel family"):
            kernel_names(family="gpu")

    def test_get_kernel_returns_fresh_instances(self):
        a = get_kernel("deadlock_abba")
        b = get_kernel("deadlock_abba")
        assert a is not b
        assert a.buggy is not b.buggy

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            get_kernel("nonexistent")

    def test_bugdb_links_resolve(self):
        from repro.bugdb import BugDatabase

        known = set(kernel_names())
        for record in BugDatabase.load().with_kernel():
            assert record.kernel in known, record.bug_id

    def test_anchored_records_match_kernel_dimensions(self):
        """The paper's figure examples: record characteristics == kernel's."""
        from repro.bugdb import BugDatabase

        db = BugDatabase.load()
        anchored = [
            r
            for r in db
            if r.report_ref.startswith(("anchored:", "MySQL#", "Apache#"))
            and r.kernel is not None
        ]
        assert len(anchored) >= 10
        for record in anchored:
            kernel = get_kernel(record.kernel)
            assert kernel.threads_involved == record.threads_involved, record.bug_id
            assert kernel.variables_involved == record.variables_involved, record.bug_id
            assert kernel.resources_involved == record.resources_involved, record.bug_id
            assert kernel.accesses_to_manifest == record.accesses_to_manifest, record.bug_id
