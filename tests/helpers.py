"""Shared program builders used across the test suite.

Each helper returns a fresh :class:`~repro.sim.Program`; they are the
canonical micro-programs the simulator/detector tests exercise.

The module also hosts the *generated-program corpus*: a restricted
grammar of straight-line threads (reads / read-increment-writes over a
two-variable alphabet, optionally lock-wrapped, optionally crashing)
plus hypothesis strategies over it.  Every corpus program terminates and
is exhaustively explorable, which is what the differential tests
(plain DFS vs sleep sets vs memoization vs parallel sharding) need.
"""

from __future__ import annotations

import os

from hypothesis import strategies as st

from repro.errors import SimCrash
from repro.sim import (
    Acquire,
    AcquireRead,
    AcquireWrite,
    BarrierWait,
    Join,
    Notify,
    Program,
    Read,
    Release,
    ReleaseRead,
    ReleaseWrite,
    SemAcquire,
    SemRelease,
    Spawn,
    Wait,
    Write,
    Yield,
)


def worker_counts(default=(1, 2, 4)):
    """Worker counts the parallel-path tests iterate over.

    The CI matrix narrows this via ``REPRO_TEST_WORKERS`` (a
    comma-separated list) so the same tests run once under the
    single-worker serial path and once under a real 4-worker pool —
    parallel regressions can't hide behind the single-CPU fallback.
    """
    env = os.environ.get("REPRO_TEST_WORKERS")
    if env:
        return tuple(int(token) for token in env.split(","))
    return tuple(default)


def racy_counter(threads: int = 2) -> Program:
    """N unlocked read-increment-write threads on one counter."""

    def increment():
        value = yield Read("counter")
        yield Write("counter", value + 1)

    return Program(
        "racy-counter",
        threads={f"T{i}": increment for i in range(1, threads + 1)},
        initial={"counter": 0},
    )


def locked_counter(threads: int = 2) -> Program:
    """N properly locked increment threads on one counter."""

    def increment():
        yield Acquire("L")
        value = yield Read("counter")
        yield Write("counter", value + 1)
        yield Release("L")

    return Program(
        "locked-counter",
        threads={f"T{i}": increment for i in range(1, threads + 1)},
        initial={"counter": 0},
        locks=["L"],
    )


def abba_deadlock() -> Program:
    """The classic two-lock circular-wait deadlock."""

    def forward():
        yield Acquire("A")
        yield Acquire("B")
        yield Release("B")
        yield Release("A")

    def backward():
        yield Acquire("B")
        yield Acquire("A")
        yield Release("A")
        yield Release("B")

    return Program(
        "abba-deadlock",
        threads={"T1": forward, "T2": backward},
        locks=["A", "B"],
    )


def self_deadlock() -> Program:
    """Re-acquiring a held non-recursive mutex: the 1-resource deadlock."""

    def body():
        yield Acquire("L")
        yield Acquire("L")
        yield Release("L")

    return Program("self-deadlock", threads={"T1": body}, locks=["L"])


def null_deref_race() -> Program:
    """Use-before-init order violation: crash if reader runs first."""

    def reader():
        pointer = yield Read("ptr")
        if pointer is None:
            raise SimCrash("null pointer dereference")
        yield Write("out", pointer)

    def initialiser():
        yield Write("ptr", "object")

    return Program(
        "null-deref",
        threads={"Reader": reader, "Init": initialiser},
        initial={"ptr": None, "out": None},
    )


def lost_wakeup() -> Program:
    """Check-then-wait without holding the lock across the check: hangable."""

    def waiter():
        done = yield Read("done")
        if not done:
            yield Acquire("L")
            yield Wait("cv")
            yield Release("L")

    def signaller():
        yield Write("done", True)
        yield Acquire("L")
        yield Notify("cv")
        yield Release("L")

    return Program(
        "lost-wakeup",
        threads={"Waiter": waiter, "Signaller": signaller},
        initial={"done": False},
        locks=["L"],
        conditions={"cv": "L"},
    )


def semaphore_pingpong() -> Program:
    """Two threads strictly alternating via two semaphores."""

    def ping():
        for _ in range(2):
            yield SemAcquire("sa")
            count = yield Read("turns")
            yield Write("turns", count + 1)
            yield SemRelease("sb")

    def pong():
        for _ in range(2):
            yield SemAcquire("sb")
            count = yield Read("turns")
            yield Write("turns", count + 1)
            yield SemRelease("sa")

    return Program(
        "sem-pingpong",
        threads={"Ping": ping, "Pong": pong},
        initial={"turns": 0},
        semaphores={"sa": 1, "sb": 0},
    )


def spawn_join_chain() -> Program:
    """Main spawns a worker, joins it, then reads its result."""

    def main():
        yield Spawn("Worker")
        yield Join("Worker")
        result = yield Read("result")
        yield Write("observed", result)

    def worker():
        yield Write("result", 42)

    return Program(
        "spawn-join",
        threads={"Main": main, "Worker": worker},
        initial={"result": None, "observed": None},
        start=["Main"],
    )


def barrier_pair() -> Program:
    """Two threads meeting at a barrier, then racing on a counter."""

    def body():
        yield BarrierWait("bar")
        value = yield Read("n")
        yield Write("n", value + 1)

    return Program(
        "barrier-pair",
        threads={"X": body, "Y": body},
        initial={"n": 0},
        barriers={"bar": 2},
    )


def rwlock_readers_writer() -> Program:
    """Two readers and one writer on an rwlock-protected variable."""

    def reader():
        yield AcquireRead("RW")
        value = yield Read("data")
        yield ReleaseRead("RW")
        yield Write("sink", value)

    def writer():
        yield AcquireWrite("RW")
        yield Write("data", 1)
        yield ReleaseWrite("RW")

    return Program(
        "rw-readers-writer",
        threads={"R1": reader, "R2": reader, "W": writer},
        initial={"data": 0, "sink": None},
        rwlocks=["RW"],
    )


def ordered_handoff() -> Program:
    """Correct order enforcement via a semaphore: init always before use."""

    def initialiser():
        yield Write("ptr", "object")
        yield SemRelease("ready")

    def user():
        yield SemAcquire("ready")
        pointer = yield Read("ptr")
        if pointer is None:
            raise SimCrash("null pointer dereference")

    return Program(
        "ordered-handoff",
        threads={"Init": initialiser, "User": user},
        initial={"ptr": None},
        semaphores={"ready": 0},
    )


# -- generated-program corpus -------------------------------------------------
#
# A thread spec is ``(locked, op_list, crashes)``: whether the ops run
# under lock "L", a tuple of ("read" | "write", var) pairs, and whether a
# read of a value >= 3 crashes the thread.  A "write" is a
# read-increment-write (two scheduling points), so unlocked writers race.

CORPUS_VARS = ["x", "y"]
CORPUS_LOCK = "L"


def corpus_body(spec):
    """One thread body from a ``(locked, op_list, crashes)`` spec."""
    locked, op_list, crashes = spec

    def body():
        if locked:
            yield Acquire(CORPUS_LOCK)
        for kind, var in op_list:
            if kind == "read":
                value = yield Read(var)
                if crashes and value and value >= 3:
                    raise SimCrash("generated crash")
            else:
                current = yield Read(var)
                yield Write(var, (current or 0) + 1)
        if locked:
            yield Release(CORPUS_LOCK)

    return body


def corpus_program(specs, name: str = "generated") -> Program:
    """A corpus program with one thread per spec (named T0, T1, ...)."""
    return Program(
        name,
        threads={f"T{i}": corpus_body(spec) for i, spec in enumerate(specs)},
        initial={var: 0 for var in CORPUS_VARS},
        locks=[CORPUS_LOCK],
    )


def corpus_spec_lengths(specs):
    """Scheduling points per thread: reads are 1, writes 2, lock ops 2."""
    return [
        sum(2 if kind == "write" else 1 for kind, _ in op_list)
        + (2 if locked else 0)
        for locked, op_list, _crashes in specs
    ]


@st.composite
def corpus_specs(draw, max_ops: int = 2, crashes: bool = True):
    """Strategy for one thread spec."""
    locked = draw(st.booleans())
    count = draw(st.integers(min_value=1, max_value=max_ops))
    op_list = tuple(
        (
            draw(st.sampled_from(["read", "write"])),
            draw(st.sampled_from(CORPUS_VARS)),
        )
        for _ in range(count)
    )
    crash = draw(st.booleans()) if crashes else False
    return (locked, op_list, crash)


@st.composite
def corpus_programs(
    draw,
    min_threads: int = 2,
    max_threads: int = 3,
    max_ops: int = 2,
    crashes: bool = True,
    with_specs: bool = False,
):
    """Strategy for a whole corpus program (optionally with its specs)."""
    thread_count = draw(st.integers(min_value=min_threads, max_value=max_threads))
    specs = [
        draw(corpus_specs(max_ops=max_ops, crashes=crashes))
        for _ in range(thread_count)
    ]
    program = corpus_program(specs)
    return (program, specs) if with_specs else program


def yield_only(steps: int = 3, threads: int = 2) -> Program:
    """Pure scheduling-point threads; no shared effects at all."""

    def body():
        for _ in range(steps):
            yield Yield()

    return Program(
        "yield-only",
        threads={f"T{i}": body for i in range(1, threads + 1)},
    )
