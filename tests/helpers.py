"""Shared program builders used across the test suite.

Each helper returns a fresh :class:`~repro.sim.Program`; they are the
canonical micro-programs the simulator/detector tests exercise.
"""

from __future__ import annotations

from repro.errors import SimCrash
from repro.sim import (
    Acquire,
    AcquireRead,
    AcquireWrite,
    BarrierWait,
    Join,
    Notify,
    Program,
    Read,
    Release,
    ReleaseRead,
    ReleaseWrite,
    SemAcquire,
    SemRelease,
    Spawn,
    Wait,
    Write,
    Yield,
)


def racy_counter(threads: int = 2) -> Program:
    """N unlocked read-increment-write threads on one counter."""

    def increment():
        value = yield Read("counter")
        yield Write("counter", value + 1)

    return Program(
        "racy-counter",
        threads={f"T{i}": increment for i in range(1, threads + 1)},
        initial={"counter": 0},
    )


def locked_counter(threads: int = 2) -> Program:
    """N properly locked increment threads on one counter."""

    def increment():
        yield Acquire("L")
        value = yield Read("counter")
        yield Write("counter", value + 1)
        yield Release("L")

    return Program(
        "locked-counter",
        threads={f"T{i}": increment for i in range(1, threads + 1)},
        initial={"counter": 0},
        locks=["L"],
    )


def abba_deadlock() -> Program:
    """The classic two-lock circular-wait deadlock."""

    def forward():
        yield Acquire("A")
        yield Acquire("B")
        yield Release("B")
        yield Release("A")

    def backward():
        yield Acquire("B")
        yield Acquire("A")
        yield Release("A")
        yield Release("B")

    return Program(
        "abba-deadlock",
        threads={"T1": forward, "T2": backward},
        locks=["A", "B"],
    )


def self_deadlock() -> Program:
    """Re-acquiring a held non-recursive mutex: the 1-resource deadlock."""

    def body():
        yield Acquire("L")
        yield Acquire("L")
        yield Release("L")

    return Program("self-deadlock", threads={"T1": body}, locks=["L"])


def null_deref_race() -> Program:
    """Use-before-init order violation: crash if reader runs first."""

    def reader():
        pointer = yield Read("ptr")
        if pointer is None:
            raise SimCrash("null pointer dereference")
        yield Write("out", pointer)

    def initialiser():
        yield Write("ptr", "object")

    return Program(
        "null-deref",
        threads={"Reader": reader, "Init": initialiser},
        initial={"ptr": None, "out": None},
    )


def lost_wakeup() -> Program:
    """Check-then-wait without holding the lock across the check: hangable."""

    def waiter():
        done = yield Read("done")
        if not done:
            yield Acquire("L")
            yield Wait("cv")
            yield Release("L")

    def signaller():
        yield Write("done", True)
        yield Acquire("L")
        yield Notify("cv")
        yield Release("L")

    return Program(
        "lost-wakeup",
        threads={"Waiter": waiter, "Signaller": signaller},
        initial={"done": False},
        locks=["L"],
        conditions={"cv": "L"},
    )


def semaphore_pingpong() -> Program:
    """Two threads strictly alternating via two semaphores."""

    def ping():
        for _ in range(2):
            yield SemAcquire("sa")
            count = yield Read("turns")
            yield Write("turns", count + 1)
            yield SemRelease("sb")

    def pong():
        for _ in range(2):
            yield SemAcquire("sb")
            count = yield Read("turns")
            yield Write("turns", count + 1)
            yield SemRelease("sa")

    return Program(
        "sem-pingpong",
        threads={"Ping": ping, "Pong": pong},
        initial={"turns": 0},
        semaphores={"sa": 1, "sb": 0},
    )


def spawn_join_chain() -> Program:
    """Main spawns a worker, joins it, then reads its result."""

    def main():
        yield Spawn("Worker")
        yield Join("Worker")
        result = yield Read("result")
        yield Write("observed", result)

    def worker():
        yield Write("result", 42)

    return Program(
        "spawn-join",
        threads={"Main": main, "Worker": worker},
        initial={"result": None, "observed": None},
        start=["Main"],
    )


def barrier_pair() -> Program:
    """Two threads meeting at a barrier, then racing on a counter."""

    def body():
        yield BarrierWait("bar")
        value = yield Read("n")
        yield Write("n", value + 1)

    return Program(
        "barrier-pair",
        threads={"X": body, "Y": body},
        initial={"n": 0},
        barriers={"bar": 2},
    )


def rwlock_readers_writer() -> Program:
    """Two readers and one writer on an rwlock-protected variable."""

    def reader():
        yield AcquireRead("RW")
        value = yield Read("data")
        yield ReleaseRead("RW")
        yield Write("sink", value)

    def writer():
        yield AcquireWrite("RW")
        yield Write("data", 1)
        yield ReleaseWrite("RW")

    return Program(
        "rw-readers-writer",
        threads={"R1": reader, "R2": reader, "W": writer},
        initial={"data": 0, "sink": None},
        rwlocks=["RW"],
    )


def ordered_handoff() -> Program:
    """Correct order enforcement via a semaphore: init always before use."""

    def initialiser():
        yield Write("ptr", "object")
        yield SemRelease("ready")

    def user():
        yield SemAcquire("ready")
        pointer = yield Read("ptr")
        if pointer is None:
            raise SimCrash("null pointer dereference")

    return Program(
        "ordered-handoff",
        threads={"Init": initialiser, "User": user},
        initial={"ptr": None},
        semaphores={"ready": 0},
    )


def yield_only(steps: int = 3, threads: int = 2) -> Program:
    """Pure scheduling-point threads; no shared effects at all."""

    def body():
        for _ in range(steps):
            yield Yield()

    return Program(
        "yield-only",
        threads={f"T{i}": body for i in range(1, threads + 1)},
    )
