"""Bug-report bundle tests."""

import json

import pytest

from repro.kernels import get_kernel
from repro.reporting import build_bug_report
from repro.sim import replay, schedule_from_json
from tests import helpers


class TestBuildBugReport:
    def test_report_for_crash_kernel(self):
        kernel = get_kernel("atomicity_single_var")
        report = build_bug_report(kernel.buggy, kernel.failure, random_runs=60)
        assert report is not None
        assert report.witness.preemptions <= 1
        assert 0 < report.random_rate < 1
        low, high = report.rate_interval
        assert low <= report.random_rate <= high
        assert report.stress_runs_for_95 >= 1

    def test_schedule_json_round_trips_to_failure(self):
        kernel = get_kernel("deadlock_abba")
        report = build_bug_report(kernel.buggy, kernel.failure, random_runs=30)
        schedule = schedule_from_json(report.schedule_json)
        rerun = replay(kernel.buggy, schedule)
        assert kernel.failure(rerun)

    def test_findings_included(self):
        kernel = get_kernel("atomicity_lost_update")
        report = build_bug_report(kernel.buggy, kernel.failure, random_runs=30)
        assert report.findings
        kinds = {f.kind.value for f in report.findings}
        assert "atomicity-violation" in kinds

    def test_none_when_program_is_correct(self):
        prog = helpers.locked_counter()
        report = build_bug_report(
            prog, lambda run: run.memory["counter"] == 1, random_runs=10
        )
        assert report is None

    def test_always_failing_program_reports_one_run_needed(self):
        prog = helpers.self_deadlock()
        report = build_bug_report(prog, lambda run: run.failed, random_runs=10)
        assert report.random_rate == 1.0
        assert report.stress_runs_for_95 == 1


class TestMarkdownRendering:
    def test_markdown_sections_present(self):
        kernel = get_kernel("order_lost_wakeup")
        report = build_bug_report(kernel.buggy, kernel.failure, random_runs=40)
        text = report.to_markdown()
        for heading in (
            "# Concurrency failure report",
            "## Summary",
            "## Deterministic reproduction",
            "## Witness trace",
            "## Detector findings",
        ):
            assert heading in text

    def test_markdown_embeds_valid_schedule_json(self):
        kernel = get_kernel("multivar_buffer_flag")
        report = build_bug_report(kernel.buggy, kernel.failure, random_runs=20)
        text = report.to_markdown()
        start = text.index("```json") + len("```json\n")
        end = text.index("```", start)
        payload = json.loads(text[start:end].strip())
        assert payload["version"] == 1

    def test_markdown_mentions_crash_reason(self):
        kernel = get_kernel("order_use_before_init")
        report = build_bug_report(kernel.buggy, kernel.failure, random_runs=20)
        assert "crash" in report.to_markdown()

    def test_app_scale_report(self):
        """A report for the miniature cache's double free."""
        from repro.apps.cache import CacheConfig, build_cache

        config = CacheConfig(clients=2, nonatomic_refcount=True)
        program = build_cache(config)

        def double_free(run):
            return (
                run.ok
                and run.memory["freed_by_c1"]
                and run.memory["freed_by_c2"]
            )

        report = build_bug_report(program, double_free, random_runs=50)
        assert report is not None
        text = report.to_markdown()
        assert "cache" in text
        assert report.witness.preemptions <= 2
