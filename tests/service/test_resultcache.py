"""Cache keys and the persistent verdict store.

The dedup guarantees in ``docs/service.md`` rest on two properties
tested here: (1) :func:`repro.service.jobs.cache_key` is a pure function
of program content + verdict-relevant options — deterministic across
rebuilds, and distinct whenever any option that can change the verdict
differs; (2) :class:`repro.service.resultcache.ResultCache` publishes
entries atomically, survives reopening, and treats every form of damage
(corrupt JSON, truncation, schema drift, key mismatch) as a miss.
"""

from __future__ import annotations

import dataclasses
import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service.jobs import (
    JobError,
    JobKind,
    JobOptions,
    cache_key,
    kernel_cache_key,
)
from repro.service.resultcache import ENTRY_SCHEMA, ResultCache
from tests.helpers import corpus_programs

# -- cache keys --------------------------------------------------------------

_options_dicts = st.fixed_dictionaries(
    {},
    optional={
        "reduction": st.sampled_from(["none", "sleepset", "dpor"]),
        "workers": st.integers(min_value=1, max_value=4),
        "preemption_bound": st.integers(min_value=1, max_value=3),
        "memoize": st.booleans(),
        "max_schedules": st.integers(min_value=1, max_value=5000),
    },
)


@settings(max_examples=25, deadline=None)
@given(program=corpus_programs(), raw=_options_dicts, kind=st.sampled_from(JobKind))
def test_cache_key_deterministic(program, raw, kind):
    """Same program + same options → same key, every time."""
    options = JobOptions.from_dict(raw)
    first = cache_key(kind, options, program)
    assert first == cache_key(kind, JobOptions.from_dict(raw), program)
    assert len(first) == 64 and int(first, 16) >= 0


@settings(max_examples=25, deadline=None)
@given(program=corpus_programs(), raw=_options_dicts)
def test_cache_key_distinct_across_kinds(program, raw):
    options = JobOptions.from_dict(raw)
    keys = {cache_key(kind, options, program) for kind in JobKind}
    assert len(keys) == len(list(JobKind))


@settings(max_examples=25, deadline=None)
@given(program=corpus_programs())
def test_cache_key_misses_when_options_differ(program):
    """Every verdict-relevant knob separates keys (the ISSUE's property:
    differing reduction/bound/workers must miss the cache)."""
    base = JobOptions()
    variants = [
        base,
        dataclasses.replace(base, reduction="dpor"),
        dataclasses.replace(base, reduction="sleepset"),
        dataclasses.replace(base, workers=2),
        dataclasses.replace(base, preemption_bound=2),
        dataclasses.replace(base, memoize=True),
        dataclasses.replace(base, max_schedules=123),
    ]
    keys = [cache_key(JobKind.DETECT, opts, program) for opts in variants]
    assert len(set(keys)) == len(variants)


def test_cache_key_normalises_default_spellings():
    """workers=None and workers=1 are the same configuration; an explicit
    default budget equals the implied one."""
    from repro.kernels import get_kernel

    kernel = get_kernel("atomicity_lost_update")
    assert kernel_cache_key(
        JobKind.DETECT, kernel, JobOptions()
    ) == kernel_cache_key(JobKind.DETECT, kernel, JobOptions(workers=1))
    assert kernel_cache_key(
        JobKind.DETECT, kernel, JobOptions(max_schedules=20000)
    ) == kernel_cache_key(JobKind.DETECT, kernel, JobOptions())


def test_kernel_cache_key_fingerprints_what_the_job_runs():
    """check keys the fixed program, detect keys the buggy one — and two
    kernels never collide."""
    from repro.kernels import get_kernel

    kernel = get_kernel("atomicity_lost_update")
    other = get_kernel("deadlock_abba")
    options = JobOptions()
    assert kernel_cache_key(JobKind.CHECK, kernel, options) != kernel_cache_key(
        JobKind.DETECT, kernel, options
    )
    assert kernel_cache_key(JobKind.DETECT, kernel, options) != kernel_cache_key(
        JobKind.DETECT, other, options
    )


def test_job_options_reject_garbage():
    with pytest.raises(JobError):
        JobOptions.from_dict({"workerz": 2})
    with pytest.raises(JobError):
        JobOptions.from_dict({"workers": 0})
    with pytest.raises(JobError):
        JobOptions.from_dict({"preemption_bound": "two"})
    with pytest.raises(JobError):
        JobOptions.from_dict({"reduction": "magic"})
    with pytest.raises(JobError):
        JobKind.parse("fuzz")


# -- the on-disk store -------------------------------------------------------

KEY_A = "a" * 64
KEY_B = "b" * 64


def _put(cache, key=KEY_A, verdict=None):
    return cache.put(
        key,
        verdict if verdict is not None else {"kind": "detect", "manifested": True},
        kind="detect",
        kernel="atomicity_lost_update",
        engine_runs=7,
        wall_seconds=0.25,
    )


def test_put_get_roundtrip(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    assert cache.get(KEY_A) is None  # cold miss
    stored = _put(cache)
    entry = cache.get(KEY_A)
    assert entry == stored
    assert entry["verdict"] == {"kind": "detect", "manifested": True}
    assert entry["schema"] == ENTRY_SCHEMA
    assert entry["engine_runs"] == 7
    assert (cache.hits, cache.misses, cache.writes) == (1, 1, 1)
    assert len(cache) == 1
    assert 0.0 < cache.hit_rate() < 1.0


def test_entries_persist_across_instances(tmp_path):
    """The property the service restart test builds on: a new ResultCache
    over the same directory sees the old verdicts."""
    root = tmp_path / "cache"
    _put(ResultCache(root))
    reopened = ResultCache(root)
    assert reopened.get(KEY_A)["verdict"]["manifested"] is True
    assert len(reopened) == 1


def test_overwrite_replaces_entry(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    _put(cache, verdict={"kind": "detect", "manifested": False})
    _put(cache, verdict={"kind": "detect", "manifested": True})
    assert cache.get(KEY_A)["verdict"]["manifested"] is True
    assert len(cache) == 1


def test_damage_is_a_miss_not_an_error(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    stored = _put(cache)
    path = cache.root / f"{KEY_A}.json"

    path.write_text("{truncated", encoding="utf-8")
    assert cache.get(KEY_A) is None

    path.write_text(json.dumps([1, 2, 3]), encoding="utf-8")
    assert cache.get(KEY_A) is None

    bad_schema = dict(stored, schema="repro.service.cache/v0")
    path.write_text(json.dumps(bad_schema), encoding="utf-8")
    assert cache.get(KEY_A) is None

    # An entry copied under the wrong file name must not answer for it.
    (cache.root / f"{KEY_B}.json").write_text(
        json.dumps(stored), encoding="utf-8"
    )
    assert cache.get(KEY_B) is None


def test_malformed_keys_rejected(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    for key in ("", "short", "A" * 64, "../" + "a" * 61, "g" * 64):
        with pytest.raises(ValueError):
            cache.get(key)
        with pytest.raises(ValueError):
            _put(cache, key=key)
    assert len(cache) == 0


def test_put_leaves_no_temp_droppings(tmp_path):
    cache = ResultCache(tmp_path / "cache")
    _put(cache)
    _put(cache, key=KEY_B)
    assert sorted(p.name for p in cache.root.iterdir()) == [
        f"{KEY_A}.json",
        f"{KEY_B}.json",
    ]
