"""End-to-end over the wire: serve, submit every kernel, dedup, shutdown.

The ISSUE's acceptance test: a live ``serve`` loop on a Unix socket
takes *concurrent* submissions of all 13 bundled kernels, returns
verdicts identical to the one-shot ``repro detect`` path for each, and
answers duplicate submissions from the persistent cache without
spawning a single new engine run.  Protocol-level error handling
(malformed lines, unknown ops/kernels/options, result/wait) rides along
on the same live service.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.detectors import DetectorSuite
from repro.kernels import get_kernel, kernel_names
from repro.service import ReproService, ResultCache, WorkerFleet
from repro.service.protocol import SCHEMA, encode, request_once, serve

SUBMIT_TIMEOUT = 300.0


async def _wait_for_socket(path, attempts=500):
    for _ in range(attempts):
        if path.exists():
            return
        await asyncio.sleep(0.01)
    raise AssertionError(f"service socket {path} never appeared")


async def _raw_lines(sock_path, *lines):
    """Write raw bytes (malformed on purpose) and collect one response each."""
    reader, writer = await asyncio.open_unix_connection(str(sock_path))
    responses = []
    try:
        for line in lines:
            writer.write(line)
            await writer.drain()
            from repro.service.protocol import decode

            responses.append(decode(await reader.readline()))
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    return responses


def _expected_detect_verdicts(names):
    """The one-shot path, kernel by kernel: find a manifesting trace with
    the same explorer configuration the service's ``detect`` runner uses,
    then run the detector battery on it."""
    expected = {}
    for name in names:
        kernel = get_kernel(name)
        failing = kernel.find_manifestation()
        assert failing is not None, f"{name} never manifested one-shot"
        suite_result = DetectorSuite.for_program(kernel.buggy).analyse(
            failing.trace
        )
        expected[name] = {
            "flagged_by": suite_result.flagged_by(),
            "kinds": sorted(k.value for k in suite_result.kinds_found()),
            "schedule": list(failing.schedule),
        }
    return expected


def test_serve_all_kernels_with_dedup_and_shutdown(tmp_path):
    names = kernel_names()
    assert len(names) == 16

    async def main():
        sock = tmp_path / "svc.sock"
        service = ReproService(
            ResultCache(tmp_path / "cache"), fleet=WorkerFleet(size=4)
        )
        serve_task = asyncio.create_task(serve(service, socket_path=sock))
        await _wait_for_socket(sock)

        ping = await request_once({"op": "ping"}, socket_path=sock)
        assert ping["ok"] and ping["service"] == SCHEMA

        def submit(name):
            return request_once(
                {
                    "op": "submit",
                    "kind": "detect",
                    "kernel": name,
                    "wait": True,
                    "timeout": SUBMIT_TIMEOUT,
                },
                socket_path=sock,
            )

        # Round 1: every kernel at once, straight into the fleet.
        first = await asyncio.gather(*(submit(name) for name in names))
        # Round 2: the same 13 submissions again — all cache.
        second = await asyncio.gather(*(submit(name) for name in names))

        # Errors and secondary ops against the same live service.
        bad_kernel = await request_once(
            {"op": "submit", "kernel": "no_such_kernel"}, socket_path=sock
        )
        bad_option = await request_once(
            {"op": "submit", "kernel": names[0], "options": {"warp": 9}},
            socket_path=sock,
        )
        bad_kind = await request_once(
            {"op": "submit", "kernel": names[0], "kind": "fuzz"},
            socket_path=sock,
        )
        no_kernel_field = await request_once(
            {"op": "submit"}, socket_path=sock
        )
        unknown_op = await request_once({"op": "frobnicate"}, socket_path=sock)
        bad_job = await request_once(
            {"op": "result", "id": "j9999"}, socket_path=sock
        )
        malformed = await _raw_lines(
            sock, b"this is not json\n", b"[1,2,3]\n", b"\n" + encode({"op": "ping"})
        )

        # result/wait on a finished job both return it immediately.
        some_id = first[0]["job"]["id"]
        result_op = await request_once(
            {"op": "result", "id": some_id}, socket_path=sock
        )
        wait_op = await request_once(
            {"op": "wait", "id": some_id, "timeout": 5}, socket_path=sock
        )

        status = await request_once({"op": "status"}, socket_path=sock)
        shutdown = await request_once({"op": "shutdown"}, socket_path=sock)
        await asyncio.wait_for(serve_task, timeout=60)
        assert not sock.exists()  # serve() unlinks its socket on the way out

        return {
            "first": first,
            "second": second,
            "errors": {
                "bad_kernel": bad_kernel,
                "bad_option": bad_option,
                "bad_kind": bad_kind,
                "no_kernel_field": no_kernel_field,
                "unknown_op": unknown_op,
                "bad_job": bad_job,
                "malformed": malformed,
            },
            "result_op": result_op,
            "wait_op": wait_op,
            "status": status,
            "shutdown": shutdown,
        }

    out = asyncio.run(main())

    # -- round 1: fleet verdicts identical to the one-shot detect path ------
    expected = _expected_detect_verdicts(names)
    for name, response in zip(names, out["first"]):
        assert response["ok"], response
        job = response["job"]
        assert job["state"] == "done" and not job["cached"]
        assert job["engine_runs"] >= 1
        verdict = job["verdict"]
        assert verdict["kind"] == "detect"
        assert verdict["manifested"] is True
        assert verdict["flagged_by"] == expected[name]["flagged_by"], name
        assert verdict["kinds"] == expected[name]["kinds"], name
        assert verdict["schedule"] == expected[name]["schedule"], name

    # -- round 2: answered from the persistent cache, zero engine runs ------
    first_by_name = {job["job"]["kernel"]: job["job"] for job in out["first"]}
    for name, response in zip(names, out["second"]):
        job = response["job"]
        assert job["cached"] is True, name
        assert job["state"] == "done"
        assert job["engine_runs"] == 0
        assert job["verdict"] == first_by_name[name]["verdict"], name

    # -- dashboard totals ---------------------------------------------------
    totals = out["status"]["totals"]
    assert totals["submissions"] == 32
    assert totals["completed"] == 32
    assert totals["failed"] == 0
    assert totals["cache_hits"] == 16
    assert totals["dedup_ratio"] == pytest.approx(0.5)
    # Engine runs were paid exactly once per kernel.
    assert totals["engine_runs"] == sum(
        job["engine_runs"] for job in first_by_name.values()
    )
    assert out["status"]["cache"]["entries"] == 16
    assert len(out["status"]["jobs"]) == 32

    # -- protocol errors ----------------------------------------------------
    errors = out["errors"]
    assert not errors["bad_kernel"]["ok"]
    assert "available" in errors["bad_kernel"]["error"]
    assert not errors["bad_option"]["ok"]
    assert "warp" in errors["bad_option"]["error"]
    assert not errors["bad_kind"]["ok"]
    assert "unknown job kind" in errors["bad_kind"]["error"]
    assert not errors["no_kernel_field"]["ok"]
    assert not errors["unknown_op"]["ok"]
    assert "frobnicate" in errors["unknown_op"]["error"]
    assert not errors["bad_job"]["ok"]
    # Malformed lines get an error response but keep the connection alive:
    # the third (valid, after a blank line) request still answers.
    assert not errors["malformed"][0]["ok"]
    assert not errors["malformed"][1]["ok"]
    assert errors["malformed"][2]["ok"]

    assert out["result_op"]["job"]["id"] == out["wait_op"]["job"]["id"]
    assert out["shutdown"] == {"ok": True, "stopping": True}


def test_serve_all_kernels_under_ucb_allocation(tmp_path):
    """The FIFO e2e above, re-run under ``--alloc ucb`` slice dispatch.

    A deliberately small slice budget forces real checkpoint/requeue
    cycles through the fork pool, yet every verdict must stay
    bit-identical to the one-shot detect path, and the duplicate round
    must still be answered entirely from the cache (zero engine runs).
    """
    names = kernel_names()

    async def main():
        sock = tmp_path / "svc.sock"
        service = ReproService(
            ResultCache(tmp_path / "cache"),
            fleet=WorkerFleet(size=4),
            alloc="ucb",
            slice_budget=10,
        )
        serve_task = asyncio.create_task(serve(service, socket_path=sock))
        await _wait_for_socket(sock)

        def submit(name):
            return request_once(
                {
                    "op": "submit",
                    "kind": "detect",
                    "kernel": name,
                    "wait": True,
                    "timeout": SUBMIT_TIMEOUT,
                },
                socket_path=sock,
            )

        first = await asyncio.gather(*(submit(name) for name in names))
        second = await asyncio.gather(*(submit(name) for name in names))
        status = await request_once({"op": "status"}, socket_path=sock)
        await request_once({"op": "shutdown"}, socket_path=sock)
        await asyncio.wait_for(serve_task, timeout=60)
        return first, second, status

    first, second, status = asyncio.run(main())

    expected = _expected_detect_verdicts(names)
    for name, response in zip(names, first):
        assert response["ok"], response
        job = response["job"]
        assert job["state"] == "done" and not job["cached"]
        assert job["slices"] >= 1
        verdict = job["verdict"]
        assert verdict["manifested"] is True, name
        assert verdict["flagged_by"] == expected[name]["flagged_by"], name
        assert verdict["kinds"] == expected[name]["kinds"], name
        assert verdict["schedule"] == expected[name]["schedule"], name

    # Duplicate round: fully cache-answered, no allocator involvement.
    first_by_name = {job["job"]["kernel"]: job["job"] for job in first}
    for name, response in zip(names, second):
        job = response["job"]
        assert job["cached"] is True, name
        assert job["engine_runs"] == 0, name
        assert job["verdict"] == first_by_name[name]["verdict"], name

    totals = status["totals"]
    assert totals["cache_hits"] == len(names)
    assert totals["failed"] == 0
    alloc = status["alloc"]
    assert alloc["policy"] == "ucb"
    assert alloc["slice_budget"] == 10
    assert alloc["arms_total"] == len(names)  # one retired arm per job
    assert alloc["arms_live"] == 0
    assert alloc["pulls"] >= len(names)
    # Every arm is a detect exploration and every job's bug was found.
    assert all(row["strategy"] == "detect" for row in alloc["arms"])
    assert all(row["findings"] == 1 for row in alloc["arms"])


def test_tcp_transport_roundtrip(tmp_path):
    """The loopback TCP fallback speaks the same protocol."""

    async def main():
        service = ReproService(
            ResultCache(tmp_path / "cache"),
            fleet=WorkerFleet(size=1, pool="none"),
        )
        from repro.service.protocol import start_server

        await service.start()
        server, stop = await start_server(service, port=0)
        port = server.sockets[0].getsockname()[1]
        try:
            ping = await request_once({"op": "ping"}, port=port)
            response = await request_once(
                {
                    "op": "submit",
                    "kind": "static",
                    "kernel": "deadlock_abba",
                    "wait": True,
                    "timeout": SUBMIT_TIMEOUT,
                },
                port=port,
            )
        finally:
            server.close()
            await server.wait_closed()
            await service.close()
        return ping, response

    ping, response = asyncio.run(main())
    assert ping["ok"]
    assert response["ok"]
    assert response["job"]["verdict"]["candidates"] >= 1


def test_start_server_validates_transport_choice(tmp_path):
    async def main():
        from repro.service.protocol import start_server

        service = ReproService(
            ResultCache(tmp_path / "cache"),
            fleet=WorkerFleet(size=1, pool="none"),
        )
        with pytest.raises(ValueError):
            await start_server(service)
        with pytest.raises(ValueError):
            await start_server(
                service, socket_path=tmp_path / "s.sock", port=4567
            )
        await service.close()

    asyncio.run(main())
