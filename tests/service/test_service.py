"""The asyncio service core: dedup ladder, scheduling, persistence.

Everything runs on the inline (thread) fleet — ``pool="none"`` — so the
tests are deterministic and fast regardless of fork availability; the
fork pool is exercised by the protocol e2e test and the CI smoke job.
No pytest-asyncio in this repo: each test drives its own event loop via
``asyncio.run``.
"""

from __future__ import annotations

import asyncio
from pathlib import Path

import pytest

from repro.service import (
    AdmissionError,
    Dashboard,
    JobError,
    JobKind,
    JobQueue,
    JobState,
    ReproService,
    ResultCache,
    WorkerFleet,
    run_job,
)
from repro.service.jobs import Job, JobOptions


def _service(tmp_path, size=2, max_pending=256):
    return ReproService(
        ResultCache(tmp_path / "cache"),
        fleet=WorkerFleet(size=size, pool="none"),
        max_pending=max_pending,
    )


async def _finished(service, job, timeout=120.0):
    return await service.wait(job.id, timeout=timeout)


def test_submit_detect_runs_on_fleet(tmp_path):
    async def main():
        service = _service(tmp_path)
        await service.start()
        try:
            job = service.submit("detect", "atomicity_lost_update")
            assert job.state is JobState.QUEUED and not job.cached
            await _finished(service, job)
        finally:
            await service.close()
        return job, service

    job, service = asyncio.run(main())
    assert job.state is JobState.DONE
    assert job.verdict["manifested"] is True
    assert "lockset" in job.verdict["flagged_by"]
    assert job.engine_runs >= 1
    assert service.engine_runs == job.engine_runs
    assert len(service.cache) == 1  # the verdict was published


def test_duplicate_submission_hits_cache_with_zero_engine_runs(tmp_path):
    """The ISSUE property: same program twice → cached verdict, zero new
    engine runs."""
    async def main():
        service = _service(tmp_path)
        await service.start()
        try:
            first = service.submit("detect", "atomicity_lost_update")
            await _finished(service, first)
            runs_after_first = service.engine_runs

            second = service.submit("detect", "atomicity_lost_update")
            # Born finished: no wait, no scheduling, no fleet involvement.
            assert second.finished and second.cached
            assert second.engine_runs == 0
            assert service.engine_runs == runs_after_first
            assert second.verdict == first.verdict
            assert service.cache_hits == 1
            assert len(service.queue) == 0
        finally:
            await service.close()

    asyncio.run(main())


def test_differing_options_miss_the_cache(tmp_path):
    async def main():
        service = _service(tmp_path)
        await service.start()
        try:
            first = service.submit("detect", "atomicity_lost_update")
            await _finished(service, first)

            for options in (
                {"reduction": "dpor"},
                {"preemption_bound": 2},
                {"workers": 2},
                {"memoize": True},
                {"max_schedules": 500},
                {"memory": "tso"},
            ):
                job = service.submit("detect", "atomicity_lost_update", options)
                assert not job.cached, f"{options} wrongly hit the cache"
                await _finished(service, job)
                assert job.verdict["manifested"] is True
            assert service.cache_hits == 0
        finally:
            await service.close()

    asyncio.run(main())


def test_concurrent_identical_submissions_coalesce(tmp_path):
    async def main():
        # One slot so the first job occupies the fleet while duplicates
        # of the second arrive behind it in the queue.
        service = _service(tmp_path, size=1)
        await service.start()
        try:
            blocker = service.submit("detect", "deadlock_abba")
            first = service.submit("check", "order_lost_wakeup")
            dup_a = service.submit("check", "order_lost_wakeup")
            dup_b = service.submit("check", "order_lost_wakeup")
            assert dup_a is first and dup_b is first
            assert first.submissions == 3
            assert service.coalesced == 2
            assert service.submissions == 4
            await _finished(service, blocker)
            await _finished(service, first)
            assert first.verdict["clean"] is True
            # The carrier job ran once; three submissions were answered.
            assert service.jobs_completed == 2
            assert service.dedup_ratio() == pytest.approx(2 / 4)
        finally:
            await service.close()

    asyncio.run(main())


def test_verdicts_persist_across_service_restarts(tmp_path):
    """A new service over the same cache directory answers from disk."""
    async def run_once():
        service = _service(tmp_path)
        await service.start()
        try:
            job = service.submit("static", "multivar_buffer_flag")
            await _finished(service, job)
            return job
        finally:
            await service.close()

    async def run_again():
        service = _service(tmp_path)
        await service.start()
        try:
            job = service.submit("static", "multivar_buffer_flag")
            assert job.cached and job.finished
            assert service.engine_runs == 0
            return job
        finally:
            await service.close()

    first = asyncio.run(run_once())
    second = asyncio.run(run_again())
    assert second.verdict == first.verdict
    assert second.verdict["candidates"] >= 1


def test_source_jobs_key_on_content_digest(tmp_path):
    """``source`` jobs analyze a real Python module: frontend → lift →
    confirm, cache-keyed on the file's bytes + frontend version rather
    than a kernel fingerprint."""
    corpus = (
        Path(__file__).resolve().parents[2] / "examples" / "realworld"
    )
    buggy = str(corpus / "use_before_init_buggy.py")

    async def main():
        service = _service(tmp_path)
        await service.start()
        try:
            job = service.submit("source", buggy, {"max_schedules": 200})
            await _finished(service, job)
            assert job.state is JobState.DONE
            assert job.verdict["kind"] == "source"
            assert job.verdict["module"] == "use_before_init_buggy"
            assert job.verdict["clean"] is False
            assert job.verdict["confirmed"] >= 1
            assert job.engine_runs >= 1

            # Identical bytes → cache hit, even under a different path.
            copy = tmp_path / "renamed.py"
            copy.write_bytes(Path(buggy).read_bytes())
            again = service.submit("source", str(copy), {"max_schedules": 200})
            assert again.cached and again.finished
            assert again.verdict == job.verdict

            # A content edit invalidates the key.
            copy.write_bytes(copy.read_bytes() + b"\n# touched\n")
            edited = service.submit("source", str(copy), {"max_schedules": 200})
            assert not edited.cached
            await _finished(service, edited)

            with pytest.raises(JobError) as excinfo:
                service.submit("source", str(tmp_path / "missing.py"))
            assert "unreadable source module" in str(excinfo.value)
        finally:
            await service.close()

    asyncio.run(main())


def test_admission_control_refuses_when_full(tmp_path):
    async def main():
        service = _service(tmp_path, size=1, max_pending=1)
        # Fleet deliberately not started: nothing drains the queue, so
        # the backlog fills deterministically.
        service.submit("detect", "atomicity_lost_update")
        with pytest.raises(AdmissionError):
            service.submit("detect", "atomicity_single_var")
        # The refused submission left no ghost job behind.
        assert len(service.jobs) == 1
        # A duplicate of the queued job still coalesces (dedup beats
        # admission control in the ladder).
        carrier = service.submit("detect", "atomicity_lost_update")
        assert carrier.submissions == 2
        await service.close()

    asyncio.run(main())


def test_unknown_kernel_and_job_id_rejected(tmp_path):
    async def main():
        service = _service(tmp_path)
        with pytest.raises(JobError) as excinfo:
            service.submit("detect", "no_such_kernel")
        assert "available" in str(excinfo.value)
        with pytest.raises(JobError):
            service.get_job("j9999")
        await service.close()

    asyncio.run(main())


def test_failed_job_is_reported_not_cached(tmp_path):
    async def main():
        service = _service(tmp_path)
        await service.start()
        try:
            job = service.submit("detect", "atomicity_lost_update")
            # Corrupt the accepted job so the worker-side run explodes.
            object.__setattr__(job.options, "max_schedules", -5)
            await _finished(service, job)
        finally:
            await service.close()
        return job, service

    job, service = asyncio.run(main())
    assert job.state is JobState.FAILED
    assert job.error and "JobError" in job.error
    assert service.jobs_failed == 1
    assert len(service.cache) == 0  # failures are never persisted


def test_dashboard_reflects_service_state(tmp_path):
    async def main():
        service = _service(tmp_path)
        await service.start()
        try:
            job = service.submit("explore", "atomicity_single_var")
            await _finished(service, job)
            service.submit("explore", "atomicity_single_var")  # cache hit
        finally:
            await service.close()
        return service

    service = asyncio.run(main())
    snapshot = Dashboard(service).as_dict()
    assert snapshot["totals"]["submissions"] == 2
    assert snapshot["totals"]["completed"] == 2
    assert snapshot["totals"]["cache_hits"] == 1
    assert snapshot["totals"]["dedup_ratio"] == pytest.approx(0.5)
    assert snapshot["cache"]["entries"] == 1
    assert len(snapshot["jobs"]) == 2
    assert snapshot["fleet"]["mode"] == "inline"
    text = Dashboard(service).format()
    assert "cache hits 1" in text
    assert "outcomes" in text  # the explore verdict cell


def test_queue_invariants():
    queue = JobQueue(max_pending=2)
    options = JobOptions()

    def make(key, job_id):
        return Job(
            id=job_id, kind=JobKind.DETECT, kernel="k",
            options=options, key=key,
        )

    a = queue.offer(make("a" * 64, "j1"))
    assert queue.offer(make("a" * 64, "j2")) is a  # coalesced
    queue.offer(make("b" * 64, "j3"))
    with pytest.raises(AdmissionError):
        queue.offer(make("c" * 64, "j4"))
    assert queue.take() is a
    a.state = JobState.RUNNING
    assert queue.running == 1
    # Still coalesces while RUNNING (it's in the dedup index until finish).
    assert queue.offer(make("a" * 64, "j5")) is a
    a.state = JobState.DONE
    queue.finish(a)
    # After finish the key is free again: a fresh job enqueues.
    fresh = queue.offer(make("a" * 64, "j6"))
    assert fresh is not a
    with pytest.raises(ValueError):
        JobQueue(max_pending=0)


def test_run_job_matches_one_shot_detect():
    """The worker entry point returns the same verdict the one-shot CLI
    path computes (bit-comparable flagged_by / kinds)."""
    from repro.detectors import DetectorSuite
    from repro.kernels import get_kernel

    kernel = get_kernel("multivar_buffer_flag")
    payload = run_job("detect", "multivar_buffer_flag", {})
    failing = kernel.find_manifestation()
    assert failing is not None
    suite_result = DetectorSuite.for_program(kernel.buggy).analyse(failing.trace)
    assert payload["verdict"]["manifested"] is True
    assert payload["verdict"]["flagged_by"] == suite_result.flagged_by()
    assert payload["verdict"]["kinds"] == sorted(
        k.value for k in suite_result.kinds_found()
    )
    assert payload["engine_runs"] >= 1
    assert payload["worker_wall_seconds"] > 0.0


def test_memory_option_validated_and_folded_into_cache_key():
    from repro.service.jobs import kernel_cache_key
    from repro.kernels import get_kernel

    with pytest.raises(JobError, match="memory must be one of"):
        JobOptions.from_dict({"memory": "arm"})
    options = JobOptions.from_dict({"memory": "tso"})
    assert options.memory == "tso"
    assert ("memory", "tso") in options.key_items(JobKind.DETECT)
    assert options.to_dict()["memory"] == "tso"
    # The declared-model key differs from every explicit override, and
    # the overrides differ from each other: no verdict crosses models.
    kernel = get_kernel("atomicity_lost_update")
    keys = {
        kernel_cache_key(JobKind.DETECT, kernel, JobOptions.from_dict(raw))
        for raw in ({}, {"memory": "sc"}, {"memory": "tso"})
    }
    assert len(keys) == 3


def test_run_job_applies_memory_override():
    """The weakmem kernel is the observable witness: its bug exists under
    its declared TSO model and is unreachable once forced to SC."""
    declared = run_job("detect", "weakmem_store_buffer", {})
    forced_sc = run_job("detect", "weakmem_store_buffer", {"memory": "sc"})
    assert declared["verdict"]["manifested"] is True
    assert forced_sc["verdict"]["manifested"] is False
    # ... and the fix verifies clean under the weak model itself.
    check = run_job("check", "weakmem_store_buffer", {"memory": "tso"})
    assert check["verdict"]["clean"] is True
