"""Slice-based dispatch: sliceability, worker slices, the UCB scheduler.

The contract under test (``docs/allocator.md``): a job cut into slices
by the UCB scheduler finishes with a verdict and ``engine_runs``
bit-identical to the one-shot ``run_job`` path, because the terminal
slice builds its verdict from the same cumulative exploration result
through the same ``VERDICT_BUILDERS``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.service import (
    ALLOC_POLICIES,
    ReproService,
    ResultCache,
    WorkerFleet,
    job_sliceable,
    run_job,
    run_slice,
)
from repro.service.jobs import JobKind, JobOptions


def _service(tmp_path, size=2, **kwargs):
    return ReproService(
        ResultCache(tmp_path / "cache"),
        fleet=WorkerFleet(size=size, pool="none"),
        **kwargs,
    )


class TestSliceability:
    @pytest.mark.parametrize("kind", [JobKind.CHECK, JobKind.DETECT, JobKind.EXPLORE])
    def test_exploration_kinds_slice_by_default(self, kind):
        assert job_sliceable(kind, JobOptions())

    @pytest.mark.parametrize("kind", [JobKind.STATIC, JobKind.SOURCE])
    def test_non_exploration_kinds_do_not(self, kind):
        assert not job_sliceable(kind, JobOptions())

    def test_sleepset_reduction_slices_dpor_does_not(self):
        assert job_sliceable(JobKind.DETECT, JobOptions(reduction="sleepset"))
        assert not job_sliceable(JobKind.DETECT, JobOptions(reduction="dpor"))

    def test_parallel_search_does_not_slice(self):
        assert not job_sliceable(JobKind.DETECT, JobOptions(workers=2))
        assert job_sliceable(JobKind.DETECT, JobOptions(workers=1))

    def test_run_slice_refuses_unsliceable_jobs(self):
        with pytest.raises(ValueError, match="not sliceable"):
            run_slice(
                "detect", "atomicity_lost_update", {"reduction": "dpor"},
                "", 10,
            )


class TestRunSlice:
    def _drive(self, kind, kernel, options, slice_budget):
        """Run a job slice by slice until the terminal payload."""
        frontier_hex = ""
        slices = 0
        while True:
            payload = run_slice(kind, kernel, options, frontier_hex, slice_budget)
            slices += 1
            assert payload["attempts"] >= 1
            if "verdict" in payload:
                return payload, slices
            assert "frontier" in payload  # provisional: no verdict yet
            frontier_hex = payload["frontier"]
            assert slices < 10_000

    @pytest.mark.parametrize("kind", ["detect", "check", "explore"])
    def test_terminal_slice_matches_run_job(self, kind):
        kernel = "atomicity_lost_update"
        options = {"memoize": True} if kind == "explore" else {}
        whole = run_job(kind, kernel, options)
        sliced, slices = self._drive(kind, kernel, options, slice_budget=3)
        assert sliced["verdict"] == whole["verdict"]
        assert sliced["engine_runs"] == whole["engine_runs"]
        if kind == "explore":
            # Full-space enumeration cannot fit one 3-attempt slice.
            assert slices > 1

    def test_cumulative_counters_are_monotonic(self):
        frontier_hex = ""
        last_attempts = 0
        for _ in range(3):
            payload = run_slice(
                "explore", "atomicity_lost_update", {}, frontier_hex, 2
            )
            assert payload["attempts"] > last_attempts
            last_attempts = payload["attempts"]
            if "verdict" in payload:
                break
            frontier_hex = payload["frontier"]


class TestServiceConfig:
    def test_alloc_policy_validated(self, tmp_path):
        assert set(ALLOC_POLICIES) == {"fifo", "ucb"}
        with pytest.raises(ValueError, match="alloc"):
            _service(tmp_path, alloc="lifo")
        with pytest.raises(ValueError, match="slice_budget"):
            _service(tmp_path, alloc="ucb", slice_budget=0)

    def test_defaults_are_fifo(self, tmp_path):
        service = _service(tmp_path)
        assert service.alloc == "fifo"
        assert service.slice_budget >= 1


class TestUCBScheduler:
    def test_sliced_jobs_finish_with_one_shot_verdicts(self, tmp_path):
        """Tiny slice budget forces real requeues; verdicts still match
        the one-shot path, and arm stats land on the dashboard."""
        # detect stops on its first finding; explore must enumerate the
        # whole outcome space, so at slice_budget=5 it *must* requeue.
        specs = [
            ("detect", "atomicity_lost_update"),
            ("explore", "order_lost_wakeup"),
        ]

        async def main():
            service = _service(tmp_path, alloc="ucb", slice_budget=5)
            await service.start()
            try:
                jobs = [service.submit(kind, name) for kind, name in specs]
                static = service.submit("static", specs[0][1])  # whole-job arm
                for job in jobs + [static]:
                    await service.wait(job.id, timeout=120)
            finally:
                await service.close()
            return jobs, static, service

        jobs, static, service = asyncio.run(main())
        for (kind, name), job in zip(specs, jobs):
            expected = run_job(kind, name, {})
            assert job.verdict == expected["verdict"], name
            assert job.engine_runs == expected["engine_runs"], name
            assert job.slices >= 1
        assert jobs[1].slices > 1  # the explore job really was requeued
        assert static.verdict["candidates"] >= 1
        assert static.slices == 1  # ran whole, as a single pull

        summary = service.allocator.summary()
        assert summary["arms"] == 3
        assert summary["pulls"] >= sum(job.slices for job in jobs) + 1
        strategies = {row["strategy"] for row in service.allocator.stats()}
        assert strategies == {"detect", "explore", "static:whole"}

    def test_queue_wait_histogram_populated(self, tmp_path):
        async def main():
            service = _service(tmp_path, alloc="ucb", slice_budget=50)
            await service.start()
            try:
                job = service.submit("detect", "atomicity_lost_update")
                await service.wait(job.id, timeout=120)
            finally:
                await service.close()
            return service

        service = asyncio.run(main())
        wait = service.queue_wait.as_dict()
        assert wait["count"] == 1  # one observation per job, not per slice
        assert wait["min"] >= 0.0

    def test_fifo_also_populates_queue_wait(self, tmp_path):
        async def main():
            service = _service(tmp_path)
            await service.start()
            try:
                jobs = [
                    service.submit("detect", "atomicity_lost_update"),
                    service.submit("check", "order_lost_wakeup"),
                ]
                for job in jobs:
                    await service.wait(job.id, timeout=120)
            finally:
                await service.close()
            return service

        service = asyncio.run(main())
        assert service.queue_wait.as_dict()["count"] == 2

    def test_dashboard_reports_alloc_state(self, tmp_path):
        from repro.service import Dashboard

        async def main():
            service = _service(tmp_path, alloc="ucb", slice_budget=5)
            await service.start()
            try:
                job = service.submit("detect", "atomicity_lost_update")
                await service.wait(job.id, timeout=120)
            finally:
                await service.close()
            return service

        service = asyncio.run(main())
        snapshot = Dashboard(service).as_dict()
        assert snapshot["alloc"]["policy"] == "ucb"
        assert snapshot["alloc"]["slice_budget"] == 5
        assert snapshot["alloc"]["arms_total"] == 1
        (arm,) = snapshot["alloc"]["arms"]
        assert arm["strategy"] == "detect"
        assert arm["findings"] == 1
        assert "queue_wait" in snapshot
        rendered = Dashboard(service).format()
        assert "alloc ucb" in rendered
        assert "queue wait:" in rendered

    def test_fifo_dashboard_keeps_policy_only(self, tmp_path):
        from repro.service import Dashboard

        service = _service(tmp_path)
        snapshot = Dashboard(service).as_dict()
        assert snapshot["alloc"] == {"policy": "fifo"}
