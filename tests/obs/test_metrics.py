"""Unit tests for the metrics registry and its module-level helpers."""

from repro.obs import metrics as obs_metrics
from repro.obs.metrics import MetricsRegistry


class TestRegistry:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        registry.inc("runs")
        registry.inc("runs", 4)
        assert registry.counter("runs") == 5

    def test_counter_defaults_to_zero(self):
        assert MetricsRegistry().counter("never.touched") == 0

    def test_labels_slice_series(self):
        registry = MetricsRegistry()
        registry.inc("schedules", 3, program="a", explorer="dfs")
        registry.inc("schedules", 7, program="b", explorer="dfs")
        assert registry.counter("schedules", program="a", explorer="dfs") == 3
        assert registry.counter("schedules", program="b", explorer="dfs") == 7
        assert registry.counter_total("schedules") == 10

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        registry.inc("m", 1, b="2", a="1")
        assert registry.counter("m", a="1", b="2") == 1

    def test_label_values_stringified(self):
        registry = MetricsRegistry()
        registry.inc("m", 1, shard=0)
        assert registry.counter("m", shard="0") == 1

    def test_gauge_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("size", 10)
        registry.set_gauge("size", 3)
        assert registry.gauge("size") == 3
        assert registry.gauge("never.set") is None

    def test_histogram_stats(self):
        registry = MetricsRegistry()
        for value in (2.0, 4.0, 9.0):
            registry.observe("latency", value)
        stats = registry.histogram("latency")
        assert stats.count == 3
        assert stats.total == 15.0
        assert stats.minimum == 2.0
        assert stats.maximum == 9.0
        assert stats.mean == 5.0
        assert registry.histogram("never.observed") is None

    def test_series_iterates_all_label_sets(self):
        registry = MetricsRegistry()
        registry.inc("m", 1, program="a")
        registry.inc("m", 2, program="b")
        series = dict(
            (labels["program"], value) for labels, value in registry.series("m")
        )
        assert series == {"a": 1, "b": 2}

    def test_len_counts_every_series(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.set_gauge("g", 1)
        registry.observe("h", 1)
        assert len(registry) == 3

    def test_snapshot_renders_labelled_keys(self):
        registry = MetricsRegistry()
        registry.inc("runs", 2, program="p", explorer="dfs")
        registry.set_gauge("size", 5, program="p")
        registry.observe("wall", 0.5, program="p")
        snapshot = registry.snapshot()
        assert snapshot["counters"]["runs{explorer=dfs,program=p}"] == 2
        assert snapshot["gauges"]["size{program=p}"] == 5
        assert snapshot["histograms"]["wall{program=p}"]["count"] == 1
        assert snapshot["histograms"]["wall{program=p}"]["mean"] == 0.5


class TestGlobalHelpers:
    def test_disabled_helpers_are_noops(self):
        assert not obs_metrics.enabled()
        assert obs_metrics.active() is None
        # None of these may raise or record anywhere.
        obs_metrics.inc("c", program="p")
        obs_metrics.set_gauge("g", 1.0)
        obs_metrics.observe("h", 1.0)
        assert obs_metrics.snapshot() is None

    def test_enable_installs_fresh_registry(self):
        registry = obs_metrics.enable()
        assert obs_metrics.active() is registry
        assert len(registry) == 0
        obs_metrics.inc("c", 2)
        assert registry.counter("c") == 2
        assert obs_metrics.snapshot() == registry.snapshot()

    def test_enable_accepts_existing_registry(self):
        mine = MetricsRegistry()
        mine.inc("carried.over")
        assert obs_metrics.enable(mine) is mine
        obs_metrics.inc("carried.over")
        assert mine.counter("carried.over") == 2

    def test_disable_stops_recording(self):
        registry = obs_metrics.enable()
        obs_metrics.inc("c")
        obs_metrics.disable()
        obs_metrics.inc("c")
        assert registry.counter("c") == 1
        assert not obs_metrics.enabled()
