"""Metrics vs ground truth: every published counter must equal the value
the instrumented component itself reports.

These are the soundness tests for the observability layer — a counter
that drifts from its ``ExplorationResult`` field is worse than no
counter at all.
"""

from repro.detectors import DetectorSuite
from repro.obs import metrics as obs_metrics
from repro.sim import (
    Explorer,
    ParallelExplorer,
    RandomScheduler,
    run_program,
)
from repro.sim.reduction import SleepSetExplorer
from tests.helpers import racy_counter


class TestExplorerCounters:
    def test_serial_counters_match_result(self, registry):
        result = Explorer(racy_counter(), max_schedules=5000).explore()
        labels = {"program": "racy-counter", "explorer": "dfs"}
        assert result.complete
        assert registry.counter("explorer.explorations", complete="true", **labels) == 1
        assert registry.counter("explorer.schedules_run", **labels) == result.schedules_run
        assert registry.counter("explorer.states_expanded", **labels) == result.states_expanded
        assert registry.counter("explorer.preemptions_spent", **labels) == result.preemptions_spent
        assert registry.counter("explorer.matches", **labels) == result.match_count
        assert registry.gauge("explorer.distinct_outcomes", **labels) == len(result.outcomes)
        wall = registry.histogram("explorer.wall_seconds", **labels)
        assert wall.count == 1
        assert abs(wall.total - result.wall_seconds) < 1e-9
        # Every explored schedule is one engine run.
        assert (
            registry.counter("engine.runs", program="racy-counter", status="ok")
            == result.schedules_run
        )

    def test_memoized_lookup_invariant(self, registry):
        explorer = Explorer(racy_counter(), max_schedules=5000, memoize=True)
        result = explorer.explore()
        # Each newly expanded decision point did one (miss) lookup; each
        # aborted run did exactly one hit lookup.
        assert result.cache_hits > 0
        assert result.cache_lookups == result.states_expanded + result.cache_hits
        labels = {"program": "racy-counter"}
        assert registry.counter("statecache.lookups", **labels) == result.cache_lookups
        assert registry.counter("statecache.hits", **labels) == result.cache_hits
        assert registry.gauge("statecache.size", **labels) == result.cache_states
        assert result.cache_states == len(explorer.cache)

    def test_parallel_states_expanded_matches_serial(self, registry):
        serial = Explorer(racy_counter(), max_schedules=5000).explore()
        parallel = ParallelExplorer(
            racy_counter(), workers=2, max_schedules=5000
        ).explore()
        assert parallel.complete
        # Complete searches visit every decision-tree node exactly once,
        # so the expansion counter is identical however the tree is
        # sharded.
        assert parallel.states_expanded == serial.states_expanded
        assert (
            registry.counter(
                "explorer.states_expanded",
                program="racy-counter", explorer="parallel",
            )
            == serial.states_expanded
        )
        assert (
            registry.counter(
                "parallel.explorations", program="racy-counter"
            )
            == 1
        )

    def test_parallel_shard_balance_sums_to_total(self, registry):
        result = ParallelExplorer(
            racy_counter(3), workers=2, max_schedules=20000
        ).explore()
        assert result.complete
        balance = registry.histogram(
            "parallel.shard_schedules_balance", program="racy-counter"
        )
        if result.shards:
            assert balance.count == result.shards
            root_runs = result.schedules_run - balance.total
            assert 0 <= root_runs <= result.schedules_run
        else:
            # Tree too small to shard: the root phase did everything.
            assert balance is None

    def test_sleepset_counters(self, registry):
        result = SleepSetExplorer(racy_counter(), max_schedules=5000).explore()
        labels = {"program": "racy-counter", "explorer": "sleepset"}
        assert registry.counter("explorer.schedules_run", **labels) == result.schedules_run
        assert registry.counter("explorer.states_expanded", **labels) == result.states_expanded

    def test_disabled_registry_records_nothing(self):
        assert not obs_metrics.enabled()
        result = Explorer(racy_counter(), max_schedules=5000).explore()
        assert result.complete
        assert obs_metrics.snapshot() is None
        # Enabling *after* the run starts from a clean slate.
        registry = obs_metrics.enable()
        assert len(registry) == 0


class TestDetectorCounters:
    def test_suite_verdict_tallies(self, registry):
        program = racy_counter()
        trace = run_program(program, RandomScheduler(seed=1)).trace
        suite = DetectorSuite.for_program(program)
        result = suite.analyse(trace)
        for name, report in result.reports.items():
            assert registry.counter("detector.analyses", detector=name) == 1
            verdict = "clean" if report.clean else "flagged"
            assert registry.counter(
                "detector.verdicts", detector=name, verdict=verdict
            ) == 1
            other = "flagged" if report.clean else "clean"
            assert registry.counter(
                "detector.verdicts", detector=name, verdict=other
            ) == 0
        findings = sum(
            len(list(report)) for report in result.reports.values()
        )
        assert registry.counter_total("detector.findings") == findings
