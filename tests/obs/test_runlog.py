"""Unit tests for the structured run log (JSONL telemetry)."""

import json

import pytest

from repro.obs import runlog as obs_runlog
from repro.obs.runlog import SCHEMA, RunLog, outcome_digest, read_records


class TestRunLog:
    def test_file_sink_appends_jsonl(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = RunLog(path)
        log.emit("first", value=1)
        log.emit("second", nested={"a": [1, 2]})
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        # Every line must round-trip through plain json.loads.
        records = [json.loads(line) for line in lines]
        assert [r["event"] for r in records] == ["first", "second"]
        assert all(r["schema"] == SCHEMA for r in records)
        assert all(isinstance(r["ts"], float) for r in records)
        assert records[1]["nested"] == {"a": [1, 2]}
        assert log.records_emitted == 2

    def test_read_records_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = RunLog(path)
        emitted = log.emit("e", program="p", wall_seconds=0.25)
        assert read_records(path) == [emitted]

    def test_callback_sink(self):
        seen = []
        log = RunLog(seen.append)
        log.emit("hello", x=1)
        assert len(seen) == 1
        assert seen[0]["event"] == "hello"
        assert seen[0]["x"] == 1
        assert log.path is None

    def test_unjsonable_values_coerced(self, tmp_path):
        path = tmp_path / "run.jsonl"

        class Odd:
            pass

        RunLog(path).emit("e", odd=Odd())
        # repr()-coerced, not a crash.
        assert "Odd" in read_records(path)[0]["odd"]


class TestGlobalSink:
    def test_emit_noop_without_sink(self):
        assert obs_runlog.active_runlog() is None
        assert obs_runlog.emit("ignored") is None

    def test_set_and_clear(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = obs_runlog.set_runlog(path)
        assert obs_runlog.active_runlog() is log
        obs_runlog.emit("recorded")
        obs_runlog.clear_runlog()
        obs_runlog.emit("dropped")
        assert [r["event"] for r in read_records(path)] == ["recorded"]


class TestOutcomeDigest:
    def test_order_independent(self):
        a = [("ok", (("x", 1),)), ("crash", (("x", 2),))]
        assert outcome_digest(a) == outcome_digest(list(reversed(a)))

    def test_set_not_multiset(self):
        # A dict of outcome -> count digests by keys only, so memoized
        # and unmemoized explorations of the same program agree.
        assert outcome_digest({"a": 5, "b": 1}) == outcome_digest({"a": 1, "b": 9})

    def test_differs_on_different_sets(self):
        assert outcome_digest(["a"]) != outcome_digest(["b"])


class TestExplorationRecord:
    def test_matches_result_fields(self):
        from repro.obs.runlog import exploration_record
        from repro.sim import enumerate_outcomes

        from tests.helpers import racy_counter

        result = enumerate_outcomes(racy_counter(), max_schedules=5000)
        record = exploration_record(result, {"max_schedules": 5000}, 0.5)
        assert record["program"] == "racy-counter"
        assert record["result"]["schedules_run"] == result.schedules_run
        assert record["result"]["states_expanded"] == result.states_expanded
        assert record["result"]["complete"] is True
        assert record["result"]["distinct_outcomes"] == len(result.outcomes)
        assert record["outcome_digest"] == outcome_digest(result.outcomes)
        assert record["wall_seconds"] == 0.5
        # Statuses keyed by enum value (JSON-native).
        assert set(record["result"]["statuses"]) == {"ok"}
        json.dumps(record)  # must be JSON-native throughout
