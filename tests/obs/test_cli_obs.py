"""CLI observability flags: ``--metrics-out`` and ``--profile``.

The acceptance check for the whole layer lives here: a CLI invocation's
JSONL must be parseable, and its states-expanded / cache-hit counters
must exactly match an instrumented serial re-run of the same search.
"""

import json

from repro.cli import main
from repro.kernels import get_kernel
from repro.obs import metrics as obs_metrics
from repro.obs.runlog import SCHEMA, read_records


class TestMetricsOut:
    def test_emits_parseable_jsonl(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(
            ["kernel", "atomicity_lost_update", "--metrics-out", str(path)]
        ) == 0
        capsys.readouterr()
        with path.open() as fh:
            records = [json.loads(line) for line in fh]
        assert records
        assert all(r["schema"] == SCHEMA for r in records)
        events = [r["event"] for r in records]
        assert "kernel.verify_fixed" in events
        assert events[-1] == "cli"

    def test_record_matches_instrumented_serial_rerun(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(
            [
                "kernel", "atomicity_lost_update",
                "--metrics-out", str(path), "--profile",
            ]
        ) == 0
        capsys.readouterr()
        record = next(
            r for r in read_records(path) if r["event"] == "kernel.verify_fixed"
        )

        # Instrumented serial re-run of the same search.
        kernel = get_kernel("atomicity_lost_update")
        registry = obs_metrics.enable()
        try:
            assert kernel.verify_fixed()
        finally:
            obs_metrics.disable()
        labels = {"program": kernel.fixed.name, "explorer": "dfs"}
        assert record["program"] == kernel.fixed.name
        assert record["result"]["states_expanded"] == registry.counter(
            "explorer.states_expanded", **labels
        )
        assert record["result"]["cache_hits"] == registry.counter(
            "explorer.cache_hits", **labels
        )
        assert record["result"]["schedules_run"] == registry.counter(
            "explorer.schedules_run", **labels
        )

        # The CLI summary record's snapshot carries the same counters.
        cli = next(r for r in read_records(path) if r["event"] == "cli")
        key = (
            "explorer.states_expanded"
            f"{{explorer=dfs,program={kernel.fixed.name}}}"
        )
        assert cli["metrics"]["counters"][key] == record["result"]["states_expanded"]
        assert cli["exit_code"] == 0
        assert cli["command"] == "kernel"
        assert cli["profile"] is not None
        assert "engine.execute" in cli["profile"]

    def test_memoized_run_records_cache_hits(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(
            [
                "estimate", "atomicity_lost_update", "--runs", "10",
                "--metrics-out", str(path),
            ]
        ) == 0
        capsys.readouterr()
        records = read_records(path)
        sweeps = [r for r in records if r["event"] == "estimate_manifestation"]
        strategies = {r["strategy"] for r in sweeps}
        assert {"cooperative", "random", "pct"} <= strategies
        for sweep in sweeps:
            assert sweep["result"]["manifested"] <= sweep["args"]["runs"]


class TestProfileFlag:
    def test_profile_table_on_stderr(self, capsys):
        assert main(["kernel", "atomicity_lost_update", "--profile"]) == 0
        err = capsys.readouterr().err
        assert "span" in err
        assert "engine.execute" in err

    def test_observability_globals_torn_down(self, tmp_path, capsys):
        from repro.obs import profile as obs_profile
        from repro.obs import runlog as obs_runlog

        path = tmp_path / "run.jsonl"
        main(
            [
                "kernel", "atomicity_lost_update",
                "--metrics-out", str(path), "--profile",
            ]
        )
        capsys.readouterr()
        assert not obs_metrics.enabled()
        assert not obs_profile.enabled()
        assert obs_runlog.active_runlog() is None

    def test_plain_invocation_untouched(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr()
        assert "atomicity_lost_update" in out.out
        assert "span" not in out.err
        assert not obs_metrics.enabled()
