"""Unit tests for the span profiler."""

from repro.obs import profile as obs_profile
from repro.obs.profile import Profiler


class TestProfiler:
    def test_add_accumulates(self):
        profiler = Profiler()
        profiler.add("s", 0.5)
        profiler.add("s", 0.25, count=4)
        stats = profiler.spans["s"]
        assert stats.count == 5
        assert stats.total == 0.75
        assert stats.mean == 0.15

    def test_span_times_block(self):
        profiler = Profiler()
        with profiler.span("block"):
            pass
        stats = profiler.spans["block"]
        assert stats.count == 1
        assert stats.total >= 0.0

    def test_span_records_on_exception(self):
        profiler = Profiler()
        try:
            with profiler.span("boom"):
                raise ValueError("expected")
        except ValueError:
            pass
        assert profiler.spans["boom"].count == 1

    def test_as_dict_is_json_ready(self):
        profiler = Profiler()
        profiler.add("b", 0.2)
        profiler.add("a", 0.1, count=2)
        dumped = profiler.as_dict()
        assert list(dumped) == ["a", "b"]
        assert dumped["a"] == {
            "count": 2, "total_seconds": 0.1, "mean_seconds": 0.05,
        }

    def test_report_sorted_by_total_desc(self):
        profiler = Profiler()
        profiler.add("cheap", 0.001)
        profiler.add("expensive", 1.0)
        report = profiler.report()
        lines = report.splitlines()
        assert lines[0].split() == ["span", "calls", "total", "(s)", "mean", "(us)"]
        assert report.index("expensive") < report.index("cheap")

    def test_empty_report(self):
        assert "no spans" in Profiler().report()


class TestGlobalProfiler:
    def test_disabled_span_is_noop(self):
        assert not obs_profile.enabled()
        with obs_profile.span("ignored"):
            pass
        assert obs_profile.active() is None

    def test_disabled_span_is_shared_singleton(self):
        # The disabled path must not allocate per call.
        assert obs_profile.span("a") is obs_profile.span("b")

    def test_enable_routes_spans(self):
        profiler = obs_profile.enable()
        with obs_profile.span("timed"):
            pass
        assert profiler.spans["timed"].count == 1
        obs_profile.disable()
        with obs_profile.span("timed"):
            pass
        assert profiler.spans["timed"].count == 1
