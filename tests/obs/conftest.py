"""Fixtures for the observability tests.

The registry, profiler, and run log are process globals; every test in
this package gets automatic teardown so a failing assertion can never
leak an enabled registry into unrelated tests.
"""

import pytest

from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs import runlog as obs_runlog


@pytest.fixture(autouse=True)
def _reset_obs_globals():
    yield
    obs_metrics.disable()
    obs_profile.disable()
    obs_runlog.clear_runlog()


@pytest.fixture
def registry():
    """A fresh registry installed as the global one."""
    return obs_metrics.enable()
