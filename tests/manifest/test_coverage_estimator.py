"""Pairwise-coverage and manifestation-estimator tests."""

import pytest

from repro.kernels import get_kernel
from repro.manifest import (
    PairwiseCoverage,
    compare_strategies,
    estimate_manifestation,
    ordered_pairs,
)
from repro.sim import (
    CooperativeScheduler,
    FixedScheduler,
    RandomScheduler,
    run_program,
)
from tests import helpers


class TestOrderedPairs:
    def test_serial_schedule_covers_one_direction(self):
        prog = helpers.racy_counter()
        trace = run_program(prog, FixedScheduler(["T1", "T1", "T2", "T2"])).trace
        pairs = ordered_pairs(trace)
        assert pairs  # T1's write -> T2's read is a conflicting adjacency
        assert all(isinstance(p, tuple) and len(p) == 2 for p in pairs)

    def test_labels_used_as_site_ids(self):
        from repro.sim import Program, Read, Write

        def writer():
            yield Write("x", 1, label="site.w")

        def reader():
            yield Read("x", label="site.r")

        prog = Program(
            "labelled", threads={"W": writer, "R": reader}, initial={"x": 0}
        )
        trace = run_program(prog, FixedScheduler(["W", "R"])).trace
        assert ("site.w", "site.r") in ordered_pairs(trace)

    def test_read_read_adjacency_not_counted(self):
        from repro.sim import Program, Read

        def reader():
            yield Read("x")

        prog = Program("rr", threads={"A": reader, "B": reader}, initial={"x": 0})
        trace = run_program(prog, CooperativeScheduler()).trace
        assert ordered_pairs(trace) == set()

    def test_same_thread_adjacency_not_counted(self):
        prog = helpers.racy_counter(threads=1)
        trace = run_program(prog, CooperativeScheduler()).trace
        assert ordered_pairs(trace) == set()


class TestPairwiseCoverage:
    def test_accumulates_new_pairs(self):
        prog = helpers.racy_counter()
        cov = PairwiseCoverage()
        first = cov.add(
            run_program(prog, FixedScheduler(["T1", "T1", "T2", "T2"])).trace
        )
        assert first > 0
        again = cov.add(
            run_program(prog, FixedScheduler(["T1", "T1", "T2", "T2"])).trace
        )
        assert again == 0  # same schedule adds nothing

    def test_reverse_schedule_fills_symmetric_gap(self):
        prog = helpers.racy_counter()
        cov = PairwiseCoverage()
        cov.add(run_program(prog, FixedScheduler(["T1", "T1", "T2", "T2"])).trace)
        gaps_before = cov.symmetric_gaps()
        assert gaps_before
        cov.add(run_program(prog, FixedScheduler(["T2", "T2", "T1", "T1"])).trace)
        # Two serial schedules cover one direction of each of the two
        # conflicting site pairs: half of the 4-pair universe.
        assert cov.pairs_covered == 2
        assert cov.coverage_ratio() == pytest.approx(0.5)

    def test_exploration_reaches_full_ratio(self):
        from repro.sim import Explorer

        prog = helpers.racy_counter()
        cov = PairwiseCoverage()
        Explorer(prog).explore(predicate=lambda run: cov.add(run.trace) and False)
        assert cov.coverage_ratio() == 1.0

    def test_traces_seen_counted(self):
        cov = PairwiseCoverage()
        prog = helpers.racy_counter()
        for seed in range(5):
            cov.add(run_program(prog, RandomScheduler(seed=seed)).trace)
        assert cov.traces_seen == 5


class TestEstimator:
    def test_estimates_are_deterministic(self):
        kernel = get_kernel("atomicity_single_var")
        a = estimate_manifestation(
            kernel.buggy, kernel.failure,
            lambda seed: RandomScheduler(seed=seed), runs=30,
        )
        b = estimate_manifestation(
            kernel.buggy, kernel.failure,
            lambda seed: RandomScheduler(seed=seed), runs=30,
        )
        assert a.manifested == b.manifested

    def test_rate_computation(self):
        kernel = get_kernel("deadlock_self")
        est = estimate_manifestation(
            kernel.buggy, kernel.failure,
            lambda seed: RandomScheduler(seed=seed), runs=10,
        )
        assert est.rate == 1.0
        assert "10/10" in est.summary()

    def test_compare_strategies_shape(self):
        kernel = get_kernel("atomicity_single_var")
        estimates = compare_strategies(kernel, runs=40)
        assert set(estimates) == {
            "cooperative", "random", "pct", "exhaustive", "adaptive",
            "enforced",
        }
        # The study's testing implication, quantified:
        assert estimates["cooperative"].rate == 0.0
        assert 0.0 < estimates["random"].rate < 1.0
        assert estimates["enforced"].rate == 1.0
        # The systematic row: one hit after schedules-to-first-failure
        # probes, reduction-tagged in the strategy name.
        assert estimates["exhaustive"].manifested == 1
        assert estimates["exhaustive"].runs >= 1
        assert estimates["exhaustive"].strategy == "exhaustive[none]"
        # The adaptive row: the bandit found the bug and names its
        # winning arm; runs is total spend across every arm.
        assert estimates["adaptive"].manifested == 1
        assert estimates["adaptive"].runs >= 1
        assert estimates["adaptive"].strategy.startswith("adaptive[ucb:")

    def test_compare_strategies_derives_horizon_and_keeps_override(self):
        from repro.alloc import derive_horizon

        kernel = get_kernel("atomicity_single_var")
        derived = derive_horizon(kernel.buggy)
        assert derived >= 4  # grounded in the kernel's real step count
        # The pct_horizon override still reaches the PCT scheduler: a
        # different horizon changes which seeds manifest, but both runs
        # stay deterministic.
        a = compare_strategies(kernel, runs=25, pct_horizon=derived)
        b = compare_strategies(kernel, runs=25, pct_horizon=derived)
        assert a["pct"].manifested == b["pct"].manifested

    def test_compare_strategies_reduction_tags_exhaustive_row(self):
        kernel = get_kernel("atomicity_single_var")
        estimates = compare_strategies(kernel, runs=10, reduction="dpor")
        assert estimates["exhaustive"].strategy == "exhaustive[dpor]"
        assert estimates["exhaustive"].manifested == 1

    def test_enforced_guarantees_all_kernels(self):
        from repro.kernels import all_kernels

        for kernel in all_kernels():
            estimates = compare_strategies(kernel, runs=15)
            assert estimates["enforced"].rate == 1.0, kernel.name

    def test_zero_runs_rate_is_zero(self):
        from repro.manifest import ManifestationEstimate

        assert ManifestationEstimate("x", 0, 0).rate == 0.0


class TestSeedRanges:
    """Edge cases of the estimator's seed-range sharding."""

    def test_runs_less_than_shards_skips_empty_ranges(self):
        from repro.manifest.estimator import _seed_ranges

        ranges = _seed_ranges(3, 8)
        assert ranges == [(0, 1), (1, 2), (2, 3)]

    def test_zero_runs_yields_no_ranges(self):
        from repro.manifest.estimator import _seed_ranges

        assert _seed_ranges(0, 4) == []

    def test_single_shard_is_the_whole_range(self):
        from repro.manifest.estimator import _seed_ranges

        assert _seed_ranges(10, 1) == [(0, 10)]

    @pytest.mark.parametrize(
        "runs,shards", [(1, 1), (7, 3), (8, 3), (9, 3), (100, 7), (5, 5)]
    )
    def test_partition_covers_every_seed_exactly_once(self, runs, shards):
        from repro.manifest.estimator import _seed_ranges

        ranges = _seed_ranges(runs, shards)
        seeds = [s for lo, hi in ranges for s in range(lo, hi)]
        assert seeds == list(range(runs))  # contiguous, disjoint, complete
        assert all(hi > lo for lo, hi in ranges)  # no empty shards
        # Near-equal: shard sizes differ by at most one.
        sizes = [hi - lo for lo, hi in ranges]
        assert max(sizes) - min(sizes) <= 1

    def test_sharded_estimate_matches_serial_seed_for_seed(self):
        kernel = get_kernel("atomicity_single_var")
        serial = estimate_manifestation(
            kernel.buggy, kernel.failure,
            lambda seed: RandomScheduler(seed=seed), runs=40, workers=None,
        )
        sharded = estimate_manifestation(
            kernel.buggy, kernel.failure,
            lambda seed: RandomScheduler(seed=seed), runs=40, workers=4,
        )
        assert sharded.manifested == serial.manifested
        assert sharded.runs == serial.runs == 40
