"""Order-enforcement tests (Finding 8 machinery)."""

import pytest

from repro.errors import EnforcementError
from repro.kernels import all_kernels, get_kernel
from repro.manifest import OrderEnforcer, enforce_order, order_guarantees
from repro.sim import Program, RandomScheduler, Read, RunStatus, Write


class TestOrderEnforcerValidation:
    def test_self_edge_rejected(self):
        with pytest.raises(EnforcementError, match="self-edge"):
            OrderEnforcer([("a", "a")])

    def test_cycle_rejected(self):
        with pytest.raises(EnforcementError, match="cycle"):
            OrderEnforcer([("a", "b"), ("b", "c"), ("c", "a")])

    def test_diamond_accepted(self):
        enforcer = OrderEnforcer([("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")])
        assert enforcer.predecessors["d"] == {"b", "c"}

    def test_empty_order_accepted(self):
        enforcer = OrderEnforcer([])
        assert enforcer.labels == set()


class TestEnforcedRuns:
    def make_two_writers(self):
        def first():
            yield Write("x", "first", label="w1")

        def second():
            yield Write("x", "second", label="w2")

        return Program(
            "two-writers",
            threads={"A": first, "B": second},
            initial={"x": None},
        )

    def test_order_is_respected_across_seeds(self):
        prog = self.make_two_writers()
        for seed in range(20):
            run = enforce_order(
                prog, [("w1", "w2")], scheduler=RandomScheduler(seed=seed)
            )
            assert run.ok
            assert run.result.memory["x"] == "second"

    def test_reverse_order_flips_outcome(self):
        prog = self.make_two_writers()
        for seed in range(20):
            run = enforce_order(
                prog, [("w2", "w1")], scheduler=RandomScheduler(seed=seed)
            )
            assert run.result.memory["x"] == "first"

    def test_unconstrained_labels_schedule_freely(self):
        prog = self.make_two_writers()
        outcomes = {
            enforce_order(prog, [], scheduler=RandomScheduler(seed=s)).result.memory["x"]
            for s in range(30)
        }
        assert outcomes == {"first", "second"}

    def test_missing_label_reported(self):
        def writer():
            yield Write("x", 1, label="w1")

        prog = Program("one-writer", threads={"A": writer}, initial={"x": 0})
        run = enforce_order(prog, [("w1", "never-executed")])
        assert "never-executed" in run.missing_labels
        assert not run.ok

    def test_unsatisfiable_order_reports_stall(self):
        """An order fighting the program's locks falls back and records it."""
        from repro.sim import Acquire, Release

        def holder():
            yield Acquire("L")
            yield Write("x", 1, label="inside")
            yield Release("L")

        def blocked():
            yield Acquire("L", label="other-enter")
            yield Release("L")

        prog = Program(
            "lock-conflict",
            threads={"H": holder, "B": blocked},
            initial={"x": 0},
            locks=["L"],
        )
        # Demand B's acquire happens before H's write, but also H's write
        # before B's acquire cannot both... use a single impossible-ish
        # demand: B enters first, then H's labelled write must precede
        # B's (already done) acquire -> the filter can stall when H is the
        # only enabled thread but its label is blocked on other-enter while
        # B is blocked on the lock H holds.
        run = enforce_order(
            prog,
            [("other-enter", "inside")],
            scheduler=RandomScheduler(seed=1),
        )
        # Whichever way it resolves, the run must terminate and the
        # satisfied flag must faithfully report whether fallback happened.
        assert run.result.status in (RunStatus.OK, RunStatus.DEADLOCK)
        if run.result.status is RunStatus.OK:
            assert isinstance(run.satisfied, bool)


class TestGuarantees:
    def test_every_kernel_order_guarantees_manifestation(self):
        for kernel in all_kernels():
            assert order_guarantees(
                kernel.buggy, kernel.manifest_order, kernel.failure, attempts=10
            ), kernel.name

    def test_wrong_order_does_not_guarantee(self):
        kernel = get_kernel("order_use_before_init")
        # The *correct* order (publish before use) prevents manifestation.
        reverse = tuple((b, a) for a, b in kernel.manifest_order)
        assert not order_guarantees(
            kernel.buggy, reverse, kernel.failure, attempts=5
        )

    def test_empty_order_guarantees_only_always_failing_kernels(self):
        always = get_kernel("deadlock_self")
        assert order_guarantees(always.buggy, (), always.failure, attempts=5)
        sometimes = get_kernel("deadlock_abba")
        assert not order_guarantees(
            sometimes.buggy, (), sometimes.failure, attempts=10
        )

    def test_enforced_fix_order_suppresses_bug(self):
        """Enforcing the correct order is itself a (temporal) fix."""
        kernel = get_kernel("order_use_before_init")
        correct = (("parent.publish", "worker.use"),)
        for seed in range(10):
            run = enforce_order(
                kernel.buggy, correct, scheduler=RandomScheduler(seed=seed)
            )
            assert run.satisfied
            assert not kernel.failure(run.result)
