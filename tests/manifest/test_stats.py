"""Statistics module tests: intervals, sample sizes, rate comparisons."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.manifest.stats import compare_rates, runs_needed, wilson_interval


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(30, 100)
        assert low < 0.30 < high

    def test_zero_successes_lower_bound_is_zero(self):
        low, high = wilson_interval(0, 100)
        assert low == 0.0
        assert 0.0 < high < 0.06  # "absence of evidence" still leaves ~4%

    def test_all_successes_upper_bound_is_one(self):
        low, high = wilson_interval(50, 50)
        assert high == 1.0
        assert low > 0.9

    def test_zero_runs_is_vacuous(self):
        assert wilson_interval(0, 0) == (0.0, 1.0)

    def test_narrower_with_more_runs(self):
        low_small, high_small = wilson_interval(5, 10)
        low_big, high_big = wilson_interval(500, 1000)
        assert (high_big - low_big) < (high_small - low_small)

    def test_higher_confidence_is_wider(self):
        narrow = wilson_interval(20, 100, confidence=0.80)
        wide = wilson_interval(20, 100, confidence=0.99)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])

    def test_input_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=1.5)

    @given(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=1, max_value=200),
    )
    def test_bounds_always_ordered_and_clamped(self, successes, runs):
        successes = min(successes, runs)
        low, high = wilson_interval(successes, runs)
        assert 0.0 <= low <= high <= 1.0


class TestRunsNeeded:
    def test_certain_bug_needs_one_run(self):
        assert runs_needed(1.0) == 1

    def test_one_percent_bug_needs_hundreds(self):
        needed = runs_needed(0.01, confidence=0.95)
        assert 290 <= needed <= 310

    def test_rarer_bugs_need_more(self):
        assert runs_needed(0.001) > runs_needed(0.01) > runs_needed(0.1)

    def test_matches_direct_probability(self):
        p, c = 0.07, 0.9
        n = runs_needed(p, confidence=c)
        assert 1 - (1 - p) ** n >= c
        assert 1 - (1 - p) ** (n - 1) < c

    def test_validation(self):
        with pytest.raises(ValueError):
            runs_needed(0.0)
        with pytest.raises(ValueError):
            runs_needed(0.5, confidence=0.0)

    def test_study_punchline(self):
        """Enforced order (p=1) needs 1 run; random stress needs hundreds."""
        from repro.kernels import get_kernel
        from repro.manifest import compare_strategies

        kernel = get_kernel("order_lost_wakeup")
        estimates = compare_strategies(kernel, runs=100)
        random_rate = estimates["random"].rate
        assert runs_needed(max(random_rate, 0.01)) > 10
        assert runs_needed(estimates["enforced"].rate) == 1


class TestCompareRates:
    def test_identical_rates_not_significant(self):
        cmp = compare_rates(20, 100, 20, 100)
        assert cmp.z_score == pytest.approx(0.0)
        assert not cmp.significant()

    def test_clear_difference_is_significant(self):
        cmp = compare_rates(90, 100, 10, 100)
        assert cmp.significant(alpha=0.001)
        assert cmp.rate_a > cmp.rate_b

    def test_small_samples_not_significant(self):
        cmp = compare_rates(2, 3, 1, 3)
        assert not cmp.significant()

    def test_validation(self):
        with pytest.raises(ValueError):
            compare_rates(1, 0, 1, 1)

    def test_enforced_vs_random_on_a_kernel(self):
        from repro.kernels import get_kernel
        from repro.manifest import compare_strategies

        kernel = get_kernel("deadlock_abba")
        estimates = compare_strategies(kernel, runs=100)
        cmp = compare_rates(
            estimates["enforced"].manifested, estimates["enforced"].runs,
            estimates["random"].manifested, estimates["random"].runs,
        )
        assert cmp.significant(alpha=0.001)
