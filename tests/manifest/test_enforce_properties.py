"""Property-based tests for order enforcement.

Programs are N independent single-write threads with unique labels; the
enforced order is a random DAG over a subset of the labels.  Whatever the
DAG and the scheduler seed, the observed execution order of the labelled
writes must be a linear extension of the DAG.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import EnforcementError
from repro.manifest import OrderEnforcer, enforce_order
from repro.sim import Program, RandomScheduler, Write

MAX_THREADS = 5


def make_program(thread_count: int) -> Program:
    def writer(index):
        def body():
            yield Write("log", index, label=f"w{index}")

        return body

    return Program(
        "independent-writers",
        threads={f"T{i}": writer(i) for i in range(thread_count)},
        initial={"log": None},
    )


@st.composite
def random_dags(draw):
    """A random DAG over labels w0..w{n-1} as (earlier, later) pairs.

    Pairs always point from a lower to a higher index, which guarantees
    acyclicity by construction.
    """
    n = draw(st.integers(min_value=2, max_value=MAX_THREADS))
    pairs = []
    for later in range(1, n):
        predecessors = draw(
            st.lists(
                st.integers(min_value=0, max_value=later - 1),
                max_size=2,
                unique=True,
            )
        )
        pairs.extend((f"w{p}", f"w{later}") for p in predecessors)
    return n, tuple(pairs)


@settings(max_examples=50, deadline=None)
@given(random_dags(), st.integers(min_value=0, max_value=30))
def test_executions_are_linear_extensions(dag, seed):
    n, pairs = dag
    program = make_program(n)
    run = enforce_order(program, pairs, scheduler=RandomScheduler(seed=seed))
    assert run.ok  # independent threads: enforcement can never stall
    positions = {}
    for event in run.result.trace:
        if event.label is not None:
            positions[event.label] = event.seq
    for earlier, later in pairs:
        assert positions[earlier] < positions[later], (pairs, positions)


@settings(max_examples=30, deadline=None)
@given(random_dags(), st.integers(min_value=0, max_value=10))
def test_unconstrained_labels_still_execute(dag, seed):
    n, pairs = dag
    run = enforce_order(make_program(n), pairs, scheduler=RandomScheduler(seed=seed))
    assert run.missing_labels == ()
    assert len(run.result.trace.memory_accesses("log")) == n


@settings(max_examples=30, deadline=None)
@given(random_dags())
def test_enforcer_predecessor_closure_matches_pairs(dag):
    _n, pairs = dag
    enforcer = OrderEnforcer(pairs)
    for earlier, later in pairs:
        assert earlier in enforcer.predecessors[later]


@given(st.integers(min_value=2, max_value=MAX_THREADS))
def test_cyclic_orders_always_rejected(n):
    cycle = [(f"w{i}", f"w{(i + 1) % n}") for i in range(n)]
    try:
        OrderEnforcer(cycle)
    except EnforcementError:
        return
    raise AssertionError("cycle was accepted")
