"""CLI tests: every command exercised through main()."""

import pytest

from repro.cli import main


class TestTables:
    def test_all_tables_render(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        for table_id in ("T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8"):
            assert table_id in out

    def test_selected_table(self, capsys):
        assert main(["tables", "t7"]) == 0
        out = capsys.readouterr().out
        assert "Give up resource" in out
        assert "T1:" not in out

    def test_unknown_table_id_fails(self, capsys):
        assert main(["tables", "T99"]) == 2
        assert "unknown table" in capsys.readouterr().err


class TestFindingsAndValidate:
    def test_findings_all_pass(self, capsys):
        assert main(["findings"]) == 0
        out = capsys.readouterr().out
        assert out.count("[PASS]") == 10
        assert "[FAIL]" not in out

    def test_validate_passes(self, capsys):
        assert main(["validate"]) == 0
        assert "all findings reproduced" in capsys.readouterr().out


class TestKernelCommands:
    def test_kernels_lists_all_sixteen(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 16
        assert "deadlock_abba" in out

    def test_kernel_drives_end_to_end(self, capsys):
        assert main(["kernel", "order_use_before_init"]) == 0
        out = capsys.readouterr().out
        assert "minimal witness" in out
        assert "verified clean" in out

    def test_kernel_unknown_name(self, capsys):
        assert main(["kernel", "nope"]) == 2
        assert "unknown kernel" in capsys.readouterr().err

    def test_detect_prints_reports(self, capsys):
        assert main(["detect", "atomicity_lost_update"]) == 0
        out = capsys.readouterr().out
        assert "happens-before" in out
        assert "lockset" in out

    def test_estimate_prints_strategies(self, capsys):
        assert main(["estimate", "deadlock_self", "--runs", "5"]) == 0
        out = capsys.readouterr().out
        assert "cooperative" in out
        assert "enforced" in out


class TestFamilyAndMemoryFlags:
    def test_kernels_filtered_by_family(self, capsys):
        assert main(["kernels", "--family", "actor"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 2
        assert "actor_mailbox_order" in out
        assert "deadlock_abba" not in out

    def test_kernels_unknown_family(self, capsys):
        assert main(["kernels", "--family", "quantum"]) == 2
        err = capsys.readouterr().err
        assert "unknown kernel family" in err and "actor" in err

    def test_kernel_requires_name_or_family(self, capsys):
        assert main(["kernel"]) == 2
        assert "kernel name or --family" in capsys.readouterr().err

    def test_kernel_family_sweep(self, capsys):
        assert main(["kernel", "--family", "actor"]) == 0
        out = capsys.readouterr().out
        assert out.count("minimal witness") == 2
        assert out.count("verified clean") == 2

    def test_weakmem_kernel_gated_by_memory_flag(self, capsys):
        # Declared model (tso): manifests.  Forced to sc: unreachable,
        # which the driver reports as exit 1.
        assert main(["kernel", "weakmem_store_buffer"]) == 0
        out = capsys.readouterr().out
        assert "memory model: tso" in out
        assert main(["kernel", "weakmem_store_buffer", "--memory", "sc"]) == 1
        out = capsys.readouterr().out
        assert "memory model: sc" in out
        assert "no manifesting schedule found" in out

    def test_detect_accepts_memory_override(self, capsys):
        assert main(["detect", "atomicity_lost_update", "--memory", "tso"]) == 0
        out = capsys.readouterr().out
        assert "happens-before" in out


class TestBugCommand:
    def test_show_record(self, capsys):
        assert main(["bug", "mysql-nd-binlog-rotate"]) == 0
        out = capsys.readouterr().out
        assert "MySQL#791" in out
        assert "atomicity-violation" in out

    def test_unknown_bug(self, capsys):
        assert main(["bug", "nope"]) == 2
        assert "unknown bug id" in capsys.readouterr().err


class TestReport:
    def test_quick_report(self, capsys):
        assert main(["report", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "ALL FINDINGS REPRODUCED" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestFuzzCommand:
    def test_fuzz_runs_clean(self, capsys):
        assert main(["fuzz", "--programs", "8", "--budget", "2000"]) == 0
        out = capsys.readouterr().out
        assert "no divergence" in out

    def test_fuzz_with_deadlocks(self, capsys):
        assert main(
            ["fuzz", "--programs", "6", "--budget", "2000", "--deadlocks"]
        ) == 0


class TestBugReportCommand:
    def test_markdown_report_emitted(self, capsys):
        assert main(["bug-report", "deadlock_self", "--runs", "10"]) == 0
        out = capsys.readouterr().out
        assert "# Concurrency failure report" in out
        assert "Deterministic reproduction" in out

    def test_unknown_kernel(self, capsys):
        assert main(["bug-report", "nope"]) == 2


class TestTablesCsv:
    def test_csv_output(self, capsys):
        assert main(["tables", "T2", "--csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("Application,")
        assert "Total,74,31,105" in out


class TestStatic:
    def test_single_kernel_report(self, capsys):
        assert main(["static", "deadlock_abba"]) == 0
        out = capsys.readouterr().out
        assert "static analysis of" in out
        assert "lock-order cycle" in out
        assert "precision" in out and "recall" in out

    def test_all_kernels_soundness_summary(self, capsys):
        assert main(["static"]) == 0
        out = capsys.readouterr().out
        assert "soundness over kernel corpus" in out
        assert "every confirmed dynamic finding statically predicted" in out
        assert "MISSED" not in out

    def test_json_output_parses(self, capsys):
        import json

        assert main(["static", "atomicity_single_var", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 1
        record = payload[0]
        assert record["sound"] is True
        assert record["static"]["candidates"]

    def test_direct_compares_schedule_counts(self, capsys):
        assert main(["static", "deadlock_three_way", "--direct"]) == 0
        out = capsys.readouterr().out
        assert "schedules to first manifestation" in out
        assert "undirected" in out and "directed" in out

    def test_unknown_kernel(self, capsys):
        assert main(["static", "nope"]) == 2
        assert "unknown kernel" in capsys.readouterr().err


from pathlib import Path  # noqa: E402

CORPUS = str(Path(__file__).resolve().parents[1] / "examples" / "realworld")
BUGGY_MODULE = f"{CORPUS}/use_before_init_buggy.py"
FIXED_MODULE = f"{CORPUS}/use_before_init_fixed.py"


class TestStaticSource:
    def test_corpus_gate_passes(self, capsys):
        assert main(["static", "--source", CORPUS, "--budget", "400"]) == 0
        out = capsys.readouterr().out
        assert "ground-truth recall: 13/13" in out
        assert "FAILED" not in out

    def test_single_module(self, capsys):
        # Gate semantics: a buggy module whose annotated bugs are all
        # recalled and confirmed passes, so a lone buggy file exits 0.
        assert main(["static", "--source", BUGGY_MODULE]) == 0
        out = capsys.readouterr().out
        assert "use_before_init_buggy" in out
        assert "ground-truth recall: 2/2" in out

    def test_json_payload(self, capsys):
        import json

        assert main(
            ["static", "--source", CORPUS, "--budget", "400", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["recall"] == 1.0
        assert len(payload["modules"]) == 16

    def test_source_and_kernel_name_conflict(self, capsys):
        assert main(["static", "deadlock_abba", "--source", CORPUS]) == 2
        assert "not both" in capsys.readouterr().err

    def test_missing_path(self, capsys):
        assert main(["static", "--source", "nowhere/"]) == 2
        assert "source analysis failed" in capsys.readouterr().err


class TestLift:
    def test_buggy_module_exits_nonzero(self, capsys):
        assert main(["lift", BUGGY_MODULE]) == 1
        out = capsys.readouterr().out
        assert "lifted to simulator program" in out
        assert "CONFIRMED" in out
        assert "bug manifested" in out

    def test_fixed_module_exits_zero(self, capsys):
        assert main(["lift", FIXED_MODULE]) == 0
        assert "clean" in capsys.readouterr().out

    def test_show_prints_generated_bodies(self, capsys):
        assert main(["lift", FIXED_MODULE, "--show"]) == 0
        out = capsys.readouterr().out
        assert "def _lifted_main" in out
        assert "yield " in out

    def test_json_verdict(self, capsys):
        import json

        assert main(["lift", BUGGY_MODULE, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["buggy"] is True
        assert payload["statuses"]["crash"] >= 1

    def test_missing_module(self, capsys):
        assert main(["lift", "no_such_module.py"]) == 2
        assert "lift failed" in capsys.readouterr().err
