"""The kernel/bugdb lint: drift detection on synthetic programs + the
live check over the real registry (what CI runs)."""

import importlib.util
import sys
from pathlib import Path

import pytest

from repro.sim import Acquire, Program, Read, Release, Write

TOOLS = Path(__file__).resolve().parents[2] / "tools"


@pytest.fixture(scope="module")
def lint():
    spec = importlib.util.spec_from_file_location(
        "lint_repro", TOOLS / "lint_repro.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def well_declared():
    def body():
        yield Acquire("L")
        value = yield Read("x")
        yield Write("x", value + 1)
        yield Release("L")

    return Program("ok", threads={"T": body}, initial={"x": 0}, locks=["L"])


class TestDeclarationDrift:
    def test_clean_program_has_no_problems(self, lint):
        assert lint.declaration_problems("ok", [("buggy", well_declared())]) == []

    def test_undeclared_lock_use_is_flagged(self, lint):
        def body():
            yield Acquire("M")
            yield Release("M")

        program = Program("drift", threads={"T": body}, locks=["M"])
        # Simulate drift by lying about the declaration set post-hoc.
        program.locks = []
        problems = lint.declaration_problems("drift", [("buggy", program)])
        assert any("uses lock 'M'" in p for p in problems)

    def test_undeclared_variable_use_is_flagged(self, lint):
        def body():
            yield Write("ghost", 1)

        program = Program("drift", threads={"T": body}, initial={"ghost": 0})
        program.initial = {}
        problems = lint.declaration_problems("drift", [("buggy", program)])
        assert any("uses variable 'ghost'" in p for p in problems)

    def test_declared_but_unused_lock_is_flagged(self, lint):
        def body():
            yield Write("x", 1)

        program = Program("unused", threads={"T": body},
                          initial={"x": 0}, locks=["L"])
        problems = lint.declaration_problems("unused", [("buggy", program)])
        assert any("declared lock 'L' is used by no variant" in p
                   for p in problems)

    def test_unused_in_buggy_but_used_in_fix_is_fine(self, lint):
        # Lock-addition fixes share the buggy program's declarations:
        # only the union across variants must use every declaration.
        def racy():
            yield Write("x", 1)

        def fixed():
            yield Acquire("L")
            yield Write("x", 1)
            yield Release("L")

        declarations = dict(initial={"x": 0}, locks=["L"])
        problems = lint.declaration_problems("fixpair", [
            ("buggy", Program("b", threads={"T": racy}, **declarations)),
            ("fixed", Program("f", threads={"T": fixed}, **declarations)),
        ])
        assert problems == []


class TestLiveRegistry:
    def test_real_kernels_and_bugdb_are_clean(self, lint):
        problems = []
        lint.check_declarations(problems)
        lint.check_bugdb_links(problems)
        assert problems == []

    def test_allowlist_entries_are_real_kernels(self, lint):
        from repro.kernels import kernel_names

        assert lint.UNLINKED_KERNELS <= set(kernel_names())

    def test_realworld_corpus_is_clean(self, lint):
        problems = []
        lint.check_realworld_corpus(problems)
        assert problems == []


class TestCorpusLint:
    def test_dangling_annotation_variable_is_flagged(self, lint, tmp_path,
                                                     monkeypatch):
        (tmp_path / "phantom_buggy.py").write_text(
            "import threading\n"
            'REPRO_EXPECT = {"bugs": [{"kind": "data-race",'
            ' "variables": ["ghost"]}]}\n'
            "x = 0\n\n"
            "def worker():\n"
            "    global x\n"
            "    x = 1\n\n"
            "def main():\n"
            "    t = threading.Thread(target=worker)\n"
            "    t.start()\n"
            "    t.join()\n"
        )
        monkeypatch.setattr(lint, "CORPUS_DIR", tmp_path)
        problems = []
        lint.check_realworld_corpus(problems)
        assert any("'ghost'" in p and "never extracted" in p
                   for p in problems)
        # ... and the missing fixed twin is reported too.
        assert any("0 fixed twin(s)" in p for p in problems)

    def test_unresolved_fixed_of_is_flagged(self, lint, tmp_path,
                                            monkeypatch):
        (tmp_path / "orphan_fixed.py").write_text(
            "import threading\n"
            'REPRO_EXPECT = {"fixed_of": "nowhere_buggy", "bugs": []}\n'
            "x = 0\n\n"
            "def worker():\n"
            "    global x\n"
            "    x = 1\n\n"
            "def main():\n"
            "    t = threading.Thread(target=worker)\n"
            "    t.start()\n"
            "    t.join()\n"
        )
        monkeypatch.setattr(lint, "CORPUS_DIR", tmp_path)
        problems = []
        lint.check_realworld_corpus(problems)
        assert any("resolves to no corpus module" in p for p in problems)
