"""Worker-pool server tests: correct configs clean, injected bugs hunted."""

import pytest

from repro.apps.webserver import WebServerConfig, build_webserver, served_everything
from repro.sim import (
    Explorer,
    RandomScheduler,
    RunStatus,
    find_schedule,
    replay,
    run_program,
)


class TestCorrectServer:
    def test_every_random_run_serves_everything(self):
        config = WebServerConfig(workers=2, requests=3)
        program = build_webserver(config)
        oracle = served_everything(config)
        for seed in range(40):
            run = run_program(program, RandomScheduler(seed=seed))
            assert oracle(run), (seed, run.summary())

    def test_bounded_exploration_finds_no_failure(self):
        config = WebServerConfig(workers=1, requests=1)
        program = build_webserver(config)
        oracle = served_everything(config)
        result = Explorer(
            program, max_schedules=30000, preemption_bound=2
        ).explore(predicate=lambda run: not oracle(run), stop_on_first=True)
        assert not result.found

    def test_workers_consume_fifo(self):
        config = WebServerConfig(workers=1, requests=3)
        run = run_program(build_webserver(config), RandomScheduler(seed=2))
        assert run.memory["queue"] == []
        assert run.memory["served"] == 3

    def test_shutdown_waits_for_workers(self):
        config = WebServerConfig(workers=2, requests=2)
        run = run_program(build_webserver(config), RandomScheduler(seed=9))
        assert run.status is RunStatus.OK
        assert run.memory["conn"] is None  # teardown did happen, but last


class TestUnlockedStats:
    CONFIG = WebServerConfig(workers=2, requests=2, unlocked_stats=True)

    def lost_update(self, run):
        return run.status is RunStatus.OK and run.memory["served"] < 2

    def test_lost_update_reachable(self):
        program = build_webserver(self.CONFIG)
        failing = find_schedule(
            program, predicate=self.lost_update,
            max_schedules=60000, preemption_bound=3,
        )
        assert failing is not None
        rerun = replay(program, failing.schedule)
        assert self.lost_update(rerun)

    def test_detectors_flag_the_stats_race(self):
        from repro.detectors import HappensBeforeDetector, LocksetDetector

        program = build_webserver(self.CONFIG)
        failing = find_schedule(
            program, predicate=self.lost_update,
            max_schedules=60000, preemption_bound=3,
        )
        hb = HappensBeforeDetector().analyse(failing.trace)
        assert any("served" in f.variables for f in hb)
        lockset = LocksetDetector().analyse(failing.trace)
        assert any("served" in f.variables for f in lockset)


class TestLostWakeup:
    CONFIG = WebServerConfig(workers=1, requests=1, unlocked_queue_check=True)

    def test_hang_reachable(self):
        program = build_webserver(self.CONFIG)
        failing = find_schedule(
            program,
            predicate=lambda run: run.status is RunStatus.HANG,
            max_schedules=60000,
            preemption_bound=2,
        )
        assert failing is not None
        blocked = dict(failing.blocked)
        assert any(reason.startswith("cond:") for reason in blocked.values())

    def test_hang_flagged_as_order_violation(self):
        from repro.detectors import FindingKind, OrderViolationDetector

        program = build_webserver(self.CONFIG)
        failing = find_schedule(
            program,
            predicate=lambda run: run.status is RunStatus.HANG,
            max_schedules=60000,
            preemption_bound=2,
        )
        report = OrderViolationDetector.for_program(program).analyse(failing.trace)
        assert FindingKind.HANG in {f.kind for f in report}


class TestTeardownRace:
    CONFIG = WebServerConfig(workers=1, requests=2, teardown_race=True)

    def test_crash_reachable(self):
        program = build_webserver(self.CONFIG)
        failing = find_schedule(
            program,
            predicate=lambda run: run.status is RunStatus.CRASH,
            max_schedules=60000,
            preemption_bound=2,
        )
        assert failing is not None
        assert "torn-down connection" in failing.crash_reasons[0]

    def test_correct_shutdown_never_crashes(self):
        config = WebServerConfig(workers=1, requests=2)
        program = build_webserver(config)
        result = Explorer(
            program, max_schedules=60000, preemption_bound=2
        ).explore(
            predicate=lambda run: run.status is RunStatus.CRASH,
            stop_on_first=True,
        )
        assert not result.found
