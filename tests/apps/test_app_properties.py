"""Property tests over the miniature applications.

The correct configurations must stay correct for *any* workload shape in
a small parameter box, under any seeded random schedule — the
application-scale analogue of the kernel fix-verification suite.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.cache import CacheConfig, build_cache, single_free
from repro.apps.logger import LoggerConfig, build_logger, no_events_lost, stale_append
from repro.apps.webserver import WebServerConfig, build_webserver, served_everything
from repro.sim import RandomScheduler, run_program


@settings(max_examples=25, deadline=None)
@given(
    workers=st.integers(min_value=1, max_value=3),
    requests=st.integers(min_value=0, max_value=4),
    seed=st.integers(min_value=0, max_value=50),
)
def test_correct_webserver_serves_every_request(workers, requests, seed):
    config = WebServerConfig(workers=workers, requests=requests)
    run = run_program(build_webserver(config), RandomScheduler(seed=seed))
    assert served_everything(config)(run), (run.summary(), run.memory)


@settings(max_examples=25, deadline=None)
@given(
    writers=st.integers(min_value=1, max_value=3),
    events=st.integers(min_value=1, max_value=3),
    rotations=st.integers(min_value=0, max_value=3),
    seed=st.integers(min_value=0, max_value=50),
)
def test_correct_logger_never_loses_or_misfiles(writers, events, rotations, seed):
    config = LoggerConfig(
        writers=writers, events_per_writer=events, rotations=rotations
    )
    run = run_program(build_logger(config), RandomScheduler(seed=seed))
    assert no_events_lost(config)(run), run.memory
    assert not stale_append(run)


@settings(max_examples=25, deadline=None)
@given(
    clients=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=50),
)
def test_correct_cache_frees_exactly_once(clients, seed):
    config = CacheConfig(clients=clients)
    run = run_program(build_cache(config), RandomScheduler(seed=seed))
    assert single_free(config)(run), run.memory


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=200))
def test_buggy_cache_never_hangs_only_double_frees(seed):
    """The refcount bug corrupts state but must never block progress."""
    config = CacheConfig(clients=2, nonatomic_refcount=True)
    run = run_program(build_cache(config), RandomScheduler(seed=seed))
    assert run.ok  # the failure mode is silent corruption, not a hang
