"""Rotating logger and refcounted cache tests."""

import pytest

from repro.apps.cache import CacheConfig, build_cache, single_free
from repro.apps.logger import (
    LoggerConfig,
    build_logger,
    no_events_lost,
    stale_append,
)
from repro.sim import (
    Explorer,
    RandomScheduler,
    RunStatus,
    find_schedule,
    run_program,
)


class TestCorrectLogger:
    def test_random_runs_lose_nothing(self):
        config = LoggerConfig(writers=2, events_per_writer=2, rotations=2)
        program = build_logger(config)
        oracle = no_events_lost(config)
        for seed in range(40):
            run = run_program(program, RandomScheduler(seed=seed))
            assert oracle(run), (seed, run.memory)

    def test_exhaustive_small_instance_clean(self):
        config = LoggerConfig(writers=1, events_per_writer=1, rotations=1)
        program = build_logger(config)
        oracle = no_events_lost(config)
        result = Explorer(program, max_schedules=60000).explore(
            predicate=lambda run: not oracle(run), stop_on_first=True
        )
        assert result.complete and not result.found

    def test_appends_record_live_segment(self):
        config = LoggerConfig(writers=1, events_per_writer=2, rotations=1)
        for seed in range(30):
            run = run_program(build_logger(config), RandomScheduler(seed=seed))
            assert not stale_append(run), seed


class TestUnlockedRotation:
    CONFIG = LoggerConfig(writers=1, events_per_writer=1, unlocked_rotation=True)

    def test_event_loss_reachable(self):
        program = build_logger(self.CONFIG)
        failing = find_schedule(
            program,
            predicate=lambda run: run.ok and run.memory["lost"] > 0,
            max_schedules=60000,
        )
        assert failing is not None

    def test_atomicity_detector_flags_wrw(self):
        from repro.detectors import AtomicityDetector, FindingKind

        program = build_logger(self.CONFIG)
        failing = find_schedule(
            program,
            predicate=lambda run: run.ok and run.memory["lost"] > 0,
            max_schedules=60000,
        )
        report = AtomicityDetector().analyse(failing.trace)
        violations = report.of_kind(FindingKind.ATOMICITY_VIOLATION)
        assert any("log_open" in f.variables for f in violations)


class TestStaleSegmentCache:
    CONFIG = LoggerConfig(writers=1, events_per_writer=1, stale_segment_cache=True)

    def test_stale_append_reachable(self):
        program = build_logger(self.CONFIG)
        failing = find_schedule(
            program, predicate=stale_append, max_schedules=60000
        )
        assert failing is not None
        # The event landed after rotation yet carries segment id 0.
        assert failing.memory["appended"] == [0]
        assert failing.memory["segment"] == 1


class TestCorrectCache:
    def test_object_freed_exactly_once(self):
        config = CacheConfig(clients=2)
        program = build_cache(config)
        oracle = single_free(config)
        result = Explorer(program, max_schedules=60000).explore(
            predicate=lambda run: not oracle(run), stop_on_first=True
        )
        assert result.complete and not result.found

    def test_no_deadlock_with_consistent_order(self):
        config = CacheConfig(clients=2)
        result = Explorer(build_cache(config), max_schedules=60000).explore(
            predicate=lambda run: run.status is RunStatus.DEADLOCK,
            stop_on_first=True,
        )
        assert not result.found


class TestNonAtomicRefcount:
    CONFIG = CacheConfig(clients=2, nonatomic_refcount=True)

    def double_free(self, run):
        return (
            run.ok and run.memory["freed_by_c1"] and run.memory["freed_by_c2"]
        )

    def test_double_free_reachable(self):
        failing = find_schedule(
            build_cache(self.CONFIG), predicate=self.double_free,
            max_schedules=60000,
        )
        assert failing is not None

    def test_race_free_for_hb_but_flagged_by_avio(self):
        from repro.detectors import AtomicityDetector, HappensBeforeDetector

        program = build_cache(self.CONFIG)
        failing = find_schedule(
            program, predicate=self.double_free, max_schedules=60000
        )
        hb = HappensBeforeDetector().analyse(failing.trace)
        refcnt_races = [f for f in hb if "refcnt" in f.variables]
        assert refcnt_races == []
        avio = AtomicityDetector().analyse(failing.trace)
        assert any("refcnt" in f.variables for f in avio)


class TestAbbaCache:
    CONFIG = CacheConfig(clients=1, abba_locks=True)

    def test_deadlock_reachable(self):
        failing = find_schedule(
            build_cache(self.CONFIG),
            predicate=lambda run: run.status is RunStatus.DEADLOCK,
            max_schedules=60000,
        )
        assert failing is not None
        assert len(failing.blocked) == 2

    def test_cycle_predicted_from_good_run(self):
        from repro.detectors import DeadlockDetector, FindingKind
        from repro.sim import CooperativeScheduler

        program = build_cache(self.CONFIG)
        good = run_program(program, CooperativeScheduler())
        assert good.ok
        report = DeadlockDetector().analyse(good.trace)
        predicted = report.of_kind(FindingKind.POTENTIAL_DEADLOCK)
        assert any(
            set(f.resources) == {"cachelock", "objlock"} for f in predicted
        )


class TestCatalogue:
    def test_every_entry_manifests(self):
        from repro.apps import bug_catalogue

        for app, flag, kind, program, oracle in bug_catalogue():
            failing = find_schedule(
                program, predicate=oracle, max_schedules=60000,
                preemption_bound=3,
            )
            assert failing is not None, f"{app}.{flag}"

    def test_catalogue_covers_three_apps_and_three_kinds(self):
        from repro.apps import bug_catalogue

        entries = bug_catalogue()
        assert {e[0] for e in entries} == {"webserver", "logger", "cache"}
        assert {e[2] for e in entries} == {
            "atomicity-violation", "order-violation", "deadlock",
        }
