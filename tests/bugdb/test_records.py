"""Per-application record module tests: catch regeneration drift early."""

from collections import Counter

import pytest

from repro.bugdb import BugCategory, BugPattern, FixStrategy
from repro.bugdb.records import (
    APACHE_RECORDS,
    MOZILLA_RECORDS,
    MYSQL_RECORDS,
    OPENOFFICE_RECORDS,
    all_records,
)

MODULES = {
    "mysql": MYSQL_RECORDS,
    "apache": APACHE_RECORDS,
    "mozilla": MOZILLA_RECORDS,
    "openoffice": OPENOFFICE_RECORDS,
}


class TestModuleShapes:
    def test_per_module_counts(self):
        assert len(MYSQL_RECORDS) == 23
        assert len(APACHE_RECORDS) == 17
        assert len(MOZILLA_RECORDS) == 57
        assert len(OPENOFFICE_RECORDS) == 8

    def test_all_records_concatenates(self):
        assert len(all_records()) == 105
        ids = [r.bug_id for r in all_records()]
        assert len(set(ids)) == 105

    @pytest.mark.parametrize("name,records", MODULES.items())
    def test_ids_prefixed_by_application(self, name, records):
        assert all(r.bug_id.startswith(name) for r in records)

    @pytest.mark.parametrize("name,records", MODULES.items())
    def test_descriptions_are_substantive(self, name, records):
        for record in records:
            assert len(record.description) > 40, record.bug_id
            assert record.component, record.bug_id


class TestPerApplicationMarginals:
    """The per-app allocations behind the global calibration."""

    def test_mozilla_pattern_split(self):
        nd = [r for r in MOZILLA_RECORDS if r.category is BugCategory.NON_DEADLOCK]
        atomicity_only = sum(
            1 for r in nd if r.patterns == (BugPattern.ATOMICITY,)
        )
        order_only = sum(1 for r in nd if r.patterns == (BugPattern.ORDER,))
        both = sum(1 for r in nd if len(r.patterns) == 2)
        other = sum(1 for r in nd if r.patterns == (BugPattern.OTHER,))
        assert (atomicity_only, order_only, both, other) == (27, 11, 2, 1)

    def test_mysql_fix_split(self):
        nd = [r for r in MYSQL_RECORDS if r.category is BugCategory.NON_DEADLOCK]
        fixes = Counter(r.fix_strategy for r in nd)
        assert fixes[FixStrategy.ADD_LOCK] == 4
        assert fixes[FixStrategy.COND_CHECK] == 4
        assert fixes[FixStrategy.CODE_SWITCH] == 2
        assert fixes[FixStrategy.DESIGN_CHANGE] == 4

    def test_apache_has_no_both_pattern_records(self):
        nd = [r for r in APACHE_RECORDS if r.category is BugCategory.NON_DEADLOCK]
        assert all(len(r.patterns) == 1 for r in nd)

    def test_mozilla_deadlock_resources(self):
        dl = [r for r in MOZILLA_RECORDS if r.category is BugCategory.DEADLOCK]
        histogram = Counter(r.resources_involved for r in dl)
        assert histogram == {1: 4, 2: 11, 3: 1}

    def test_openoffice_deadlocks_all_two_resource(self):
        dl = [r for r in OPENOFFICE_RECORDS if r.category is BugCategory.DEADLOCK]
        assert [r.resources_involved for r in dl] == [2, 2]


class TestAnchoredRecords:
    def test_anchors_present(self):
        anchored = [
            r for r in all_records() if not r.report_ref.startswith("synthetic:")
        ]
        assert len(anchored) == 14
        by_id = {r.bug_id for r in anchored}
        assert {
            "mozilla-nd-js-gc",
            "mozilla-nd-cache-flush",
            "mozilla-nd-thread-init",
            "mysql-nd-binlog-rotate",
            "apache-nd-log-buffer",
            "apache-nd-refcount",
            "mozilla-dl-nested-monitor",
        } <= by_id

    def test_real_tracker_refs(self):
        refs = {r.report_ref for r in all_records()}
        assert "MySQL#791" in refs
        assert "Apache#25520" in refs
        assert "Apache#21287" in refs

    def test_synthetic_records_marked(self):
        synthetic = [
            r for r in all_records() if r.report_ref.startswith("synthetic:")
        ]
        assert len(synthetic) == 105 - 14
