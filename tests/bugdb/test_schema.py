"""BugRecord schema validation tests."""

import pytest

from repro.bugdb import (
    Application,
    BugCategory,
    BugPattern,
    BugRecord,
    FixStrategy,
    Impact,
)
from repro.errors import BugDatabaseError


def make_nd(**overrides):
    base = dict(
        bug_id="test-nd",
        report_ref="synthetic:test",
        application=Application.MYSQL,
        component="test",
        description="a test record",
        category=BugCategory.NON_DEADLOCK,
        patterns=(BugPattern.ATOMICITY,),
        impact=Impact.CRASH,
        threads_involved=2,
        accesses_to_manifest=3,
        fix_strategy=FixStrategy.ADD_LOCK,
        variables_involved=1,
    )
    base.update(overrides)
    return BugRecord(**base)


def make_dl(**overrides):
    base = dict(
        bug_id="test-dl",
        report_ref="synthetic:test",
        application=Application.APACHE,
        component="test",
        description="a test deadlock",
        category=BugCategory.DEADLOCK,
        patterns=(),
        impact=Impact.HANG,
        threads_involved=2,
        accesses_to_manifest=4,
        fix_strategy=FixStrategy.GIVE_UP_RESOURCE,
        resources_involved=2,
    )
    base.update(overrides)
    return BugRecord(**base)


class TestNonDeadlockValidation:
    def test_valid_record_constructs(self):
        record = make_nd()
        assert record.involves_single_variable
        assert record.small_access_set
        assert record.few_threads

    def test_needs_a_pattern(self):
        with pytest.raises(BugDatabaseError, match="at least one pattern"):
            make_nd(patterns=())

    def test_needs_variable_count(self):
        with pytest.raises(BugDatabaseError, match="variables_involved"):
            make_nd(variables_involved=None)

    def test_rejects_resources(self):
        with pytest.raises(BugDatabaseError, match="resources_involved"):
            make_nd(resources_involved=2)

    def test_rejects_deadlock_fix(self):
        with pytest.raises(BugDatabaseError, match="not a non-deadlock"):
            make_nd(fix_strategy=FixStrategy.GIVE_UP_RESOURCE)

    def test_other_pattern_is_exclusive(self):
        with pytest.raises(BugDatabaseError, match="'other'"):
            make_nd(patterns=(BugPattern.OTHER, BugPattern.ATOMICITY))

    def test_rejects_duplicate_patterns(self):
        with pytest.raises(BugDatabaseError, match="duplicate"):
            make_nd(patterns=(BugPattern.ATOMICITY, BugPattern.ATOMICITY))

    def test_both_patterns_allowed(self):
        record = make_nd(patterns=(BugPattern.ATOMICITY, BugPattern.ORDER))
        assert record.has_pattern(BugPattern.ATOMICITY)
        assert record.has_pattern(BugPattern.ORDER)


class TestDeadlockValidation:
    def test_valid_record_constructs(self):
        record = make_dl()
        assert record.is_deadlock
        assert not record.involves_single_variable

    def test_rejects_patterns(self):
        with pytest.raises(BugDatabaseError, match="no non-deadlock patterns"):
            make_dl(patterns=(BugPattern.ATOMICITY,))

    def test_needs_resources(self):
        with pytest.raises(BugDatabaseError, match="resources_involved"):
            make_dl(resources_involved=None)

    def test_rejects_variables(self):
        with pytest.raises(BugDatabaseError, match="variables_involved"):
            make_dl(variables_involved=1)

    def test_rejects_non_deadlock_fix(self):
        with pytest.raises(BugDatabaseError, match="not a deadlock"):
            make_dl(fix_strategy=FixStrategy.ADD_LOCK)

    def test_single_resource_allowed(self):
        record = make_dl(resources_involved=1, threads_involved=1,
                         accesses_to_manifest=2)
        assert record.resources_involved == 1


class TestCommonValidation:
    def test_threads_must_be_positive(self):
        with pytest.raises(BugDatabaseError, match="threads_involved"):
            make_nd(threads_involved=0)

    def test_accesses_must_be_positive(self):
        with pytest.raises(BugDatabaseError, match="accesses_to_manifest"):
            make_nd(accesses_to_manifest=0)

    def test_records_are_frozen(self):
        record = make_nd()
        with pytest.raises(Exception):
            record.threads_involved = 5

    def test_predicates(self):
        assert not make_nd(threads_involved=3).few_threads
        assert not make_nd(accesses_to_manifest=5).small_access_set
        assert not make_nd(variables_involved=2).involves_single_variable
