"""BugDatabase loading, querying, and the study's headline aggregates.

The aggregate tests below pin the database to the published counts of the
ASPLOS'08 study — they are the contract the whole study layer depends on.
"""

import pytest

from repro.bugdb import (
    Application,
    BugCategory,
    BugDatabase,
    BugPattern,
    FixStrategy,
    validate_database,
)


@pytest.fixture(scope="module")
def db():
    return BugDatabase.load()


class TestLoad:
    def test_total_is_105(self, db):
        assert len(db) == 105

    def test_category_split(self, db):
        counts = db.count_by_category()
        assert counts[BugCategory.NON_DEADLOCK] == 74
        assert counts[BugCategory.DEADLOCK] == 31

    def test_application_split(self, db):
        assert db.count_by_application() == {
            Application.MYSQL: 23,
            Application.APACHE: 17,
            Application.MOZILLA: 57,
            Application.OPENOFFICE: 8,
        }

    def test_per_application_category_split(self, db):
        expected = {
            Application.MYSQL: (14, 9),
            Application.APACHE: (13, 4),
            Application.MOZILLA: (41, 16),
            Application.OPENOFFICE: (6, 2),
        }
        for app, (nd, dl) in expected.items():
            sub = db.by_application(app)
            assert len(sub.non_deadlock()) == nd, app
            assert len(sub.deadlock()) == dl, app

    def test_ids_unique(self, db):
        ids = db.ids()
        assert len(set(ids)) == len(ids) == 105

    def test_validates(self, db):
        assert validate_database(db) == []

    def test_get_and_contains(self, db):
        assert "mysql-nd-binlog-rotate" in db
        record = db.get("mysql-nd-binlog-rotate")
        assert record.application is Application.MYSQL
        with pytest.raises(KeyError):
            db.get("nope")


class TestPatternAggregates:
    def test_atomicity_count_is_51(self, db):
        assert len(db.non_deadlock().with_pattern(BugPattern.ATOMICITY)) == 51

    def test_order_count_is_24(self, db):
        assert len(db.non_deadlock().with_pattern(BugPattern.ORDER)) == 24

    def test_union_is_72_of_74(self, db):
        nd = db.non_deadlock()
        union = nd.count(
            lambda r: r.has_pattern(BugPattern.ATOMICITY)
            or r.has_pattern(BugPattern.ORDER)
        )
        assert union == 72
        assert union / len(nd) == pytest.approx(72 / 74)

    def test_other_is_2(self, db):
        assert len(db.non_deadlock().with_pattern(BugPattern.OTHER)) == 2

    def test_pattern_counts_helper(self, db):
        counts = db.pattern_counts()
        assert counts[BugPattern.ATOMICITY] == 51
        assert counts[BugPattern.ORDER] == 24
        assert counts[BugPattern.OTHER] == 2


class TestManifestationAggregates:
    def test_two_threads_suffice_for_101(self, db):
        assert db.count(lambda r: r.few_threads) == 101
        assert db.fraction(lambda r: r.few_threads) == pytest.approx(101 / 105)

    def test_single_variable_is_49_of_74(self, db):
        nd = db.non_deadlock()
        assert nd.count(lambda r: r.involves_single_variable) == 49

    def test_deadlocks_with_at_most_two_resources(self, db):
        dl = db.deadlock()
        assert dl.count(lambda r: r.resources_involved <= 2) == 30
        assert dl.count(lambda r: r.resources_involved == 1) == 7

    def test_small_access_sets_are_97(self, db):
        assert db.count(lambda r: r.small_access_set) == 97

    def test_30_of_31_deadlocks_have_small_access_sets(self, db):
        # The single 3-resource deadlock needs 6 ordered acquisitions.
        assert db.deadlock().count(lambda r: r.small_access_set) == 30

    def test_histograms_sum_correctly(self, db):
        assert sum(db.thread_histogram().values()) == 105
        assert sum(db.variable_histogram().values()) == 74
        assert sum(db.resource_histogram().values()) == 31
        assert sum(db.access_histogram().values()) == 105


class TestFixAggregates:
    def test_non_deadlock_fix_distribution(self, db):
        fixes = db.non_deadlock().count_by_fix_strategy()
        assert fixes == {
            FixStrategy.COND_CHECK: 19,
            FixStrategy.CODE_SWITCH: 10,
            FixStrategy.DESIGN_CHANGE: 24,
            FixStrategy.ADD_LOCK: 20,
            FixStrategy.OTHER_NON_DEADLOCK: 1,
        }

    def test_73_percent_fixed_without_locks(self, db):
        nd = db.non_deadlock()
        lockless = nd.count(lambda r: r.fix_strategy is not FixStrategy.ADD_LOCK)
        assert lockless == 54
        assert lockless / len(nd) == pytest.approx(0.7297, abs=1e-3)

    def test_deadlock_fix_distribution(self, db):
        fixes = db.deadlock().count_by_fix_strategy()
        assert fixes == {
            FixStrategy.GIVE_UP_RESOURCE: 19,
            FixStrategy.ACQUIRE_ORDER: 6,
            FixStrategy.SPLIT_RESOURCE: 2,
            FixStrategy.OTHER_DEADLOCK: 4,
        }

    def test_give_up_dominates_deadlock_fixes(self, db):
        dl = db.deadlock()
        give_up = dl.count(
            lambda r: r.fix_strategy is FixStrategy.GIVE_UP_RESOURCE
        )
        assert give_up / len(dl) == pytest.approx(19 / 31)

    def test_17_first_patches_were_buggy(self, db):
        assert db.count(lambda r: r.first_fix_buggy) == 17


class TestQuerying:
    def test_filter_composes(self, db):
        mozilla_atomicity = (
            db.by_application(Application.MOZILLA)
            .non_deadlock()
            .with_pattern(BugPattern.ATOMICITY)
        )
        assert len(mozilla_atomicity) == 29  # 27 A-only + 2 both

    def test_with_kernel_links(self, db):
        linked = db.with_kernel()
        assert len(linked) > 80  # most records carry a kernel class link
        assert all(r.kernel is not None for r in linked)

    def test_filter_returns_new_database(self, db):
        sub = db.non_deadlock()
        assert len(db) == 105
        assert len(sub) == 74

    def test_empty_filter_fraction_is_zero(self, db):
        empty = db.filter(lambda r: False)
        assert empty.fraction(lambda r: True) == 0.0

    def test_count_by_impact_covers_all(self, db):
        impacts = db.count_by_impact()
        assert sum(impacts.values()) == 105

    def test_duplicate_ids_rejected(self, db):
        record = db.get("mysql-nd-binlog-rotate")
        from repro.errors import BugDatabaseError

        with pytest.raises(BugDatabaseError, match="duplicate"):
            BugDatabase([record, record])
