"""JSON import/export tests for the bug database."""

import json

import pytest

from repro.bugdb import BugDatabase
from repro.bugdb.io import (
    database_from_json,
    database_to_json,
    record_from_dict,
    record_to_dict,
)
from repro.errors import BugDatabaseError


@pytest.fixture(scope="module")
def db():
    return BugDatabase.load()


class TestRoundTrip:
    def test_full_database_round_trips(self, db):
        restored = database_from_json(database_to_json(db))
        assert len(restored) == 105
        assert restored.ids() == db.ids()
        for original in db:
            assert restored.get(original.bug_id) == original

    def test_aggregates_survive_round_trip(self, db):
        from repro.study import check_all

        restored = database_from_json(database_to_json(db))
        assert all(result.passed for result in check_all(restored))

    def test_record_dict_is_json_native(self, db):
        payload = record_to_dict(db.get("mysql-nd-binlog-rotate"))
        assert json.loads(json.dumps(payload)) == payload
        assert payload["application"] == "MySQL"
        assert payload["patterns"] == ["atomicity-violation"]

    def test_record_round_trip_preserves_equality(self, db):
        for record in db:
            assert record_from_dict(record_to_dict(record)) == record


class TestValidationOnImport:
    def test_rejects_non_json(self):
        with pytest.raises(BugDatabaseError, match="not valid JSON"):
            database_from_json("{oops")

    def test_rejects_foreign_document(self):
        with pytest.raises(BugDatabaseError, match="not a repro-bugdb"):
            database_from_json('{"format": "something-else"}')

    def test_rejects_unknown_version(self):
        with pytest.raises(BugDatabaseError, match="version"):
            database_from_json('{"format": "repro-bugdb", "version": 99}')

    def test_rejects_schema_invalid_record(self, db):
        payload = record_to_dict(db.get("mysql-nd-binlog-rotate"))
        payload["threads_involved"] = 0  # schema violation
        document = json.dumps(
            {"format": "repro-bugdb", "version": 1, "records": [payload]}
        )
        with pytest.raises(BugDatabaseError, match="threads_involved"):
            database_from_json(document)

    def test_rejects_unknown_enum_value(self, db):
        payload = record_to_dict(db.get("mysql-nd-binlog-rotate"))
        payload["fix_strategy"] = "pray"
        document = json.dumps(
            {"format": "repro-bugdb", "version": 1, "records": [payload]}
        )
        with pytest.raises(BugDatabaseError, match="malformed record"):
            database_from_json(document)

    def test_rejects_duplicate_ids(self, db):
        payload = record_to_dict(db.get("mysql-nd-binlog-rotate"))
        document = json.dumps(
            {"format": "repro-bugdb", "version": 1, "records": [payload, payload]}
        )
        with pytest.raises(BugDatabaseError, match="duplicate"):
            database_from_json(document)
