"""API quality guards: docstrings everywhere, exports resolve, events render.

These tests keep the documentation deliverable honest: every public
module, class, and function in the package must carry a docstring, and
every ``__all__`` export must actually exist.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.detectors",
    "repro.bugdb",
    "repro.kernels",
    "repro.apps",
    "repro.fixes",
    "repro.manifest",
    "repro.study",
]


def walk_modules():
    seen = []
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        seen.append(package)
        for info in pkgutil.iter_modules(package.__path__ if hasattr(package, "__path__") else []):
            if info.name.startswith("_") and info.name != "__main__":
                continue
            try:
                seen.append(importlib.import_module(f"{package_name}.{info.name}"))
            except ImportError:
                pass
    return {m.__name__: m for m in seen}.values()


MODULES = list(walk_modules())


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_all_exports_resolve(module):
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module.__name__}.{name} missing"


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    if not module.__name__.startswith("repro"):
        pytest.skip("external")
    undocumented = []
    for name in getattr(module, "__all__", []):
        obj = getattr(module, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if obj.__module__.startswith("repro") and not (obj.__doc__ or "").strip():
                undocumented.append(f"{module.__name__}.{name}")
    assert not undocumented, undocumented


def test_public_methods_documented():
    """Every public method of every exported class carries a docstring."""
    undocumented = []
    for module in MODULES:
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if not inspect.isclass(obj) or not obj.__module__.startswith("repro"):
                continue
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if not inspect.isfunction(attr):
                    continue
                # getattr + getdoc honours docstring inheritance from the
                # ABC (e.g. Detector.analyse overrides).
                doc = inspect.getdoc(getattr(obj, attr_name))
                if not (doc or "").strip():
                    undocumented.append(f"{obj.__module__}.{obj.__name__}.{attr_name}")
    assert not sorted(set(undocumented)), sorted(set(undocumented))


def test_every_event_class_renders():
    """describe() is non-empty on a default instance of every event type."""
    from repro.sim import events as ev

    for name in ev.__all__:
        klass = getattr(ev, name)
        if not isinstance(klass, type) or klass is ev.Event:
            continue
        instance = klass(seq=0, thread="T")
        assert instance.describe().strip(), name


def test_every_op_class_renders():
    """describe() works on representative instances of every operation."""
    from repro.sim import ops

    samples = [
        ops.Read("x"), ops.Write("x", 1), ops.AtomicUpdate("x", lambda v: v),
        ops.Acquire("L"), ops.Release("L"), ops.TryAcquire("L"),
        ops.AcquireRead("RW"), ops.AcquireWrite("RW"),
        ops.ReleaseRead("RW"), ops.ReleaseWrite("RW"),
        ops.Wait("cv"), ops.Notify("cv"), ops.NotifyAll("cv"),
        ops.SemAcquire("s"), ops.SemRelease("s"), ops.BarrierWait("b"),
        ops.Spawn("T2"), ops.Join("T2"), ops.Yield(), ops.Sleep(2),
    ]
    for op in samples:
        assert op.describe().strip()


def test_version_exposed():
    assert repro.__version__ == "1.0.0"
