"""Happens-before race detector tests against known programs."""

from repro.detectors import FindingKind, HappensBeforeDetector
from repro.sim import (
    Acquire,
    AtomicUpdate,
    CooperativeScheduler,
    FixedScheduler,
    Program,
    RandomScheduler,
    Read,
    Release,
    RoundRobinScheduler,
    Write,
    run_program,
)
from tests import helpers


def detect(program, scheduler=None):
    result = run_program(program, scheduler or RoundRobinScheduler())
    return HappensBeforeDetector().analyse(result.trace)


class TestRaceDetection:
    def test_unlocked_counter_races(self):
        report = detect(helpers.racy_counter())
        races = report.of_kind(FindingKind.DATA_RACE)
        assert races
        assert all(f.variables == ("counter",) for f in races)

    def test_race_found_even_in_correct_order_schedule(self):
        # HB detects unordered accesses regardless of observed outcome.
        report = detect(helpers.racy_counter(), CooperativeScheduler())
        assert not report.clean

    def test_locked_counter_is_race_free(self):
        assert detect(helpers.locked_counter()).clean

    def test_locked_counter_race_free_all_schedules(self):
        from repro.sim import enumerate_outcomes

        detector = HappensBeforeDetector()
        prog = helpers.locked_counter()
        for seed in range(10):
            trace = run_program(prog, RandomScheduler(seed=seed)).trace
            assert detector.analyse(trace).clean

    def test_read_read_is_not_a_race(self):
        def reader():
            yield Read("x")

        prog = Program(
            "rr", threads={"A": reader, "B": reader}, initial={"x": 0}
        )
        assert detect(prog).clean

    def test_write_write_is_a_race(self):
        def writer():
            yield Write("x", 1)

        prog = Program(
            "ww", threads={"A": writer, "B": writer}, initial={"x": 0}
        )
        report = detect(prog)
        assert len(report.of_kind(FindingKind.DATA_RACE)) == 1

    def test_atomic_pair_is_not_a_race(self):
        def bumper():
            yield AtomicUpdate("x", lambda v: v + 1)

        prog = Program(
            "atomic", threads={"A": bumper, "B": bumper}, initial={"x": 0}
        )
        assert detect(prog).clean

    def test_atomic_vs_plain_is_a_race(self):
        def bumper():
            yield AtomicUpdate("x", lambda v: v + 1)

        def plain():
            yield Write("x", 9)

        prog = Program(
            "mixed", threads={"A": bumper, "B": plain}, initial={"x": 0}
        )
        assert not detect(prog).clean


class TestSynchronisationEdges:
    def test_semaphore_handoff_orders_accesses(self):
        assert detect(helpers.ordered_handoff()).clean

    def test_spawn_join_orders_accesses(self):
        assert detect(helpers.spawn_join_chain(), CooperativeScheduler()).clean

    def test_barrier_orders_pre_and_post(self):
        def before():
            yield Write("x", 1)
            yield helpers.BarrierWait("bar")

        def after():
            yield helpers.BarrierWait("bar")
            yield Read("x")

        prog = Program(
            "barrier-hb",
            threads={"P": before, "C": after},
            initial={"x": 0},
            barriers={"bar": 2},
        )
        assert detect(prog).clean

    def test_condvar_notify_orders_accesses(self):
        def producer():
            yield Acquire("L")
            yield Write("data", 7)
            yield helpers.Notify("cv")
            yield Release("L")

        def consumer():
            yield Acquire("L")
            yield helpers.Wait("cv")
            yield Read("data")
            yield Release("L")

        prog = Program(
            "cv-hb",
            threads={"C": consumer, "P": producer},
            initial={"data": 0},
            locks=["L"],
            conditions={"cv": "L"},
        )
        # Schedule so the consumer parks before the producer notifies.
        schedule = ["C", "C", "P", "P", "P", "P", "C", "C", "C"]
        result = run_program(prog, FixedScheduler(schedule, strict=False))
        assert HappensBeforeDetector().analyse(result.trace).clean

    def test_rwlock_protected_accesses_are_ordered(self):
        report = detect(helpers.rwlock_readers_writer())
        data_races = [
            f
            for f in report.of_kind(FindingKind.DATA_RACE)
            if "data" in f.variables
        ]
        assert data_races == []

    def test_unrelated_variable_not_implicated(self):
        report = detect(helpers.racy_counter())
        assert report.variables() == ["counter"]


class TestReportShape:
    def test_findings_carry_event_seqs(self):
        report = detect(helpers.racy_counter())
        finding = report.findings[0]
        assert len(finding.events) == 2
        assert finding.events[0] < finding.events[1]

    def test_duplicate_findings_are_merged(self):
        report = detect(helpers.racy_counter())
        assert len(set(report.findings)) == len(report.findings)

    def test_analyse_many_merges(self):
        detector = HappensBeforeDetector()
        prog = helpers.racy_counter()
        traces = [
            run_program(prog, RandomScheduler(seed=s)).trace for s in range(3)
        ]
        merged = detector.analyse_many(traces)
        assert not merged.clean
