"""Vector clock unit + property tests (lattice laws, ordering)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.detectors import VectorClock

THREADS = ["A", "B", "C"]

clocks = st.builds(
    VectorClock,
    st.dictionaries(st.sampled_from(THREADS), st.integers(min_value=0, max_value=8)),
)


class TestBasics:
    def test_empty_clock_components_are_zero(self):
        vc = VectorClock()
        assert vc.get("anything") == 0

    def test_tick_increments_only_own_component(self):
        vc = VectorClock().tick("A").tick("A").tick("B")
        assert vc.get("A") == 2
        assert vc.get("B") == 1
        assert vc.get("C") == 0

    def test_tick_returns_new_instance(self):
        vc = VectorClock()
        ticked = vc.tick("A")
        assert vc.get("A") == 0
        assert ticked.get("A") == 1

    def test_join_is_pointwise_max(self):
        a = VectorClock({"A": 3, "B": 1})
        b = VectorClock({"B": 2, "C": 5})
        joined = a.join(b)
        assert (joined.get("A"), joined.get("B"), joined.get("C")) == (3, 2, 5)

    def test_zero_components_dropped_for_equality(self):
        assert VectorClock({"A": 0, "B": 1}) == VectorClock({"B": 1})
        assert hash(VectorClock({"A": 0})) == hash(VectorClock())

    def test_ordering(self):
        lo = VectorClock({"A": 1})
        hi = VectorClock({"A": 2, "B": 1})
        assert lo < hi
        assert lo.happens_before(hi)
        assert not hi.happens_before(lo)
        assert not lo.concurrent_with(hi)

    def test_concurrency(self):
        a = VectorClock({"A": 1})
        b = VectorClock({"B": 1})
        assert a.concurrent_with(b)
        assert b.concurrent_with(a)

    def test_repr_is_sorted(self):
        assert repr(VectorClock({"B": 2, "A": 1})) == "VC(A:1, B:2)"


class TestLatticeLaws:
    @given(clocks, clocks)
    def test_join_commutes(self, a, b):
        assert a.join(b) == b.join(a)

    @given(clocks, clocks, clocks)
    def test_join_associates(self, a, b, c):
        assert a.join(b).join(c) == a.join(b.join(c))

    @given(clocks)
    def test_join_idempotent(self, a):
        assert a.join(a) == a

    @given(clocks, clocks)
    def test_join_is_upper_bound(self, a, b):
        joined = a.join(b)
        assert a <= joined
        assert b <= joined

    @given(clocks, clocks)
    def test_order_trichotomy_is_exclusive(self, a, b):
        relations = [a < b, b < a, a == b, a.concurrent_with(b)]
        assert sum(bool(r) for r in relations) == 1

    @given(clocks, st.sampled_from(THREADS))
    def test_tick_strictly_increases(self, a, thread):
        assert a < a.tick(thread)

    @given(clocks, clocks, clocks)
    def test_le_transitive(self, a, b, c):
        if a <= b and b <= c:
            assert a <= c
