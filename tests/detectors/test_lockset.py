"""Eraser lockset detector tests."""

from repro.detectors import FindingKind, LocksetDetector
from repro.sim import (
    Acquire,
    CooperativeScheduler,
    Program,
    Read,
    Release,
    RoundRobinScheduler,
    TryAcquire,
    Write,
    run_program,
)
from tests import helpers


def detect(program, scheduler=None):
    result = run_program(program, scheduler or RoundRobinScheduler())
    return LocksetDetector().analyse(result.trace)


class TestDiscipline:
    def test_unlocked_shared_writes_flagged(self):
        report = detect(helpers.racy_counter())
        assert len(report.of_kind(FindingKind.DATA_RACE)) == 1
        assert report.findings[0].variables == ("counter",)

    def test_consistent_locking_is_clean(self):
        assert detect(helpers.locked_counter()).clean

    def test_flagged_even_when_schedule_is_benign(self):
        # This is lockset's strength over HB: the cooperative schedule never
        # interleaves the accesses, but the discipline violation is visible.
        report = detect(helpers.racy_counter(), CooperativeScheduler())
        assert not report.clean

    def test_inconsistent_lock_choice_flagged(self):
        def with_a():
            yield Acquire("A")
            value = yield Read("x")
            yield Write("x", value + 1)
            yield Release("A")

        def with_b():
            yield Acquire("B")
            value = yield Read("x")
            yield Write("x", value + 1)
            yield Release("B")

        prog = Program(
            "two-locks",
            threads={"T1": with_a, "T2": with_b},
            initial={"x": 0},
            locks=["A", "B"],
        )
        assert not detect(prog).clean

    def test_common_lock_among_many_is_enough(self):
        def both_locks():
            yield Acquire("A")
            yield Acquire("B")
            value = yield Read("x")
            yield Write("x", value + 1)
            yield Release("B")
            yield Release("A")

        def only_b():
            yield Acquire("B")
            value = yield Read("x")
            yield Write("x", value + 1)
            yield Release("B")

        prog = Program(
            "subset",
            threads={"T1": both_locks, "T2": only_b},
            initial={"x": 0},
            locks=["A", "B"],
        )
        assert detect(prog).clean


class TestStateMachine:
    def test_single_thread_never_flagged(self):
        def alone():
            value = yield Read("x")
            yield Write("x", value + 1)
            yield Write("x", 5)

        prog = Program("solo", threads={"T": alone}, initial={"x": 0})
        assert detect(prog).clean

    def test_exclusive_init_then_locked_sharing_is_clean(self):
        """Unlocked init by one thread, locked use by others: no report."""

        def initialiser():
            yield Write("x", 1)  # unlocked, but still EXCLUSIVE
            yield Release  # placeholder never reached

        def initialiser_body():
            yield Write("x", 1)

        def user():
            yield Acquire("L")
            value = yield Read("x")
            yield Write("x", value + 1)
            yield Release("L")

        prog = Program(
            "init-then-share",
            threads={"Init": initialiser_body, "U1": user, "U2": user},
            initial={"x": 0},
            locks=["L"],
        )
        # Run init fully first (cooperative order).
        report = detect(prog, CooperativeScheduler())
        assert report.clean

    def test_read_only_sharing_is_clean(self):
        def writer_then_done():
            yield Write("x", 10)

        def reader():
            yield Read("x")

        prog = Program(
            "ro-share",
            threads={"W": writer_then_done, "R1": reader, "R2": reader},
            initial={"x": 0},
        )
        from repro.sim import FixedScheduler

        # Writer first, then readers: SHARED state, never reported.
        result = run_program(prog, FixedScheduler(["W", "R1", "R2"], strict=False))
        assert LocksetDetector().analyse(result.trace).clean

    def test_write_after_shared_flags(self):
        def writer():
            yield Write("x", 10)

        def reader():
            yield Read("x")

        def late_writer():
            yield Write("x", 20)

        prog = Program(
            "late-write",
            threads={"W": writer, "R": reader, "L": late_writer},
            initial={"x": 0},
        )
        report = detect(prog, CooperativeScheduler())
        assert not report.clean

    def test_one_report_per_variable(self):
        def body():
            for _ in range(3):
                value = yield Read("x")
                yield Write("x", value + 1)

        prog = Program("multi", threads={"A": body, "B": body}, initial={"x": 0})
        report = detect(prog)
        assert len(report.findings) == 1


class TestLockTracking:
    def test_try_acquire_counts_when_successful(self):
        def try_locker():
            ok = yield TryAcquire("L")
            if ok:
                value = yield Read("x")
                yield Write("x", value + 1)
                yield Release("L")

        prog = Program(
            "try-lock",
            threads={"A": try_locker, "B": try_locker},
            initial={"x": 0},
            locks=["L"],
        )
        assert detect(prog, CooperativeScheduler()).clean

    def test_wait_releases_lock_for_lockset_purposes(self):
        from repro.sim import FixedScheduler, Notify, Wait

        def waiter():
            yield Acquire("L")
            yield Wait("cv")
            value = yield Read("x")
            yield Write("x", value + 1)
            yield Release("L")

        def signaller():
            yield Acquire("L")
            value = yield Read("x")
            yield Write("x", value + 1)
            yield Notify("cv")
            yield Release("L")

        prog = Program(
            "wait-lockset",
            threads={"W": waiter, "S": signaller},
            initial={"x": 0},
            locks=["L"],
            conditions={"cv": "L"},
        )
        schedule = ["W", "W", "S", "S", "S", "S", "S", "W", "W", "W", "W"]
        result = run_program(prog, FixedScheduler(schedule, strict=False))
        assert LocksetDetector().analyse(result.trace).clean
