"""Detector suite composition tests."""

from repro.detectors import (
    DetectorSuite,
    FindingKind,
    HappensBeforeDetector,
    default_detectors,
)
from repro.sim import FixedScheduler, RandomScheduler, run_program
from tests import helpers


class TestSuite:
    def test_default_battery_has_five_detectors(self):
        suite = DetectorSuite()
        assert len(suite.detectors) == 5
        names = {d.name for d in suite.detectors}
        assert names == {
            "happens-before",
            "lockset",
            "atomicity",
            "order-violation",
            "deadlock",
        }

    def test_racy_counter_flagged_by_race_detectors(self):
        prog = helpers.racy_counter()
        trace = run_program(prog, FixedScheduler(["T1", "T2", "T2", "T1"])).trace
        result = DetectorSuite.for_program(prog).analyse(trace)
        flagged = result.flagged_by()
        assert "happens-before" in flagged
        assert "lockset" in flagged
        assert "atomicity" in flagged
        assert "deadlock" not in flagged

    def test_deadlock_flagged_only_by_deadlock_detector(self):
        from repro.sim import find_schedule

        prog = helpers.abba_deadlock()
        failing = find_schedule(prog)
        result = DetectorSuite.for_program(prog).analyse(failing.trace)
        assert "deadlock" in result.flagged_by()
        assert "happens-before" not in result.flagged_by()

    def test_clean_program_is_clean_everywhere(self):
        prog = helpers.locked_counter()
        trace = run_program(prog, RandomScheduler(seed=4)).trace
        result = DetectorSuite.for_program(prog).analyse(trace)
        assert result.clean
        assert result.flagged_by() == []

    def test_kinds_found_aggregates(self):
        prog = helpers.racy_counter()
        trace = run_program(prog, FixedScheduler(["T1", "T2", "T2", "T1"])).trace
        result = DetectorSuite.for_program(prog).analyse(trace)
        kinds = result.kinds_found()
        assert FindingKind.DATA_RACE in kinds
        assert FindingKind.ATOMICITY_VIOLATION in kinds

    def test_analyse_many_merges_across_traces(self):
        prog = helpers.racy_counter()
        traces = [
            run_program(prog, RandomScheduler(seed=s)).trace for s in range(5)
        ]
        result = DetectorSuite.for_program(prog).analyse_many(traces)
        assert "lockset" in result.flagged_by()

    def test_format_renders_every_detector(self):
        prog = helpers.locked_counter()
        trace = run_program(prog, RandomScheduler(seed=1)).trace
        text = DetectorSuite.for_program(prog).analyse(trace).format()
        for name in ("happens-before", "lockset", "atomicity"):
            assert name in text

    def test_default_detectors_without_program(self):
        detectors = default_detectors()
        assert len(detectors) == 5

    def test_report_accessor(self):
        prog = helpers.racy_counter()
        trace = run_program(prog, FixedScheduler(["T1", "T2", "T2", "T1"])).trace
        result = DetectorSuite.for_program(prog).analyse(trace)
        assert result.report("happens-before").findings
