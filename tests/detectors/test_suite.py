"""Detector suite composition tests."""

from repro.detectors import (
    DetectorSuite,
    FindingKind,
    HappensBeforeDetector,
    default_detectors,
)
from repro.sim import FixedScheduler, RandomScheduler, run_program
from tests import helpers


class TestSuite:
    def test_default_battery_has_five_detectors(self):
        suite = DetectorSuite()
        assert len(suite.detectors) == 5
        names = {d.name for d in suite.detectors}
        assert names == {
            "happens-before",
            "lockset",
            "atomicity",
            "order-violation",
            "deadlock",
        }

    def test_racy_counter_flagged_by_race_detectors(self):
        prog = helpers.racy_counter()
        trace = run_program(prog, FixedScheduler(["T1", "T2", "T2", "T1"])).trace
        result = DetectorSuite.for_program(prog).analyse(trace)
        flagged = result.flagged_by()
        assert "happens-before" in flagged
        assert "lockset" in flagged
        assert "atomicity" in flagged
        assert "deadlock" not in flagged

    def test_deadlock_flagged_only_by_deadlock_detector(self):
        from repro.sim import find_schedule

        prog = helpers.abba_deadlock()
        failing = find_schedule(prog)
        result = DetectorSuite.for_program(prog).analyse(failing.trace)
        assert "deadlock" in result.flagged_by()
        assert "happens-before" not in result.flagged_by()

    def test_clean_program_is_clean_everywhere(self):
        prog = helpers.locked_counter()
        trace = run_program(prog, RandomScheduler(seed=4)).trace
        result = DetectorSuite.for_program(prog).analyse(trace)
        assert result.clean
        assert result.flagged_by() == []

    def test_kinds_found_aggregates(self):
        prog = helpers.racy_counter()
        trace = run_program(prog, FixedScheduler(["T1", "T2", "T2", "T1"])).trace
        result = DetectorSuite.for_program(prog).analyse(trace)
        kinds = result.kinds_found()
        assert FindingKind.DATA_RACE in kinds
        assert FindingKind.ATOMICITY_VIOLATION in kinds

    def test_analyse_many_merges_across_traces(self):
        prog = helpers.racy_counter()
        traces = [
            run_program(prog, RandomScheduler(seed=s)).trace for s in range(5)
        ]
        result = DetectorSuite.for_program(prog).analyse_many(traces)
        assert "lockset" in result.flagged_by()

    def test_format_renders_every_detector(self):
        prog = helpers.locked_counter()
        trace = run_program(prog, RandomScheduler(seed=1)).trace
        text = DetectorSuite.for_program(prog).analyse(trace).format()
        for name in ("happens-before", "lockset", "atomicity"):
            assert name in text

    def test_default_detectors_without_program(self):
        detectors = default_detectors()
        assert len(detectors) == 5

    def test_report_accessor(self):
        prog = helpers.racy_counter()
        trace = run_program(prog, FixedScheduler(["T1", "T2", "T2", "T1"])).trace
        result = DetectorSuite.for_program(prog).analyse(trace)
        assert result.report("happens-before").findings


class TestAnalyseStatic:
    """The static-vs-dynamic cross-check (see also tests/static/)."""

    def analyse(self, program, predicate=None):
        suite = DetectorSuite.for_program(program, streaming=True)
        return suite.analyse_static(program, predicate=predicate)

    def test_racy_counter_full_agreement(self):
        comparison = self.analyse(
            helpers.racy_counter(),
            predicate=lambda run: run.memory["counter"] == 1,
        )
        assert comparison.sound
        assert comparison.precision == 1.0
        assert comparison.recall == 1.0
        assert comparison.confirmed and not comparison.missed
        kinds = {f.kind for f in comparison.recalled}
        assert FindingKind.DATA_RACE in kinds
        assert FindingKind.ATOMICITY_VIOLATION in kinds

    def test_clean_program_trivially_sound(self):
        comparison = self.analyse(helpers.locked_counter())
        assert comparison.sound
        assert comparison.precision == 1.0 and comparison.recall == 1.0
        assert not comparison.confirmed
        assert not comparison.unconfirmed_candidates

    def test_semaphore_ordering_counts_as_imprecision(self):
        # Dynamically clean (semaphores order the accesses), statically
        # flagged: the candidates land in unconfirmed_candidates and drag
        # precision below 1 while recall stays perfect.
        comparison = self.analyse(helpers.ordered_handoff())
        assert comparison.sound
        assert comparison.recall == 1.0
        assert comparison.unconfirmed_candidates
        assert comparison.precision < 1.0

    def test_deadlock_matched_by_resource_set(self):
        from repro.sim import RunStatus

        comparison = self.analyse(
            helpers.abba_deadlock(),
            predicate=lambda run: run.status is RunStatus.DEADLOCK,
        )
        assert comparison.sound
        deadlocks = [
            f for f in comparison.recalled
            if f.kind in (FindingKind.DEADLOCK, FindingKind.POTENTIAL_DEADLOCK)
        ]
        assert deadlocks
        for finding in deadlocks:
            assert set(finding.resources) <= {"A", "B"}

    def test_findings_deduplicated_across_detectors(self):
        # happens-before and lockset both report the same race; the
        # comparison must count one confirmed problem, not two.
        comparison = self.analyse(
            helpers.racy_counter(),
            predicate=lambda run: run.memory["counter"] == 1,
        )
        races = [
            f for f in comparison.confirmed if f.kind is FindingKind.DATA_RACE
        ]
        assert len(races) == 1

    def test_format_and_json_round_trip(self):
        import json

        comparison = self.analyse(
            helpers.racy_counter(),
            predicate=lambda run: run.memory["counter"] == 1,
        )
        text = comparison.format()
        assert "precision" in text and "recall" in text
        decoded = json.loads(json.dumps(comparison.to_json()))
        assert decoded["sound"] is True
        assert decoded["static"]["program"] == "racy-counter"

    def test_runlog_record_emitted(self, tmp_path):
        import json

        from repro.obs import runlog as obs_runlog

        path = tmp_path / "runlog.jsonl"
        obs_runlog.set_runlog(str(path))
        try:
            self.analyse(
                helpers.racy_counter(),
                predicate=lambda run: run.memory["counter"] == 1,
            )
        finally:
            obs_runlog.clear_runlog()
        records = [json.loads(line) for line in path.read_text().splitlines()]
        events = [r for r in records if r["event"] == "suite.analyse_static"]
        assert events
        assert events[0]["recall"] == 1.0
        assert events[0]["sound"] is True
