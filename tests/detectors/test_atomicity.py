"""AVIO-style atomicity detector tests: the 8-case table and kernels."""

import pytest

from repro.detectors import (
    UNSERIALIZABLE_CASES,
    AtomicityDetector,
    FindingKind,
    classify_interleaving,
)
from repro.sim import (
    Acquire,
    FixedScheduler,
    Program,
    Read,
    Release,
    Write,
    run_program,
)
from tests import helpers


def detect_with_schedule(program, schedule):
    result = run_program(program, FixedScheduler(schedule, strict=False))
    return AtomicityDetector().analyse(result.trace)


def two_thread_program(local_ops, remote_op):
    """Local thread runs two ops on x; remote runs one op on x."""

    def local():
        for op in local_ops:
            if op == "R":
                yield Read("x")
            else:
                yield Write("x", 1)

    def remote():
        if remote_op == "R":
            yield Read("x")
        else:
            yield Write("x", 2)

    return Program(
        "case", threads={"Local": local, "Remote": remote}, initial={"x": 0}
    )


ALL_CASES = [
    (p, c, r)
    for p in "RW"
    for c in "RW"
    for r in "RW"
]


class TestCaseTable:
    def test_exactly_four_cases_are_unserializable(self):
        assert len(UNSERIALIZABLE_CASES) == 4

    def test_classify_maps_booleans_to_letters(self):
        assert classify_interleaving(True, False, True) == ("W", "R", "W")
        assert classify_interleaving(False, False, False) == ("R", "R", "R")

    @pytest.mark.parametrize("p,c,r", ALL_CASES)
    def test_each_case_reported_iff_unserializable(self, p, c, r):
        prog = two_thread_program([p, c], r)
        # Interleave remote exactly between the two local accesses.
        report = detect_with_schedule(prog, ["Local", "Remote", "Local"])
        violations = report.of_kind(FindingKind.ATOMICITY_VIOLATION)
        if (p, c, r) in UNSERIALIZABLE_CASES:
            assert len(violations) == 1, f"case {p}{c}{r} should be flagged"
            assert f"{p}{c}{r}" in violations[0].description
        else:
            assert violations == [], f"case {p}{c}{r} is serializable"

    @pytest.mark.parametrize("p,c,r", sorted(UNSERIALIZABLE_CASES))
    def test_no_report_without_interleaving(self, p, c, r):
        prog = two_thread_program([p, c], r)
        report = detect_with_schedule(prog, ["Local", "Local", "Remote"])
        assert report.of_kind(FindingKind.ATOMICITY_VIOLATION) == []


class TestOnPrograms:
    def test_lost_update_interleaving_flagged(self):
        prog = helpers.racy_counter()
        # T2's read+write both between T1's read and write: RWW for T1... the
        # remote write lands inside T1's read->write pair.
        report = detect_with_schedule(prog, ["T1", "T2", "T2", "T1"])
        violations = report.of_kind(FindingKind.ATOMICITY_VIOLATION)
        assert violations
        assert any("RWW" in f.description for f in violations)

    def test_serial_execution_is_clean(self):
        report = detect_with_schedule(
            helpers.racy_counter(), ["T1", "T1", "T2", "T2"]
        )
        assert report.clean

    def test_lock_protected_section_cannot_be_flagged(self):
        from repro.sim import enumerate_outcomes

        prog = helpers.locked_counter()
        detector = AtomicityDetector()
        result = enumerate_outcomes(prog, require_complete=True)
        # No explorable schedule interleaves inside the critical section.
        from repro.sim import Explorer

        explorer = Explorer(prog)
        exploration = explorer.explore(
            predicate=lambda run: not detector.analyse(run.trace).clean
        )
        assert not exploration.found

    def test_atomicity_violation_without_data_race(self):
        """Lock-protected but non-atomic check/act: AVIO sees it, HB cannot."""
        from repro.detectors import HappensBeforeDetector

        def check_then_act():
            yield Acquire("L")
            value = yield Read("x")
            yield Release("L")
            yield Acquire("L")
            yield Write("x", value + 1)
            yield Release("L")

        prog = Program(
            "race-free-nonatomic",
            threads={"T1": check_then_act, "T2": check_then_act},
            initial={"x": 0},
            locks=["L"],
        )
        schedule = [
            "T1", "T1", "T1",      # T1: acquire, read, release
            "T2", "T2", "T2",      # T2: acquire, read, release
            "T2", "T2", "T2",      # T2: acquire, write, release
            "T1", "T1", "T1",      # T1: acquire, write (stale), release
        ]
        result = run_program(prog, FixedScheduler(schedule, strict=False))
        assert result.memory["x"] == 1  # lost update happened
        atomicity = AtomicityDetector().analyse(result.trace)
        hb = HappensBeforeDetector().analyse(result.trace)
        assert not atomicity.clean, "AVIO must flag the unserializable RWW"
        assert hb.clean, "every access is lock-ordered: no data race exists"

    def test_findings_record_three_witness_events(self):
        report = detect_with_schedule(
            helpers.racy_counter(), ["T1", "T2", "T2", "T1"]
        )
        finding = report.of_kind(FindingKind.ATOMICITY_VIOLATION)[0]
        assert len(finding.events) == 3
        p, r, c = finding.events
        assert p < r < c
