"""Differential harness: the streaming pipeline must equal batch analysis.

The streaming refactor is only sound if it is *invisible*: a
:class:`~repro.detectors.pipeline.DetectorPipeline` pass over a trace —
or riding along with the explorer (`analyse_online`) — must produce
byte-for-byte the same findings as the classic per-detector
``analyse(trace)`` batch path.  These tests prove that over a generated
program corpus and over the exploration option matrix
(memoize x preemption_bound x workers), and pin the efficiency claims:
one event dispatch per (event, pipeline) rather than per detector, and
prefix reuse across sibling schedules.
"""

import warnings

import pytest
from hypothesis import assume, given, settings

from repro.detectors import DetectorSuite, default_detectors
from repro.detectors.happensbefore import HappensBeforeDetector
from repro.detectors.pipeline import DetectorPipeline
from repro.obs import metrics as obs_metrics
from repro.obs import runlog as obs_runlog
from repro.sim import CooperativeScheduler, run_program
from repro.sim import explorer as explorer_mod
from repro.sim.explorer import Explorer, make_explorer
from tests import helpers
from tests.helpers import corpus_programs

BUDGET = 4000


def finding_key(finding):
    """A comparable identity for one finding (FindingKind is not orderable)."""
    return (
        finding.kind.value,
        finding.detector,
        finding.description,
        finding.threads,
        finding.variables,
        finding.resources,
        finding.events,
    )


def report_keys(result):
    """Detector name -> sorted finding keys, for whole-suite comparison."""
    return {
        name: sorted(finding_key(f) for f in report)
        for name, report in result.reports.items()
    }


def collect_traces(program, **options):
    """Every explored run's trace, plus the exploration result."""
    explorer = make_explorer(
        program, max_schedules=BUDGET, keep_matches=10**9, **options
    )
    result = explorer.explore(predicate=lambda run: True)
    return [run.trace for run in result.matching], result


FIXED_PROGRAMS = [
    helpers.racy_counter(),
    helpers.locked_counter(),
    helpers.abba_deadlock(),
    helpers.lost_wakeup(),
    helpers.null_deref_race(),
    helpers.ordered_handoff(),
]

OPTION_MATRIX = [
    {"memoize": False, "preemption_bound": None, "workers": None},
    {"memoize": True, "preemption_bound": None, "workers": None},
    {"memoize": False, "preemption_bound": 1, "workers": None},
    {"memoize": False, "preemption_bound": None, "workers": 2},
    {"memoize": True, "preemption_bound": 1, "workers": 2},
]


class TestStreamingEqualsBatch:
    """`DetectorSuite(streaming=True)` reports == the per-detector batch."""

    @settings(max_examples=20, deadline=None, derandomize=True)
    @given(corpus_programs())
    def test_corpus_traces(self, program):
        traces, result = collect_traces(program)
        assume(result.complete)
        batch = DetectorSuite.for_program(program).analyse_many(traces)
        streaming = DetectorSuite.for_program(
            program, streaming=True
        ).analyse_many(traces)
        assert report_keys(streaming) == report_keys(batch)

    @pytest.mark.parametrize(
        "options",
        OPTION_MATRIX,
        ids=lambda o: "-".join(f"{k}={v}" for k, v in o.items()),
    )
    @pytest.mark.parametrize(
        "program", FIXED_PROGRAMS, ids=lambda p: p.name
    )
    def test_option_matrix(self, program, options):
        # Whatever trace set the exploration options yield, streaming and
        # batch must read it the same way.
        traces, _ = collect_traces(program, **options)
        assert traces
        batch = DetectorSuite.for_program(program).analyse_many(traces)
        streaming = DetectorSuite.for_program(
            program, streaming=True
        ).analyse_many(traces)
        assert report_keys(streaming) == report_keys(batch)

    def test_single_trace_analyse(self):
        program = helpers.racy_counter()
        trace = run_program(program, CooperativeScheduler()).trace
        batch = DetectorSuite.for_program(program).analyse(trace)
        streaming = DetectorSuite.for_program(program, streaming=True).analyse(
            trace
        )
        assert report_keys(streaming) == report_keys(batch)


class TestOnlineEqualsBatch:
    """`analyse_online` == batch analysis of every explored trace."""

    @pytest.mark.parametrize(
        "bound,workers",
        [(None, None), (1, None), (None, 2)],
        ids=["serial", "bounded", "parallel"],
    )
    @pytest.mark.parametrize(
        "program", FIXED_PROGRAMS, ids=lambda p: p.name
    )
    def test_fixed_programs(self, program, bound, workers):
        traces, _ = collect_traces(
            program, preemption_bound=bound, workers=workers
        )
        batch = DetectorSuite.for_program(program).analyse_many(traces)
        online = DetectorSuite.for_program(program).analyse_online(
            program,
            max_schedules=BUDGET,
            preemption_bound=bound,
            workers=workers,
        )
        assert report_keys(online) == report_keys(batch)
        assert online.exploration is not None
        assert online.exploration.pipeline_stats is not None

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(corpus_programs())
    def test_corpus(self, program):
        traces, result = collect_traces(program)
        assume(result.complete)
        batch = DetectorSuite.for_program(program).analyse_many(traces)
        online = DetectorSuite.for_program(program).analyse_online(
            program, max_schedules=BUDGET
        )
        assert report_keys(online) == report_keys(batch)

    def test_sleep_set_reduction_finds_same_bugs(self):
        # The reduced explorer prunes equivalent interleavings, so the
        # online pipeline sees fewer traces — but never fewer *distinct*
        # findings on the canonical deadlock kernel.
        program = helpers.abba_deadlock()
        serial = DetectorSuite.for_program(program).analyse_online(
            program, max_schedules=BUDGET
        )
        bounded = DetectorSuite.for_program(program).analyse_online(
            program, max_schedules=BUDGET, preemption_bound=2
        )
        assert not serial.clean
        assert report_keys(bounded) == report_keys(serial)


class TestSingleDispatch:
    """One dispatch per (event, pipeline), regardless of detector count."""

    def _traces(self, program):
        traces, _ = collect_traces(program)
        return traces

    def test_dispatch_count_independent_of_detector_count(self):
        program = helpers.racy_counter()
        traces = self._traces(program)
        total_events = sum(len(t.events()) for t in traces)

        full = DetectorPipeline(default_detectors(program))
        solo = DetectorPipeline([HappensBeforeDetector()])
        for trace in traces:
            full.run_trace(trace)
            solo.run_trace(trace)

        assert len(full.detectors) == 5
        assert full.stats.events_dispatched == total_events
        assert solo.stats.events_dispatched == full.stats.events_dispatched

    def test_online_dispatch_plus_reuse_covers_every_event(self):
        program = helpers.racy_counter(threads=3)
        traces = self._traces(program)
        total_events = sum(len(t.events()) for t in traces)

        online = DetectorSuite.for_program(program).analyse_online(
            program, max_schedules=BUDGET
        )
        stats = online.exploration.pipeline_stats
        assert stats["events_dispatched"] + stats["events_reused"] == total_events
        # Sibling schedules share prefixes, so reuse must actually occur…
        assert stats["events_reused"] > 0
        assert 0 < stats["reuse_ratio"] < 1
        # …via the snapshot/restore machinery.
        assert stats["snapshots"] > 0
        assert stats["restores"] > 0
        assert stats["passes"] == online.exploration.schedules_run

    def test_metrics_registry_sees_pipeline_counters(self):
        program = helpers.racy_counter()
        registry = obs_metrics.enable()
        try:
            online = DetectorSuite.for_program(program).analyse_online(
                program, max_schedules=BUDGET
            )
        finally:
            obs_metrics.disable()
        stats = online.exploration.pipeline_stats
        assert (
            registry.counter("pipeline.events_dispatched", program=program.name)
            == stats["events_dispatched"]
        )
        assert (
            registry.counter("pipeline.events_reused", program=program.name)
            == stats["events_reused"]
        )
        assert (
            registry.counter("pipeline.passes", program=program.name)
            == stats["passes"]
        )


class TestRunlogRecord:
    """`analyse_online` emits one structured ``suite.analyse_online`` record."""

    def test_record_shape(self):
        program = helpers.abba_deadlock()
        records = []
        obs_runlog.set_runlog(records.append)
        try:
            result = DetectorSuite.for_program(program).analyse_online(
                program, max_schedules=BUDGET
            )
        finally:
            obs_runlog.clear_runlog()
        assert [r["event"] for r in records] == ["suite.analyse_online"]
        record = records[0]
        assert record["schema"] == obs_runlog.SCHEMA
        assert record["program"] == program.name
        assert record["args"]["online"] is True
        assert record["args"]["memoize"] is False
        assert record["pipeline"]["events_dispatched"] > 0
        assert record["findings"] == {
            name: len(report) for name, report in result.reports.items()
        }
        assert record["result"]["schedules_run"] == result.exploration.schedules_run


class TestPublicSurface:
    """Satellite guarantees: factory naming and trace immutability."""

    def test_make_explorer_is_public(self):
        assert "make_explorer" in explorer_mod.__all__
        assert isinstance(
            make_explorer(helpers.racy_counter(), max_schedules=10), Explorer
        )

    def test_legacy_underscore_alias_warns(self):
        with pytest.warns(DeprecationWarning, match="make_explorer"):
            explorer = explorer_mod._make_explorer(
                helpers.racy_counter(), max_schedules=10
            )
        assert isinstance(explorer, Explorer)

    def test_trace_events_returns_tuple(self):
        trace = run_program(
            helpers.racy_counter(), CooperativeScheduler()
        ).trace
        events = trace.events()
        assert isinstance(events, tuple)
        assert events == trace.events()
