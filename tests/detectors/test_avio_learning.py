"""Learning-AVIO tests: training whitelists benign non-atomicity."""

import pytest

from repro.detectors import AtomicityDetector, LearningAVIODetector
from repro.kernels import get_kernel
from repro.sim import (
    FixedScheduler,
    Program,
    RandomScheduler,
    Read,
    Write,
    run_program,
)
from tests import helpers


def benign_stats_counter():
    """A deliberately non-atomic statistics counter: losing updates is fine.

    The reporter reads the counter twice around a bump — unserializable
    RRW interleavings happen in perfectly acceptable runs.
    """

    def bumper():
        value = yield Read("stat", label="bump.read")
        yield Write("stat", value + 1, label="bump.write")

    def reporter():
        first = yield Read("stat", label="report.first")
        second = yield Read("stat", label="report.second")
        yield Write("report", (first, second))

    return Program(
        "benign-stats",
        threads={"Bumper": bumper, "Reporter": reporter},
        initial={"stat": 0, "report": None},
    )


class TestLearning:
    def test_untrained_behaves_like_plain_avio(self):
        prog = helpers.racy_counter()
        trace = run_program(prog, FixedScheduler(["T1", "T2", "T2", "T1"])).trace
        plain = AtomicityDetector().analyse(trace)
        learning = LearningAVIODetector().analyse(trace)
        assert len(learning) == len(plain) > 0

    def test_training_whitelists_benign_interleavings(self):
        prog = benign_stats_counter()
        detector = LearningAVIODetector()
        # Train on many passing runs: the RRW interleaving appears there.
        training = [
            run_program(prog, RandomScheduler(seed=s)).trace for s in range(30)
        ]
        invariants = detector.train(training)
        assert invariants > 0
        assert detector.trained_traces == 30
        # The same interleaving in a later run is no longer reported.
        probe = run_program(
            prog,
            FixedScheduler(
                ["Reporter", "Bumper", "Bumper", "Reporter", "Reporter"],
                strict=False,
            ),
        ).trace
        assert detector.analyse(probe).clean
        # ...while the untrained detector still flags it.
        assert not LearningAVIODetector().analyse(probe).clean

    def test_training_on_good_runs_keeps_flagging_the_real_bug(self):
        """Training on the kernel's *passing* schedules must not hide the bug."""
        kernel = get_kernel("atomicity_single_var")
        detector = LearningAVIODetector()
        passing = []
        for seed in range(40):
            run = run_program(kernel.buggy, RandomScheduler(seed=seed))
            if not kernel.failure(run):
                passing.append(run.trace)
        detector.train(passing)
        failing = kernel.find_manifestation()
        report = detector.analyse(failing.trace)
        assert not report.clean
        assert "novel" in report.findings[0].description

    def test_site_keys_generalise_across_runs(self):
        """Training on one schedule covers the same sites in another."""
        prog = benign_stats_counter()
        detector = LearningAVIODetector()
        schedule_a = ["Reporter", "Bumper", "Bumper", "Reporter", "Reporter"]
        detector.train(
            [run_program(prog, FixedScheduler(schedule_a, strict=False)).trace]
        )
        # A different global schedule with the same interleaved sites:
        schedule_b = ["Bumper", "Reporter", "Bumper", "Reporter", "Reporter"]
        probe = run_program(prog, FixedScheduler(schedule_b, strict=False)).trace
        report = detector.analyse(probe)
        flagged_cases = {f.description.split()[3] for f in report}
        # The trained RRW on report.first/second stays quiet; anything
        # flagged must be a different (site, case) pair.
        for finding in report:
            assert "report.first" not in finding.description or \
                   "report.second" not in finding.description

    def test_train_returns_running_total(self):
        prog = benign_stats_counter()
        detector = LearningAVIODetector()
        t1 = [run_program(prog, RandomScheduler(seed=1)).trace]
        t2 = [run_program(prog, RandomScheduler(seed=2)).trace]
        first = detector.train(t1)
        second = detector.train(t2)
        assert second >= first
