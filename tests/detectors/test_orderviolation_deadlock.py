"""Order-violation and deadlock detector tests."""

import networkx as nx

from repro.detectors import (
    DeadlockDetector,
    FindingKind,
    OrderViolationDetector,
    build_lock_order_graph,
)
from repro.sim import (
    Acquire,
    CooperativeScheduler,
    FixedScheduler,
    Program,
    Read,
    Release,
    RoundRobinScheduler,
    Write,
    find_schedule,
    run_program,
)
from tests import helpers


class TestUseBeforeInit:
    def detect(self, program, schedule):
        result = run_program(program, FixedScheduler(schedule, strict=False))
        return OrderViolationDetector.for_program(program).analyse(result.trace)

    def test_crash_after_uninitialised_read_flagged(self):
        # The reader crashes before Init ever writes: crash evidence.
        prog = helpers.null_deref_race()
        report = self.detect(prog, ["Reader", "Init"])
        violations = report.of_kind(FindingKind.ORDER_VIOLATION)
        assert violations
        assert violations[0].variables == ("ptr",)
        assert "Reader" in violations[0].threads
        assert "crashed" in violations[0].description

    def test_consumed_initial_value_flagged_without_crash(self):
        def consumer():
            pointer = yield Read("ptr")
            yield Write("out", pointer)  # silently uses the bad value

        def initialiser():
            yield Write("ptr", "object")

        prog = Program(
            "silent-use-before-init",
            threads={"C": consumer, "I": initialiser},
            initial={"ptr": None, "out": "unset"},
        )
        report = self.detect(prog, ["C", "C", "I"])
        violations = report.of_kind(FindingKind.ORDER_VIOLATION)
        assert violations
        assert set(violations[0].threads) == {"C", "I"}
        assert violations[0].variables == ("ptr",)

    def test_read_after_init_clean(self):
        prog = helpers.null_deref_race()
        report = self.detect(prog, ["Init", "Reader", "Reader"])
        assert report.of_kind(FindingKind.ORDER_VIOLATION) == []

    def test_correct_handoff_clean(self):
        prog = helpers.ordered_handoff()
        result = run_program(prog, RoundRobinScheduler())
        report = OrderViolationDetector.for_program(prog).analyse(result.trace)
        assert report.clean

    def test_same_thread_init_and_use_not_flagged(self):
        def self_init():
            yield Write("ptr", "obj")
            yield Read("ptr")

        prog = Program("self", threads={"T": self_init}, initial={"ptr": None})
        result = run_program(prog, CooperativeScheduler())
        report = OrderViolationDetector.for_program(prog).analyse(result.trace)
        assert report.clean

    def test_detector_without_initials_sees_nothing(self):
        prog = helpers.null_deref_race()
        result = run_program(prog, FixedScheduler(["Reader"], strict=False))
        report = OrderViolationDetector().analyse(result.trace)
        assert report.of_kind(FindingKind.ORDER_VIOLATION) == []


class TestLostNotification:
    def test_lost_wakeup_hang_flagged(self):
        prog = helpers.lost_wakeup()
        schedule = ["Waiter", "Signaller", "Signaller", "Signaller", "Signaller"]
        result = run_program(prog, FixedScheduler(schedule, strict=False))
        report = OrderViolationDetector.for_program(prog).analyse(result.trace)
        kinds = {f.kind for f in report}
        assert FindingKind.ORDER_VIOLATION in kinds  # lost notify, later park
        assert FindingKind.HANG in kinds  # terminal stall on the condvar

    def test_correct_condvar_protocol_is_clean(self):
        """Checking the flag *under the lock* is the correct idiom: no report."""
        from repro.sim import Notify, Wait

        def waiter():
            yield Acquire("L")
            done = yield Read("done")
            if not done:
                yield Wait("cv")
            yield Release("L")

        def signaller():
            yield Acquire("L")
            yield Write("done", True)
            yield Notify("cv")
            yield Release("L")

        prog = Program(
            "correct-cv",
            threads={"Waiter": waiter, "Signaller": signaller},
            initial={"done": False},
            locks=["L"],
            conditions={"cv": "L"},
        )
        detector = OrderViolationDetector.for_program(prog)
        from repro.sim import Explorer

        exploration = Explorer(prog).explore(
            predicate=lambda run: not detector.analyse(run.trace).clean
        )
        assert exploration.complete
        assert not exploration.found

    def test_buggy_helper_flagged_even_on_benign_schedule(self):
        """Predictive strength: the unprotected check is visible in good runs."""
        prog = helpers.lost_wakeup()
        schedule = ["Waiter", "Waiter", "Waiter", "Signaller", "Signaller",
                    "Signaller", "Signaller", "Waiter", "Waiter"]
        result = run_program(prog, FixedScheduler(schedule, strict=False))
        report = OrderViolationDetector.for_program(prog).analyse(result.trace)
        assert not report.clean


class TestDeadlockDetector:
    def test_observed_deadlock_reported(self):
        prog = helpers.abba_deadlock()
        failing = find_schedule(prog)
        report = DeadlockDetector().analyse(failing.trace)
        observed = report.of_kind(FindingKind.DEADLOCK)
        assert observed
        assert set(observed[0].resources) == {"A", "B"}
        assert set(observed[0].threads) == {"T1", "T2"}

    def test_cycle_predicted_from_successful_run(self):
        """The Goodlock property: a good run still reveals the lock-order cycle."""
        prog = helpers.abba_deadlock()
        good = run_program(prog, CooperativeScheduler())
        assert good.ok
        report = DeadlockDetector().analyse(good.trace)
        predicted = report.of_kind(FindingKind.POTENTIAL_DEADLOCK)
        assert predicted
        assert set(predicted[0].resources) == {"A", "B"}

    def test_consistent_order_predicts_nothing(self):
        def ordered():
            yield Acquire("A")
            yield Acquire("B")
            yield Release("B")
            yield Release("A")

        prog = Program(
            "consistent", threads={"T1": ordered, "T2": ordered}, locks=["A", "B"]
        )
        result = run_program(prog, CooperativeScheduler())
        assert DeadlockDetector().analyse(result.trace).clean

    def test_self_deadlock_reported_as_single_resource(self):
        prog = helpers.self_deadlock()
        result = run_program(prog, CooperativeScheduler())
        report = DeadlockDetector().analyse(result.trace)
        singles = [f for f in report if len(f.resources) == 1]
        assert singles
        assert singles[0].resources == ("L",)
        assert singles[0].kind is FindingKind.DEADLOCK

    def test_hang_is_not_a_lock_deadlock(self):
        prog = helpers.lost_wakeup()
        schedule = ["Waiter", "Signaller", "Signaller", "Signaller", "Signaller"]
        result = run_program(prog, FixedScheduler(schedule, strict=False))
        report = DeadlockDetector().analyse(result.trace)
        assert report.of_kind(FindingKind.DEADLOCK) == []


class TestLockOrderGraph:
    def test_graph_edges_reflect_nesting(self):
        prog = helpers.abba_deadlock()
        trace = run_program(prog, CooperativeScheduler()).trace
        graph = build_lock_order_graph(trace)
        assert graph.has_edge("A", "B")
        assert graph.has_edge("B", "A")

    def test_witnesses_attached(self):
        prog = helpers.abba_deadlock()
        trace = run_program(prog, CooperativeScheduler()).trace
        graph = build_lock_order_graph(trace)
        witnesses = graph.edges["A", "B"]["witnesses"]
        assert witnesses and witnesses[0][0] == "T1"

    def test_three_lock_cycle_detected(self):
        def t(first, second):
            def body():
                yield Acquire(first)
                yield Acquire(second)
                yield Release(second)
                yield Release(first)

            return body

        prog = Program(
            "three-cycle",
            threads={"T1": t("A", "B"), "T2": t("B", "C"), "T3": t("C", "A")},
            locks=["A", "B", "C"],
        )
        result = run_program(prog, CooperativeScheduler())
        assert result.ok
        report = DeadlockDetector().analyse(result.trace)
        predicted = report.of_kind(FindingKind.POTENTIAL_DEADLOCK)
        assert any(set(f.resources) == {"A", "B", "C"} for f in predicted)

    def test_blocked_acquire_contributes_edge(self):
        prog = helpers.abba_deadlock()
        failing = find_schedule(prog)
        graph = build_lock_order_graph(failing.trace)
        # Neither nested acquire executed, but the deadlock event names both.
        assert nx.has_path(graph, "A", "B") or nx.has_path(graph, "B", "A")
