"""Static-vs-dynamic agreement over the full kernel corpus.

The soundness contract of the static layer, checked kernel by kernel:
every race, atomicity violation, order violation, and deadlock the
dynamic pipeline confirms on a buggy kernel must already be in the
static candidate set — found with zero explored schedules.  The reverse
direction (static candidates exploration never confirms) is *allowed*
imprecision; the cases where it happens are pinned below so a regression
in either direction fails loudly.
"""

import pytest

from repro.detectors import DetectorSuite
from repro.static import analyse
from repro.kernels import all_kernels, get_kernel

KERNELS = list(all_kernels())

#: Fixed/alternative kernel variants the static pass does NOT report
#: clean, each with the reason the imprecision is genuine and accepted.
#: Every other variant must analyse clean — additions here need a story.
KNOWN_RESIDUAL_VARIANTS = {
    # The condition-check fix tolerates the race instead of removing it:
    # the re-check makes the stale read harmless, but the unprotected
    # cross-thread write/read pair still exists and the lockset
    # abstraction (correctly) still sees it.
    ("atomicity_single_var", "fixed:condition-check"),
    # The code-switch fix reorders the send before the shutdown check but
    # adds no synchronisation (like most of the studied fixes), so the
    # now-benign race on the flag keeps its race and order candidates.
    ("actor_lost_message", "fixed:code-switch"),
    # Dekker's flag protocol is intentionally built from racy accesses;
    # the fence fix orders store *visibility*, which discharges the
    # weak-memory candidate but not the lockset abstraction's races.
    ("weakmem_store_buffer", "fixed:design-change"),
}


def comparison_for(kernel):
    suite = DetectorSuite.for_program(kernel.buggy, streaming=True)
    return suite.analyse_static(kernel.buggy, predicate=kernel.failure)


@pytest.mark.parametrize("kernel", KERNELS, ids=lambda k: k.name)
class TestSoundnessPerKernel:
    def test_every_confirmed_finding_statically_predicted(self, kernel):
        comparison = comparison_for(kernel)
        assert comparison.sound, (
            f"{kernel.name}: dynamically confirmed findings missed by the "
            f"static pass: {[f.summary() for f in comparison.missed]}"
        )

    def test_buggy_kernel_is_statically_flagged(self, kernel):
        report = analyse(kernel.buggy)
        assert not report.clean, (
            f"{kernel.name}: static analysis reported the buggy program clean"
        )

    def test_summaries_are_exact_not_fallback(self, kernel):
        # The kernel corpus is the precision benchmark; if extraction
        # starts falling back to the dynamic drive the analysis silently
        # weakens, so pin exactness.
        assert not analyse(kernel.buggy).approximate, kernel.name


class TestKnownImprecision:
    def test_fixed_variants_clean_except_annotated(self):
        residual = set()
        for kernel in KERNELS:
            variants = [(f"fixed:{kernel.fix_strategy.value}", kernel.fixed)]
            variants += [
                (f"alt:{strategy.value}", program)
                for strategy, program in kernel.alternative_fixes
            ]
            for label, program in variants:
                if not analyse(program).clean:
                    residual.add((kernel.name, label))
        assert residual == set(KNOWN_RESIDUAL_VARIANTS)

    def test_condition_check_residual_is_the_tolerated_race(self):
        kernel = get_kernel("atomicity_single_var")
        report = analyse(kernel.fixed)
        assert report.variables("data-race") == {"proc_info"}
        # ... and the dynamic oracle confirms the fix works anyway.
        assert kernel.verify_fixed(max_schedules=20000)


#: Fixed corpus modules (``examples/realworld``) that keep *candidates*
#: after the fix, each with the reason.  These fixes follow the study's
#: "tolerate the race" strategy — the lifted program verifies clean (no
#: crash/deadlock/hang on any schedule; that gate lives in
#: ``tests/static/test_pysource_corpus.py``) but the lockset abstraction
#: still, correctly, sees the unsynchronised pair.  Every other fixed
#: module must analyse clean — additions here need a story.
CORPUS_RESIDUAL_VARIANTS = {
    # The fix moves the flag re-check under the condvar lock, but
    # Condition.wait releases and reacquires the mutex, so the wait-loop
    # body spans two lock generations and the atomicity pass (correctly)
    # reports the split critical section.  Harmless: every arm re-checks.
    ("broken_condvar_fixed", "atomicity-violation", ("box.ready",)),
    # The fix always sends the sentinel instead of synchronising the
    # ``failed`` flag; the unprotected flag write/read pair survives
    # (tolerated race) along with its starts-as-False order candidate.
    ("queue_sentinel_fixed", "data-race", ("failed",)),
    ("queue_sentinel_fixed", "order-violation", ("failed",)),
    # The fix snapshots the handle and null-checks the snapshot — the
    # classic tolerate-style teardown fix — so the race on ``log``
    # remains; the dereference of a torn-down handle does not.
    ("teardown_use_fixed", "data-race", ("log",)),
}


class TestCorpusKnownImprecision:
    def test_fixed_corpus_residuals_are_exactly_the_pinned_set(self):
        from pathlib import Path

        from repro.static.pysource import load_corpus
        from repro.static.report import analyse_summary

        corpus = Path(__file__).resolve().parents[2] / "examples" / "realworld"
        residual = set()
        for module in load_corpus(corpus):
            if not module.is_fixed:
                continue
            for candidate in analyse_summary(module.summary).active():
                residual.add(
                    (module.name, candidate.kind, candidate.variables)
                )
        assert residual == set(CORPUS_RESIDUAL_VARIANTS)


class TestScopeBoundaries:
    def test_hang_and_lost_notification_out_of_scope(self):
        # The lost-wakeup kernel's dynamic report includes a HANG verdict
        # and a condvar-resource order finding; both are schedule-level
        # liveness statements the zero-schedule pass cannot phrase, and
        # analyse_static must file them as out of scope, not as misses.
        kernel = get_kernel("order_lost_wakeup")
        comparison = comparison_for(kernel)
        assert comparison.sound
        out = {f.kind.value for f in comparison.out_of_scope}
        assert "hang" in out
        assert len(comparison.out_of_scope) == 2
