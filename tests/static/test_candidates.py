"""Lockset / lock-order / order-candidate passes on known programs."""

import pytest

from repro.sim import Acquire, Program, Read, Release, Write
from repro.static import (
    atomicity_candidates,
    deadlock_candidates,
    order_candidates,
    race_candidates,
    site_contexts,
    summarize_program,
)
from tests.helpers import (
    abba_deadlock,
    locked_counter,
    lost_wakeup,
    null_deref_race,
    racy_counter,
    self_deadlock,
    semaphore_pingpong,
    spawn_join_chain,
)


def passes(program):
    summary = summarize_program(program)
    contexts = site_contexts(summary)
    races = race_candidates(summary, contexts)
    return summary, contexts, races


class TestRaceCandidates:
    def test_unlocked_counter_flags_race(self):
        _, _, races = passes(racy_counter())
        active = [c for c in races if not c.suppressed]
        assert [c.variables for c in active] == [("counter",)]
        assert all(c.kind == "data-race" for c in active)

    def test_locked_counter_is_clean(self):
        _, _, races = passes(locked_counter())
        assert not [c for c in races if not c.suppressed]

    def test_pairwise_not_global_lockset(self):
        # x is touched under L by T1/T2 and with no lock by a thread that
        # only ever reads — the read/read pair is not a race, so only the
        # cross pairs with the unlocked *writer* matter.
        def locked_writer():
            yield Acquire("L")
            yield Write("x", 1)
            yield Release("L")

        def unlocked_reader():
            yield Read("x")

        program = Program(
            "pairwise",
            threads={"W1": locked_writer, "W2": locked_writer, "R": unlocked_reader},
            initial={"x": 0},
            locks=["L"],
        )
        _, _, races = passes(program)
        active = [c for c in races if not c.suppressed]
        assert len(active) == 1
        (candidate,) = active
        assert "R" in candidate.threads

    def test_join_ordering_discharges_candidate(self):
        _, _, races = passes(spawn_join_chain())
        assert not [c for c in races if not c.suppressed]
        suppressed = [c for c in races if c.suppressed]
        assert suppressed and "joined" in suppressed[0].reason


class TestAtomicityCandidates:
    def test_read_check_use_pair_flagged(self):
        summary, contexts, races = passes(racy_counter())
        atomicity = [
            c for c in atomicity_candidates(summary, contexts, races)
            if not c.suppressed
        ]
        assert atomicity and atomicity[0].variables == ("counter",)

    def test_semaphore_alternation_is_static_imprecision(self):
        # Semaphore hand-offs order the accesses dynamically, but the
        # lockset abstraction cannot see that: the candidate survives.
        # analyse_static() scores exactly this as imprecision.
        summary, contexts, races = passes(semaphore_pingpong())
        atomicity = [
            c for c in atomicity_candidates(summary, contexts, races)
            if not c.suppressed
        ]
        assert atomicity


class TestOrderCandidates:
    def test_use_before_init_flagged(self):
        summary, contexts, _ = passes(null_deref_race())
        active = [c for c in order_candidates(summary, contexts) if not c.suppressed]
        assert [c.variables for c in active] == [("ptr",)]

    def test_lost_wakeup_flag_read_flagged(self):
        summary, contexts, _ = passes(lost_wakeup())
        active = [c for c in order_candidates(summary, contexts) if not c.suppressed]
        assert [c.variables for c in active] == [("done",)]

    def test_mutually_locked_sentinel_is_discharged(self):
        # Reader and writer both hold L around the sentinel: the dynamic
        # order heuristic only reports that shape with crash evidence, so
        # the static pass discharges it too.
        def writer():
            yield Acquire("L")
            yield Write("ready", True)
            yield Release("L")

        def reader():
            yield Acquire("L")
            yield Read("ready")
            yield Release("L")

        program = Program(
            "locked-sentinel",
            threads={"W": writer, "R": reader},
            initial={"ready": None},
            locks=["L"],
        )
        summary, contexts, _ = passes(program)
        candidates = order_candidates(summary, contexts)
        assert not [c for c in candidates if not c.suppressed]


class TestDeadlockCandidates:
    def test_abba_cycle_flagged(self):
        summary, contexts, _ = passes(abba_deadlock())
        active = [c for c in deadlock_candidates(summary, contexts) if not c.suppressed]
        assert len(active) == 1
        assert set(active[0].resources) == {"A", "B"}

    def test_self_reacquisition_flagged(self):
        summary, contexts, _ = passes(self_deadlock())
        active = [c for c in deadlock_candidates(summary, contexts) if not c.suppressed]
        assert [tuple(c.resources) for c in active] == [("L",)]

    def test_consistent_order_is_clean(self):
        def body():
            yield Acquire("A")
            yield Acquire("B")
            yield Release("B")
            yield Release("A")

        program = Program("consistent", threads={"T1": body, "T2": body},
                          locks=["A", "B"])
        summary, contexts, _ = passes(program)
        assert not deadlock_candidates(summary, contexts)

    def test_trylock_never_closes_a_cycle(self):
        # TryAcquire cannot block, so an inverted order through it is not
        # a deadlock — mirrors the dynamic detector's treatment.
        from repro.sim import TryAcquire

        def forward():
            yield Acquire("A")
            yield Acquire("B")
            yield Release("B")
            yield Release("A")

        def backward():
            yield Acquire("B")
            got = yield TryAcquire("A")
            if got:
                yield Release("A")
            yield Release("B")

        program = Program("try-inverted",
                          threads={"T1": forward, "T2": backward},
                          locks=["A", "B"])
        summary, contexts, _ = passes(program)
        assert not [c for c in deadlock_candidates(summary, contexts)
                    if not c.suppressed]
