"""Unit tests for the real-Python frontend (``repro.static.pysource``).

Each test feeds a small ordinary ``threading`` module to :func:`frontend`
and asserts the extracted :class:`ProgramSummary` — sites, resource maps,
guards, loop shapes, inlining, and the conservative-approximation notes.
The corpus-level gates (recall, lifted confirmation) live in
``test_pysource_corpus.py``.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.static.pysource import (
    GroundTruthBug,
    SourceError,
    annotation_matches,
    frontend,
    parse_expectations,
)
from repro.static.summary import (
    SummaryBranch,
    SummaryLoop,
    SummaryOp,
)


def summarize(src: str, name: str = "mod"):
    return frontend(textwrap.dedent(src), name=name)


def kinds(summary, thread: str):
    return [(s.kind, s.obj) for s in summary.threads[thread].sites]


def exact(summary):
    return not any(t.approximate for t in summary.threads.values())


class TestResources:
    def test_with_lock_brackets_the_body(self):
        s = summarize("""
            import threading
            lock = threading.Lock()
            x = 0

            def worker():
                global x
                with lock:
                    x = 1

            def main():
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        """)
        assert s.locks == ("lock",)
        assert kinds(s, "worker") == [
            ("acquire", "lock"), ("write", "x"), ("release", "lock"),
        ]
        assert s.initial == {"x": 0}
        assert exact(s)

    def test_condition_without_mutex_synthesizes_one(self):
        s = summarize("""
            import threading
            cond = threading.Condition()

            def worker():
                with cond:
                    cond.notify()

            def main():
                t = threading.Thread(target=worker)
                t.start()
                with cond:
                    cond.wait()
                t.join()
        """)
        assert s.conditions == {"cond": "cond.mutex"}
        assert "cond.mutex" in s.locks
        # ``with cond:`` acquires the *mutex*; wait/notify target the cond.
        assert ("acquire", "cond.mutex") in kinds(s, "worker")
        assert ("notify", "cond") in kinds(s, "worker")
        assert ("wait", "cond") in kinds(s, "main")

    def test_semaphore_barrier_and_queue_maps(self):
        s = summarize("""
            import threading
            import queue
            gate = threading.Semaphore(2)
            bar = threading.Barrier(2)
            inbox = queue.Queue(maxsize=1)

            def worker():
                gate.acquire()
                gate.release()
                bar.wait()
                inbox.put("x")

            def main():
                t = threading.Thread(target=worker)
                t.start()
                bar.wait()
                inbox.get()
                t.join()
        """)
        assert s.semaphores == ("gate",)
        assert s.barriers == ("bar",)
        assert s.channels == {"inbox": 1}
        assert ("sem_acquire", "gate") in kinds(s, "worker")
        assert ("barrier_wait", "bar") in kinds(s, "worker")
        assert ("send", "inbox") in kinds(s, "worker")
        assert ("recv", "inbox") in kinds(s, "main")

    def test_unbounded_queue_has_no_capacity(self):
        s = summarize("""
            import threading
            import queue
            q = queue.Queue()

            def worker():
                q.put(1)

            def main():
                t = threading.Thread(target=worker)
                t.start()
                q.get()
                t.join()
        """)
        assert s.channels == {"q": None}

    def test_instance_attributes_are_namespaced(self):
        s = summarize("""
            import threading

            class Box:
                def __init__(self):
                    self.value = None

            box = Box()

            def worker():
                box.value = 1

            def main():
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        """)
        assert "box.value" in s.initial
        assert ("write", "box.value") in kinds(s, "worker")


class TestThreads:
    def test_duplicate_targets_get_deduped_names(self):
        s = summarize("""
            import threading
            n = 0

            def worker():
                global n
                n = 1

            def main():
                t1 = threading.Thread(target=worker)
                t2 = threading.Thread(target=worker)
                t1.start()
                t2.start()
                t1.join()
                t2.join()
        """)
        assert set(s.threads) == {"main", "worker", "worker-2"}
        assert [k for k, _ in kinds(s, "main")] == [
            "spawn", "spawn", "join", "join",
        ]
        assert s.start == ("main",)

    def test_module_without_entry_point_is_rejected(self):
        with pytest.raises(SourceError):
            summarize("""
                import threading

                def worker():
                    pass
            """)


class TestControlFlow:
    def test_if_guard_binds_to_the_tested_read(self):
        s = summarize("""
            import threading
            flag = False
            x = 0

            def worker():
                global x
                if not flag:
                    x = 1

            def main():
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        """)
        t = s.threads["worker"]
        branch = next(n for n in t.nodes if isinstance(n, SummaryBranch))
        assert branch.guard is not None
        assert branch.guard.mode == "falsy"
        assert t.sites[branch.guard.site].obj == "flag"
        (write,) = [s_ for s_ in t.sites if s_.kind == "write"]
        assert write.conditional
        assert exact(s)

    def test_while_loop_retests_the_guard_site(self):
        s = summarize("""
            import threading
            done = False

            def worker():
                global done
                done = True

            def main():
                t = threading.Thread(target=worker)
                t.start()
                while not done:
                    pass
                t.join()
        """)
        t = s.threads["main"]
        loop = next(n for n in t.nodes if isinstance(n, SummaryLoop))
        assert loop.guard is not None and loop.guard.mode == "falsy"
        retest = loop.body[-1]
        assert isinstance(retest, SummaryOp)
        assert retest.site.obj == "done"
        assert exact(s)

    def test_constant_range_for_becomes_counted_loop(self):
        s = summarize("""
            import threading
            n = 0

            def worker():
                global n
                for _ in range(3):
                    n += 1

            def main():
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        """)
        loop = next(
            n for n in s.threads["worker"].nodes if isinstance(n, SummaryLoop)
        )
        assert loop.count == 3
        assert exact(s)


class TestInlining:
    def test_helper_calls_inline_interprocedurally(self):
        s = summarize("""
            import threading
            x = 0

            def bump():
                global x
                x = x + 1

            def worker():
                bump()
                bump()

            def main():
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        """)
        ops = kinds(s, "worker")
        assert ops.count(("write", "x")) == 2
        assert ops.count(("read", "x")) == 2
        assert exact(s)

    def test_recursion_hits_the_cutoff_conservatively(self):
        s = summarize("""
            import threading
            x = 0

            def spin():
                global x
                x = 1
                spin()

            def main():
                t = threading.Thread(target=spin)
                t.start()
                t.join()
        """)
        assert s.threads["spin"].approximate

    def test_unknown_call_marks_approximate_pure_call_does_not(self):
        unknown = summarize("""
            import threading
            import os

            def worker():
                os.getpid()

            def main():
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        """)
        assert unknown.threads["worker"].approximate
        pure = summarize("""
            import threading

            def worker():
                print("hi")

            def main():
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        """)
        assert exact(pure)

    def test_method_call_on_shared_handle_is_a_dereference(self):
        s = summarize("""
            import threading
            conn = None

            def worker():
                conn.send("x")

            def main():
                global conn
                t = threading.Thread(target=worker)
                t.start()
                conn = object()
                t.join()
        """)
        worker = s.threads["worker"]
        assert ("read", "conn") in kinds(s, "worker")
        assert not worker.approximate  # modelled, not punted


class TestAnnotations:
    def test_parse_and_match_round_trip(self):
        bugs, fixed_of = parse_expectations({
            "bugs": [
                {"kind": "data-race", "variables": ["x"],
                 "manifestation": "finding"},
            ],
        })
        assert fixed_of is None
        (bug,) = bugs
        assert isinstance(bug, GroundTruthBug)

        class Cand:
            kind = "data-race"
            variables = ("x", "y")
            resources = ()

        assert annotation_matches(bug, Cand())
        Cand.kind = "deadlock"
        assert not annotation_matches(bug, Cand())

    def test_bad_kind_is_rejected(self):
        with pytest.raises(SourceError):
            parse_expectations({"bugs": [{"kind": "heisenbug"}]})
