"""The ``examples/realworld`` acceptance gate.

Three properties over the curated buggy/fixed corpus, mirroring the CLI
``repro static --source`` verdict:

* **round trip** — re-extracting each lifted program reproduces the
  frontend summary site for site (the lifter invariant, on real code);
* **recall 1.0** — every annotated ground-truth bug matches an active
  static candidate, and every bug marked ``confirmable`` is dynamically
  manifested by exploring the lifted buggy program;
* **fixed variants verify clean** — no failing terminal status on any
  explored schedule.  Residual *candidates* on tolerate-style fixes are
  pinned in ``test_agreement.py::CORPUS_RESIDUAL_VARIANTS``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.static.lift import confirm, lift, structure
from repro.static.pysource import annotation_matches, load_corpus
from repro.static.report import analyse_summary
from repro.static.summary import summarize_program

CORPUS = Path(__file__).resolve().parents[2] / "examples" / "realworld"
MODULES = load_corpus(CORPUS)
BY_NAME = {m.name: m for m in MODULES}

_OUTCOMES = {}


def outcome_for(module):
    if module.name not in _OUTCOMES:
        _OUTCOMES[module.name] = confirm(module.summary, max_schedules=800)
    return _OUTCOMES[module.name]


def test_corpus_is_the_expected_eight_pairs():
    buggy = {m.name for m in MODULES if not m.is_fixed}
    fixed = {m.name for m in MODULES if m.is_fixed}
    assert len(buggy) == 8 and len(fixed) == 8
    assert {m.fixed_of for m in MODULES if m.is_fixed} == buggy


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.name)
class TestPerModule:
    def test_summary_is_exact(self, module):
        assert not any(
            t.approximate for t in module.summary.threads.values()
        ), [t.notes for t in module.summary.threads.values()]

    def test_lift_round_trips_site_for_site(self, module):
        program = lift(module.summary)
        assert structure(summarize_program(program)) == structure(
            module.summary
        )

    def test_fixed_of_link_resolves(self, module):
        if module.is_fixed:
            twin = BY_NAME[module.fixed_of]
            assert not twin.is_fixed


@pytest.mark.parametrize(
    "module", [m for m in MODULES if not m.is_fixed], ids=lambda m: m.name
)
class TestBuggyModules:
    def test_every_annotated_bug_is_a_static_candidate(self, module):
        active = analyse_summary(module.summary).active()
        for bug in module.bugs:
            assert any(annotation_matches(bug, c) for c in active), (
                f"{module.name}: {bug.describe()} not among "
                f"{[(c.kind, c.variables, c.resources) for c in active]}"
            )

    def test_confirmable_bugs_manifest_in_the_lifted_program(self, module):
        outcome = outcome_for(module)
        confirmed = [c for c in outcome.outcomes if c.confirmed]
        for bug in module.bugs:
            if not bug.confirmable:
                continue
            assert any(annotation_matches(bug, c) for c in confirmed), (
                f"{module.name}: {bug.describe()} never manifested; "
                f"statuses {outcome.statuses}"
            )

    def test_predicted_status_manifestations_appear(self, module):
        # A bug annotated to crash/deadlock/hang must drive the lifted
        # program into that terminal status on some schedule.
        outcome = outcome_for(module)
        for bug in module.bugs:
            if bug.confirmable and bug.manifestation != "finding":
                assert outcome.statuses.get(bug.manifestation, 0) >= 1, (
                    f"{module.name}: expected a {bug.manifestation} "
                    f"schedule, got {outcome.statuses}"
                )


@pytest.mark.parametrize(
    "module", [m for m in MODULES if m.is_fixed], ids=lambda m: m.name
)
class TestFixedModules:
    def test_annotates_no_bugs(self, module):
        assert module.bugs == ()

    def test_lifted_program_verifies_clean(self, module):
        outcome = outcome_for(module)
        assert outcome.clean, (
            f"{module.name}: fixed variant still fails — "
            f"statuses {outcome.statuses}"
        )
