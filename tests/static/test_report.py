"""The analyse() entry point: report shape, pairs, observability."""

import json

from repro.obs import metrics as obs_metrics
from repro.obs import runlog as obs_runlog
from repro.static import analyse
from tests.helpers import (
    abba_deadlock,
    locked_counter,
    null_deref_race,
    racy_counter,
)


class TestReport:
    def test_clean_program_reports_clean(self):
        report = analyse(locked_counter())
        assert report.clean
        assert report.pairs == []
        assert "locking discipline holds statically" in report.format()

    def test_racy_program_reports_candidates_and_pairs(self):
        report = analyse(racy_counter())
        assert not report.clean
        assert report.variables("data-race") == {"counter"}
        assert report.pairs
        # Atomicity wedges outrank generic race pairs.
        assert report.pairs[0].score >= report.pairs[-1].score

    def test_deadlock_resource_sets(self):
        report = analyse(abba_deadlock())
        assert report.resource_sets() == [frozenset({"A", "B"})]

    def test_pairs_never_pair_a_thread_with_itself(self):
        for builder in (racy_counter, abba_deadlock, null_deref_race):
            for pair in analyse(builder()).pairs:
                assert pair.first.thread != pair.second.thread

    def test_to_json_is_json_serialisable(self):
        blob = json.dumps(analyse(racy_counter()).to_json())
        decoded = json.loads(blob)
        assert decoded["program"] == "racy-counter"
        assert decoded["candidates"] and decoded["pairs"]

    def test_zero_schedules_claim(self):
        # The report's whole point: wall time recorded, no exploration.
        report = analyse(racy_counter())
        assert report.wall_seconds > 0
        assert "0 schedules" in report.format()


class TestObservability:
    def test_metrics_and_runlog_recorded(self, tmp_path):
        path = tmp_path / "runlog.jsonl"
        registry = obs_metrics.enable()
        obs_runlog.set_runlog(str(path))
        try:
            analyse(racy_counter())
            snapshot = registry.snapshot()
        finally:
            obs_runlog.clear_runlog()
            obs_metrics.disable()
        flat = json.dumps(snapshot)
        assert "static.analyses" in flat
        assert "static.candidates" in flat
        assert "static.pairs" in flat
        records = [json.loads(line) for line in path.read_text().splitlines()]
        static_records = [r for r in records if r["event"] == "static.analyse"]
        assert static_records
        record = static_records[0]
        assert record["program"] == "racy-counter"
        assert record["pairs"] >= 1
        assert record["candidates"].get("data-race", 0) >= 1
