"""Unit tests for the lifter (``repro.static.lift``).

The lifter's contract is the *round-trip invariant*: a lifted program's
thread bodies are real yield-op generators, so re-extracting them with
:func:`summarize_program` must reproduce the frontend's summary site for
site (same kinds, objects, conditionals, branch/loop nesting).  The
hypothesis sweep at the bottom checks that invariant over generated
``with``-block / nested-call module shapes; the corpus gate in
``test_pysource_corpus.py`` checks it over the real-world pairs.
"""

from __future__ import annotations

import textwrap

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import RunStatus
from repro.sim.explorer import enumerate_outcomes
from repro.static.lift import LiftOutcome, confirm, lift, lifted_source, structure
from repro.static.pysource import frontend
from repro.static.summary import summarize_program


def summarize(src: str, name: str = "mod"):
    return frontend(textwrap.dedent(src), name=name)


def roundtrips(src: str) -> None:
    summary = summarize(src)
    program = lift(summary)
    assert structure(summarize_program(program)) == structure(summary)


class TestLift:
    def test_lifted_program_runs_and_reaches_ok(self):
        summary = summarize("""
            import threading
            lock = threading.Lock()
            x = 0

            def worker():
                global x
                with lock:
                    x = 1

            def main():
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        """)
        program = lift(summary)
        result = enumerate_outcomes(program, max_schedules=200)
        assert result.statuses[RunStatus.OK] >= 1
        assert RunStatus.CRASH not in result.statuses

    def test_dereference_of_uninitialised_handle_crashes(self):
        summary = summarize("""
            import threading
            conn = None

            def worker():
                conn.send("x")

            def main():
                global conn
                t = threading.Thread(target=worker)
                t.start()
                conn = object()
                t.join()
        """)
        result = enumerate_outcomes(lift(summary), max_schedules=200)
        # Some schedule reads conn before main publishes it.
        assert result.statuses[RunStatus.CRASH] >= 1
        assert result.statuses[RunStatus.OK] >= 1

    def test_lifted_source_is_printable_python(self):
        summary = summarize("""
            import threading
            x = 0

            def worker():
                global x
                if not x:
                    x = 1

            def main():
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        """)
        text = lifted_source(summary)
        assert "def _lifted_worker" in text
        assert "def _lifted_main" in text
        compile(text, "<lifted>", "exec")


class TestConfirm:
    def test_confirm_reports_crash_route(self):
        summary = summarize("""
            import threading
            conn = None

            def worker():
                conn.send("x")

            def main():
                global conn
                t = threading.Thread(target=worker)
                t.start()
                conn = object()
                t.join()
        """)
        outcome = confirm(summary, max_schedules=400)
        assert isinstance(outcome, LiftOutcome)
        assert not outcome.clean
        assert any(c.confirmed for c in outcome.outcomes)
        payload = outcome.to_json()
        assert payload["clean"] is False
        assert payload["statuses"]["crash"] >= 1

    def test_confirm_clean_module(self):
        summary = summarize("""
            import threading
            lock = threading.Lock()
            n = 0

            def worker():
                global n
                with lock:
                    n += 1

            def main():
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        """)
        outcome = confirm(summary, max_schedules=400)
        assert outcome.clean
        assert not outcome.confirmed


class TestRoundTripExamples:
    def test_nested_with_blocks(self):
        roundtrips("""
            import threading
            a = threading.Lock()
            b = threading.Lock()
            x = 0

            def worker():
                global x
                with a:
                    with b:
                        x = 1

            def main():
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        """)

    def test_guarded_branch_and_counted_loop(self):
        roundtrips("""
            import threading
            flag = False
            n = 0

            def worker():
                global n
                for _ in range(2):
                    if not flag:
                        n += 1

            def main():
                t = threading.Thread(target=worker)
                t.start()
                t.join()
        """)


# -- hypothesis sweep over with/nested-call shapes ---------------------------

_STMTS = {
    "write": "        x = 1\n",
    "read": "        y = x\n",
    "locked_write": "        with lock:\n            x = 2\n",
    "call": "        helper()\n",
    "guarded": "        if not x:\n            x = 3\n",
}


def _module(worker_stmts, helper_stmts) -> str:
    helper_body = "".join(
        line[4:]  # helper bodies sit one indent level above worker's
        for stmt in helper_stmts
        for line in stmt.splitlines(keepends=True)
    ) or "    pass\n"
    worker_body = "".join(worker_stmts) or "        pass\n"
    return (
        "import threading\n"
        "lock = threading.Lock()\n"
        "x = 0\n"
        "y = 0\n\n"
        "def helper():\n"
        "    global x, y\n"
        f"{helper_body}\n"
        "def worker():\n"
        "    global x, y\n"
        "    with lock:\n"
        f"{worker_body}\n"
        "def main():\n"
        "    t = threading.Thread(target=worker)\n"
        "    t.start()\n"
        "    t.join()\n"
    )


@given(
    worker=st.lists(
        st.sampled_from(sorted(_STMTS)), min_size=1, max_size=4
    ),
    helper=st.lists(
        st.sampled_from(["write", "read", "locked_write", "guarded"]),
        min_size=0, max_size=3,
    ),
)
@settings(max_examples=40, deadline=None)
def test_roundtrip_sweep_with_blocks_and_nested_calls(worker, helper):
    src = _module(
        [_STMTS[s] for s in worker], [_STMTS[s] for s in helper]
    )
    summary = frontend(src, name="sweep")
    assert not any(t.approximate for t in summary.threads.values()), src
    program = lift(summary)
    assert structure(summarize_program(program)) == structure(summary), src
