"""Thread-summary extraction: AST path, fallback path, exclusivity."""

import pytest

from repro.sim import (
    Acquire,
    Program,
    Read,
    Release,
    Write,
)
from repro.static import exclusive, summarize_program
from tests.helpers import (
    abba_deadlock,
    corpus_program,
    locked_counter,
    lost_wakeup,
    racy_counter,
    spawn_join_chain,
)


def sites_by_kind(summary, thread, kind):
    return [s for s in summary.threads[thread].sites if s.kind == kind]


class TestAstExtraction:
    def test_locked_counter_sites_in_program_order(self):
        summary = summarize_program(locked_counter())
        assert not summary.approximate
        kinds = [s.kind for s in summary.threads["T1"].sites]
        assert kinds == ["acquire", "read", "write", "release"]

    def test_resource_names_resolved_through_closures(self):
        summary = summarize_program(abba_deadlock())
        assert summary.used_objects("acquire") == {"A", "B"}

    def test_site_indexes_are_preorder_positions(self):
        summary = summarize_program(racy_counter())
        for thread in summary.threads.values():
            assert [s.index for s in thread.sites] == list(range(len(thread.sites)))

    def test_labels_survive_extraction(self):
        def body():
            yield Write("x", 1, label="w.x")

        program = Program("labelled", threads={"T": body}, initial={"x": 0})
        summary = summarize_program(program)
        (site,) = summary.threads["T"].sites
        assert site.label == "w.x"

    def test_branch_sites_are_conditional(self):
        summary = summarize_program(lost_wakeup())
        waits = sites_by_kind(summary, "Waiter", "wait")
        assert waits and all(s.conditional for s in waits)

    def test_spawn_join_sites_extracted(self):
        summary = summarize_program(spawn_join_chain())
        kinds = [s.kind for s in summary.threads["Main"].sites]
        assert kinds[:2] == ["spawn", "join"]


class TestDynamicFallback:
    def test_data_driven_body_is_approximate(self):
        program = corpus_program(
            [(True, (("read", "x"),), False), (False, (("write", "x"),), False)]
        )
        summary = summarize_program(program)
        # The spec-driven bodies read their op list from a closure the
        # extractor cannot evaluate: the summary must say so rather than
        # silently pretend precision.
        assert summary.approximate
        assert any(
            site.obj is None
            for site in summary.all_sites()
            if site.kind in ("read", "write")
        )

    def test_fallback_reports_no_exclusive_pairs(self):
        program = corpus_program(
            [(False, (("read", "x"), ("read", "y")), True)]
        )
        summary = summarize_program(program)
        for thread in summary.threads.values():
            assert thread.exclusive_pairs == frozenset()


class TestExclusivity:
    def make_program(self, body):
        return Program(
            "exclusivity", threads={"T": body},
            initial={"x": 0, "y": 0}, locks=["L"],
        )

    def test_divergent_branch_arms_are_exclusive(self):
        def body():
            flag = yield Read("x")
            if flag:
                yield Write("x", 1)
            else:
                yield Write("y", 1)

        summary = summarize_program(self.make_program(body))
        sites = summary.threads["T"].sites
        write_x = next(s for s in sites if s.kind == "write" and s.obj == "x")
        write_y = next(s for s in sites if s.kind == "write" and s.obj == "y")
        assert exclusive(summary, write_x, write_y)
        assert exclusive(summary, write_y, write_x)

    def test_return_cuts_off_the_rest_of_the_body(self):
        def body():
            flag = yield Read("x")
            if flag:
                yield Write("x", 1)
                return
            yield Write("y", 1)

        summary = summarize_program(self.make_program(body))
        sites = summary.threads["T"].sites
        write_x = next(s for s in sites if s.kind == "write" and s.obj == "x")
        write_y = next(s for s in sites if s.kind == "write" and s.obj == "y")
        assert exclusive(summary, write_x, write_y)

    def test_sequential_sites_are_not_exclusive(self):
        def body():
            yield Write("x", 1)
            yield Write("y", 1)

        summary = summarize_program(self.make_program(body))
        a, b = summary.threads["T"].sites
        assert not exclusive(summary, a, b)

    def test_loop_iterations_allow_cross_arm_co_occurrence(self):
        # Different arms of a branch *inside a loop* can both run — one
        # arm per iteration — so they must not be exclusive.
        def body():
            for _ in range(2):
                flag = yield Read("x")
                if flag:
                    yield Write("x", 1)
                else:
                    yield Write("y", 1)

        summary = summarize_program(self.make_program(body))
        sites = summary.threads["T"].sites
        write_x = next(s for s in sites if s.kind == "write" and s.obj == "x")
        write_y = next(s for s in sites if s.kind == "write" and s.obj == "y")
        assert not exclusive(summary, write_x, write_y)

    def test_cross_thread_sites_never_exclusive(self):
        summary = summarize_program(racy_counter())
        t1 = summary.threads["T1"].sites[0]
        t2 = summary.threads["T2"].sites[0]
        assert not exclusive(summary, t1, t2)


class TestYieldFromInlining:
    def test_factory_built_helper_inlines_one_level_exactly(self):
        # The common DSL refactor: a shared critical-section helper built
        # by a factory (resource names resolved through the closure) and
        # delegated to with ``yield from``.  One level inlines exactly —
        # no fallback, sites in program order at the delegation point.
        def make_section(lock, var):
            def section():
                yield Acquire(lock)
                yield Write(var, 1)
                yield Release(lock)
            return section

        section = make_section("L", "x")

        def body():
            yield Read("x")
            yield from section()
            yield Read("x")

        program = Program(
            "yf", threads={"T": body}, initial={"x": 0}, locks=("L",)
        )
        summary = summarize_program(program)
        assert not summary.approximate
        assert [(s.kind, s.obj) for s in summary.threads["T"].sites] == [
            ("read", "x"),
            ("acquire", "L"),
            ("write", "x"),
            ("release", "L"),
            ("read", "x"),
        ]
        assert [s.index for s in summary.threads["T"].sites] == list(range(5))

    def test_delegation_beyond_one_level_falls_back_conservatively(self):
        def inner():
            yield Write("y", 2)

        def mid():
            yield Read("y")
            yield from inner()

        def body():
            yield from mid()

        program = Program("yf2", threads={"T": body}, initial={"y": 0})
        summary = summarize_program(program)
        # mid()'s own sites survive; inner()'s are dropped and the
        # summary says so instead of silently under-reporting.
        assert summary.approximate
        assert [(s.kind, s.obj) for s in summary.threads["T"].sites] == [
            ("read", "y"),
        ]
        assert any("nested beyond one level" in n
                   for n in summary.threads["T"].notes)


class TestDeclarations:
    def test_program_declarations_carried_over(self):
        summary = summarize_program(lost_wakeup())
        assert summary.locks == ("L",)
        assert summary.conditions == {"cv": "L"}
        assert set(summary.initial) == {"done"}

    @pytest.mark.parametrize("builder", [racy_counter, locked_counter, abba_deadlock])
    def test_helper_programs_extract_exactly(self, builder):
        assert not summarize_program(builder()).approximate
