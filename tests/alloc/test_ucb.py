"""Unit tests for the UCB1 allocator (``repro.alloc.ucb``)."""

import pytest

from repro.alloc import ArmStats, UCBAllocator
from repro.obs import metrics as obs_metrics


class TestRegistration:
    def test_add_arm_returns_key_and_registers(self):
        alloc = UCBAllocator()
        key = alloc.add_arm("j1", "dfs")
        assert key == ("j1", "dfs")
        assert key in alloc
        assert len(alloc) == 1
        assert alloc.arm(key).pulls == 0

    def test_duplicate_arm_rejected(self):
        alloc = UCBAllocator()
        alloc.add_arm("j1", "dfs")
        with pytest.raises(ValueError, match="already registered"):
            alloc.add_arm("j1", "dfs")

    def test_meta_is_kept_per_arm(self):
        alloc = UCBAllocator()
        key = alloc.add_arm("j1", "dfs", kernel="abba")
        assert alloc.arm(key).meta == {"kernel": "abba"}

    def test_negative_exploration_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            UCBAllocator(exploration=-0.1)


class TestSelection:
    def test_unplayed_arms_first_in_registration_order(self):
        alloc = UCBAllocator()
        a = alloc.add_arm("j", "a")
        b = alloc.add_arm("j", "b")
        assert alloc.select() == a
        alloc.record(a, 5, 100.0)  # huge payout — still probes b first
        assert alloc.select() == b

    def test_exploitation_prefers_higher_mean_payout(self):
        alloc = UCBAllocator()
        good = alloc.add_arm("j", "good")
        bad = alloc.add_arm("j", "bad")
        alloc.record(good, 10, 50.0)
        alloc.record(bad, 10, 0.0)
        assert alloc.select() == good

    def test_starved_arm_is_eventually_revisited(self):
        """The confidence bonus grows as the other arm soaks up budget."""
        alloc = UCBAllocator(exploration=1.0)
        rich = alloc.add_arm("j", "rich")
        poor = alloc.add_arm("j", "poor")
        alloc.record(rich, 2, 1.0)
        alloc.record(poor, 2, 0.0)
        for _ in range(200):
            key = alloc.select()
            if key == poor:
                break
            alloc.record(rich, 2, 1.0)  # rich's mean stays ~0.5
        else:
            pytest.fail("starved arm was never revisited")

    def test_exclude_masks_without_touching_stats(self):
        alloc = UCBAllocator()
        a = alloc.add_arm("j", "a")
        b = alloc.add_arm("j", "b")
        assert alloc.select(exclude=[a]) == b
        assert alloc.select(exclude=[a, b]) is None
        assert alloc.arm(a).pulls == 0  # masking is not a pull

    def test_ties_break_by_registration_order(self):
        alloc = UCBAllocator()
        first = alloc.add_arm("j", "first")
        second = alloc.add_arm("j", "second")
        alloc.record(first, 4, 2.0)
        alloc.record(second, 4, 2.0)
        assert alloc.select() == first

    def test_deterministic_replay(self):
        def drive():
            alloc = UCBAllocator()
            for name in ("a", "b", "c"):
                alloc.add_arm("j", name)
            picks = []
            payouts = {"a": 1.0, "b": 3.0, "c": 0.0}
            for _ in range(20):
                key = alloc.select()
                picks.append(key)
                alloc.record(key, 2, payouts[key[1]])
            return picks

        assert drive() == drive()

    def test_unplayed_score_is_infinite(self):
        alloc = UCBAllocator()
        key = alloc.add_arm("j", "a")
        assert alloc.score(key) == float("inf")
        alloc.record(key, 4, 2.0)
        assert alloc.score(key) < float("inf")


class TestFeedback:
    def test_record_accumulates_and_counts_findings(self):
        alloc = UCBAllocator()
        key = alloc.add_arm("j", "dfs")
        alloc.record(key, 3, 1.5)
        stats = alloc.record(key, 7, 25.0, finding=True)
        assert stats.pulls == 2
        assert stats.schedules == 10
        assert stats.payout == pytest.approx(26.5)
        assert stats.findings == 1
        assert stats.last_payout == 25.0
        assert stats.mean_payout == pytest.approx(2.65)
        assert alloc.total_pulls == 2
        assert alloc.total_schedules == 10

    def test_zero_schedule_slice_rejected(self):
        alloc = UCBAllocator()
        key = alloc.add_arm("j", "dfs")
        with pytest.raises(ValueError, match=">= 1 schedule"):
            alloc.record(key, 0, 1.0)

    def test_retire_removes_from_selection_keeps_stats(self):
        alloc = UCBAllocator()
        key = alloc.add_arm("j", "dfs")
        alloc.record(key, 5, 2.0)
        alloc.retire(key)
        assert alloc.select() is None
        assert alloc.arm(key).schedules == 5
        assert [s.key for s in alloc.arms()] == [key]
        assert alloc.live_arms() == []

    def test_retire_job_sweeps_every_arm_of_that_job(self):
        alloc = UCBAllocator()
        alloc.add_arm("j1", "dfs")
        alloc.add_arm("j1", "random")
        other = alloc.add_arm("j2", "dfs")
        assert alloc.retire_job("j1") == 2
        assert alloc.retire_job("j1") == 0  # idempotent
        assert alloc.select() == other


class TestReporting:
    def test_stats_and_summary_shapes(self):
        alloc = UCBAllocator()
        key = alloc.add_arm("job", "dfs")
        alloc.record(key, 4, 2.0, finding=True)
        (row,) = alloc.stats()
        assert row == {
            "job": "job",
            "strategy": "dfs",
            "pulls": 1,
            "schedules": 4,
            "payout": 2.0,
            "mean_payout": 0.5,
            "findings": 1,
            "retired": False,
        }
        assert alloc.summary() == {
            "arms": 1,
            "live": 1,
            "pulls": 1,
            "schedules": 4,
            "exploration": alloc.exploration,
        }

    def test_mean_payout_zero_before_first_pull(self):
        assert ArmStats(job="j", strategy="s").mean_payout == 0.0

    def test_metrics_and_gauges_emitted(self):
        registry = obs_metrics.enable()
        try:
            alloc = UCBAllocator()
            key = alloc.add_arm("j1", "dfs")
            alloc.add_arm("j1", "random")
            alloc.record(key, 6, 3.0, finding=True)
            alloc.retire(key)
        finally:
            obs_metrics.disable()
        labels = {"job": "j1", "strategy": "dfs"}
        assert registry.counter("alloc.pulls", **labels) == 1
        assert registry.counter("alloc.schedules_spent", **labels) == 6
        assert registry.counter("alloc.payout", **labels) == 3.0
        assert registry.counter("alloc.findings", **labels) == 1
        assert registry.gauge("alloc.arms_live") == 1
        assert registry.gauge("alloc.arms_total") == 2
