"""Tests for the adaptive strategy race (``repro.alloc.adaptive``)."""

import pytest

from repro.alloc import adaptive_first_finding, derive_horizon
from repro.alloc.adaptive import _SamplerArm
from repro.kernels import get_kernel
from repro.sim import CooperativeScheduler, FixedScheduler, run_program
from tests import helpers


def _fails(run):
    return run.failed


class TestDeriveHorizon:
    def test_tracks_real_step_count(self):
        kernel = get_kernel("atomicity_single_var")
        horizon = derive_horizon(kernel.buggy)
        coop = run_program(kernel.buggy, CooperativeScheduler())
        assert horizon >= len(coop.schedule)
        assert horizon >= 4

    def test_floor_applies_to_degenerate_programs(self):
        program = helpers.yield_only(steps=1, threads=1)
        assert derive_horizon(program) == 4


class TestAdaptiveRace:
    def test_finds_kernel_bug_and_names_winner(self):
        kernel = get_kernel("atomicity_single_var")
        outcome = adaptive_first_finding(kernel.buggy, kernel.failure)
        assert outcome.found
        assert outcome.winner in ("dfs", "sleepset", "random", "pct")
        assert outcome.schedules >= 1
        assert outcome.pulls >= 1
        assert outcome.witness_schedule
        # The witness replays to an actual failure.
        replayed = run_program(
            kernel.buggy, FixedScheduler(outcome.witness_schedule)
        )
        assert kernel.failure(replayed)
        # Per-arm stats cover every registered strategy.
        assert {row["strategy"] for row in outcome.arms} == {
            "dfs", "sleepset", "random", "pct"
        }

    def test_race_is_deterministic(self):
        kernel = get_kernel("deadlock_abba")
        a = adaptive_first_finding(kernel.buggy, kernel.failure)
        b = adaptive_first_finding(kernel.buggy, kernel.failure)
        assert a.found == b.found
        assert a.winner == b.winner
        assert a.schedules == b.schedules
        assert a.pulls == b.pulls
        assert a.witness_schedule == b.witness_schedule

    def test_proven_clean_retires_the_whole_race(self):
        """A complete systematic drain of a bug-free space ends the race
        long before ``max_total`` — samplers are not left to bleed."""
        program = helpers.locked_counter()
        outcome = adaptive_first_finding(program, _fails, max_total=4000)
        assert not outcome.found
        assert outcome.winner is None
        assert outcome.schedules < 4000
        assert all(row["retired"] for row in outcome.arms)

    def test_strategy_subset_is_honoured(self):
        kernel = get_kernel("atomicity_single_var")
        outcome = adaptive_first_finding(
            kernel.buggy, kernel.failure, strategies=("random",)
        )
        assert outcome.found
        assert outcome.winner == "random"
        assert [row["strategy"] for row in outcome.arms] == ["random"]

    def test_budget_cap_is_respected(self):
        program = helpers.racy_counter(threads=3)

        def never(run):
            return False

        outcome = adaptive_first_finding(
            program, never, max_total=50, strategies=("random", "pct")
        )
        assert not outcome.found
        assert outcome.schedules <= 50

    def test_argument_validation(self):
        kernel = get_kernel("atomicity_single_var")
        with pytest.raises(ValueError, match="max_total"):
            adaptive_first_finding(kernel.buggy, kernel.failure, max_total=0)
        with pytest.raises(ValueError, match="probe_budget"):
            adaptive_first_finding(
                kernel.buggy, kernel.failure, probe_budget=0
            )
        with pytest.raises(ValueError, match="unknown strategies"):
            adaptive_first_finding(
                kernel.buggy, kernel.failure, strategies=("dfs", "ouija")
            )


class TestSamplerSeedOffsets:
    """Randomized arms resume by seed offset: sliced pulls reproduce the
    uninterrupted seed loop exactly (the sampler analogue of frontier
    checkpointing)."""

    @pytest.mark.parametrize("strategy", ["random", "pct"])
    def test_sliced_pulls_match_one_big_pull(self, strategy):
        program = helpers.racy_counter(threads=3)

        def never(run):
            return False

        def make():
            return _SamplerArm(
                strategy, program, never,
                max_steps=5000, seed=7, pct_depth=3, horizon=12,
            )

        sliced_arm = make()
        sliced = []
        for budget in (1, 2, 3, 4):
            sliced.extend(sliced_arm.pull(budget).outcomes)
        whole = make().pull(10).outcomes
        assert sliced == whole
        assert sliced_arm.next_offset == 10
