"""Fix strategy and verification tests."""

import pytest

from repro.bugdb.schema import FixStrategy
from repro.errors import FixError
from repro.fixes import (
    FIX_DESCRIPTIONS,
    apply_strategy,
    audit_bad_patches,
    bad_patches,
    fixes_for,
    verify_all_fixes,
    verify_fix,
)
from repro.kernels import all_kernels, get_kernel


class TestTaxonomy:
    def test_every_strategy_documented(self):
        assert set(FIX_DESCRIPTIONS) == set(FixStrategy)

    def test_fixes_for_lists_primary_first(self):
        kernel = get_kernel("deadlock_abba")
        strategies = [s for s, _ in fixes_for(kernel)]
        assert strategies[0] is FixStrategy.ACQUIRE_ORDER
        assert FixStrategy.GIVE_UP_RESOURCE in strategies

    def test_apply_strategy_returns_matching_program(self):
        kernel = get_kernel("atomicity_single_var")
        program = apply_strategy(kernel, FixStrategy.ADD_LOCK)
        assert "add-lock" in program.name

    def test_apply_missing_strategy_raises(self):
        kernel = get_kernel("order_use_before_init")
        with pytest.raises(FixError, match="no give-up-resource fix"):
            apply_strategy(kernel, FixStrategy.GIVE_UP_RESOURCE)


class TestVerification:
    def test_all_shipped_fixes_verify_clean(self):
        for kernel in all_kernels():
            for strategy, verification in verify_all_fixes(kernel).items():
                assert verification.clean, (kernel.name, strategy)
                assert verification.complete, (kernel.name, strategy)

    def test_buggy_program_fails_verification_with_counterexample(self):
        kernel = get_kernel("atomicity_single_var")
        verification = verify_fix(kernel, kernel.buggy)
        assert not verification.clean
        assert verification.counterexample

    def test_counterexample_replays_to_failure(self):
        from repro.sim import replay

        kernel = get_kernel("multivar_buffer_flag")
        verification = verify_fix(kernel, kernel.buggy)
        rerun = replay(kernel.buggy, verification.counterexample)
        assert kernel.failure(rerun)

    def test_summary_mentions_verdict(self):
        kernel = get_kernel("deadlock_self")
        good = verify_fix(kernel, kernel.fixed)
        bad = verify_fix(kernel, kernel.buggy)
        assert "clean" in good.summary()
        assert "STILL BUGGY" in bad.summary()


class TestBadPatches:
    def test_two_bad_patches_modelled(self):
        assert len(bad_patches()) == 2

    def test_sleep_patch_still_manifests(self):
        audits = audit_bad_patches()
        assert all(not v.clean for v in audits)

    def test_sleep_patch_counterexample_is_replayable(self):
        from repro.fixes import bad_patch_sleep
        from repro.sim import replay

        kernel, patched, _why = bad_patch_sleep()
        verification = verify_fix(kernel, patched)
        assert not verification.clean
        rerun = replay(patched, verification.counterexample)
        assert kernel.failure(rerun)

    def test_partial_lock_patch_still_manifests(self):
        from repro.fixes import bad_patch_partial_lock

        kernel, patched, why = bad_patch_partial_lock()
        verification = verify_fix(kernel, patched)
        assert not verification.clean
        assert "one side" in why

    def test_sleep_patch_keeps_manifesting_in_schedule_space(self):
        """Sleeps shift wall-clock odds but leave the interleaving space buggy.

        In fact the extra scheduling points *widen* the window when
        measured over schedules — which is exactly why timing-based fixes
        pass stress tests on the developer's machine and fail in the
        field.
        """
        from repro.fixes import bad_patch_sleep
        from repro.sim import Explorer

        kernel, patched, _why = bad_patch_sleep()
        buggy_rate = Explorer(kernel.buggy).explore(
            predicate=kernel.failure
        ).match_rate()
        patched_rate = Explorer(patched).explore(
            predicate=kernel.failure
        ).match_rate()
        assert patched_rate > 0
        assert patched_rate >= buggy_rate  # more decision points, wider window
