# Offline-friendly targets for the repro repository.

PYTHON ?= python3

.PHONY: install test bench bench-timed examples report fuzz validate loc

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

# Smoke mode: run every benchmarks/bench_*.py once (no timing repeats)
# and refresh every BENCH_*.json artifact in one command.
bench:
	$(PYTHON) -m pytest benchmarks/ -q --benchmark-disable

bench-timed:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f > /dev/null && echo OK; done

report:
	$(PYTHON) -m repro report

fuzz:
	$(PYTHON) -m repro fuzz --programs 100

validate:
	$(PYTHON) -m repro validate

loc:
	@find src tests benchmarks examples tools -name "*.py" | xargs wc -l | tail -1
