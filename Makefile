# Offline-friendly targets for the repro repository.

PYTHON ?= python3

.PHONY: install test bench examples report fuzz validate loc

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	@for f in examples/*.py; do echo "== $$f =="; $(PYTHON) $$f > /dev/null && echo OK; done

report:
	$(PYTHON) -m repro report

fuzz:
	$(PYTHON) -m repro fuzz --programs 100

validate:
	$(PYTHON) -m repro validate

loc:
	@find src tests benchmarks examples tools -name "*.py" | xargs wc -l | tail -1
