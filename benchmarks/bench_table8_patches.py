"""T8 — first-patch quality (the 'mistakes during fixing' statistic).

Paper shape: 17 of 105 first patches were themselves wrong.  The bench
regenerates the per-application table and then demonstrates the study's
implication by pushing two modelled bad first patches (the add-a-sleep
non-fix and a partial-locking patch) through the exhaustive verifier:
both must be rejected with a replayable counterexample.
"""

from repro.fixes import audit_bad_patches
from repro.study import table8_patch_quality


def test_table8_patch_quality(benchmark, db):
    table = benchmark(table8_patch_quality, db)
    assert table.cell("Total", "Buggy first patches") == 17
    assert table.cell("Total", "Bugs examined") == 105
    print()
    print(table.format())


def test_table8_bad_patch_audit(benchmark):
    audits = benchmark.pedantic(audit_bad_patches, rounds=1, iterations=1)
    assert len(audits) == 2
    for verification in audits:
        assert not verification.clean
        assert verification.counterexample
    print()
    for verification in audits:
        print(f"  {verification.summary()}")
