"""Adaptive (UCB1) budget allocation vs fixed search strategies.

The fleet-scheduling question behind ``repro serve --alloc ucb``,
measured on a mixed corpus (every bug kernel plus generated programs —
some buggy, some failure-free): *how many schedules does a first finding
cost when you must pick a strategy up front, vs letting a bandit
discover the right one per program?*

Each fixed strategy pays its own worst cases:

* ``dfs`` / ``sleepset`` — systematic search is unbeatable on small
  state spaces but grinds through deep ones in submission order;
* ``random`` / ``pct`` — sampling finds "easy probability" bugs fast,
  but pays the full budget cap on every failure-free program, forever,
  because sampling can never prove absence.

The adaptive policy (:func:`repro.alloc.adaptive_first_finding`) probes
every arm with tiny slices, then spends where the payout is: it tracks
the systematic arms on small/clean programs (a complete search retires
the whole race) and walks away to samplers when the state space is deep
and the bug is random-reachable.  The recorded aggregate asserts the
headline: **adaptive ≤ every fixed strategy in total, and strictly
beats at least two of them** — no oracle told it which arm to pull.

Spend is measured in *schedule attempts* (runs + memo hits + sleep-set
prunes — the same unit the allocator charges), capped at ``CAP`` per
program per strategy.  Results go to ``BENCH_alloc.json``
(``REPRO_BENCH_OUT`` overrides the path).
"""

import json
import os
from pathlib import Path

from repro.alloc import adaptive_first_finding, derive_horizon
from repro.kernels import all_kernels
from repro.sim import (
    Explorer,
    PCTScheduler,
    RandomScheduler,
    SleepSetExplorer,
    run_program,
)
from repro.sim.generate import GeneratorConfig, generate_program

#: Per-program, per-strategy schedule-attempt cap (the adaptive policy's
#: ``max_total``): a fixed strategy that never finds the bug is charged
#: exactly this.
CAP = 4000

FIXED_STRATEGIES = ("dfs", "sleepset", "random", "pct")

#: Generated-program seeds: a deterministic slice of the corpus used by
#: the sim property tests, small threads/ops so state spaces stay
#: completable; crash probability keeps a mix of buggy and clean.  This
#: band punishes the samplers: they pay the full cap on every clean
#: program, while a systematic search proves absence and stops.
_GEN_CONFIG = GeneratorConfig(
    threads=(2, 3), ops_per_thread=(2, 5), variables=2, locks=2,
    crash_probability=0.25,
)
_GEN_SEEDS = tuple(range(12))

#: The deep band punishes the systematic searches: 4-5 threads with
#: long bodies make the interleaving space far exceed the cap, while
#: the crashes are "random-likely" — a handful of random seeds hit
#: them, but they sit thousands of attempts deep in DFS/sleep-set visit
#: order.  Seeds were selected (deterministically, offline) for exactly
#: that profile: random finds each bug in < 60 seeds where the
#: systematic searches spend >= 1000 attempts or bust the cap.
_DEEP_CONFIG = GeneratorConfig(
    threads=(4, 5), ops_per_thread=(4, 7), variables=3, locks=2,
    crash_probability=0.08,
)
_DEEP_SEEDS = (9, 21, 31, 35, 44, 62, 104)


def _fails(run):
    return run.failed


def corpus():
    """(name, program, failure) triples: all kernels + generated programs."""
    rows = [
        (kernel.name, kernel.buggy, kernel.failure)
        for kernel in all_kernels()
    ]
    for seed in _GEN_SEEDS:
        program = generate_program(seed, _GEN_CONFIG)
        rows.append((f"gen{seed:02d}", program, _fails))
    for seed in _DEEP_SEEDS:
        program = generate_program(seed, _DEEP_CONFIG)
        rows.append((f"deep{seed:03d}", program, _fails))
    return rows


def spend_sampler(program, failure, strategy):
    """Schedules a fixed sampler spends to first finding (CAP if never)."""
    horizon = derive_horizon(program)
    for seed in range(CAP):
        if strategy == "random":
            scheduler = RandomScheduler(seed=seed)
        else:
            scheduler = PCTScheduler(seed=seed, depth=3, horizon=horizon)
        run = run_program(program, scheduler, max_steps=5000)
        if failure(run):
            return seed + 1, True
    return CAP, False


def spend_systematic(program, failure, strategy):
    """Attempts a fixed systematic search spends to first finding.

    A complete search of a failure-free program stops at its true cost
    (it *proved* absence); an incomplete one is charged what it spent,
    which equals CAP when the budget ran dry.
    """
    cls = Explorer if strategy == "dfs" else SleepSetExplorer
    explorer = cls(program, max_schedules=CAP, keep_matches=1, memoize=True)
    result = explorer.explore(predicate=failure, stop_on_first=True)
    attempts = (
        result.schedules_run
        + result.cache_hits
        + getattr(explorer, "pruned_runs", 0)
    )
    return min(attempts, CAP), bool(result.match_count)


def collect():
    """Race every strategy over the corpus; return rows + totals."""
    rows = []
    totals = {name: 0 for name in FIXED_STRATEGIES}
    totals["adaptive"] = 0
    for name, program, failure in corpus():
        row = {"program": name}
        for strategy in ("dfs", "sleepset"):
            spent, found = spend_systematic(program, failure, strategy)
            row[strategy] = spent
            row[f"{strategy}_found"] = found
            totals[strategy] += spent
        for strategy in ("random", "pct"):
            spent, found = spend_sampler(program, failure, strategy)
            row[strategy] = spent
            row[f"{strategy}_found"] = found
            totals[strategy] += spent
        race = adaptive_first_finding(
            program, failure, max_total=CAP, seed=0
        )
        row["adaptive"] = race.schedules
        row["adaptive_found"] = race.found
        row["adaptive_winner"] = race.winner
        totals["adaptive"] += race.schedules
        rows.append(row)
    return {
        "cap": CAP,
        "programs": len(rows),
        "rows": rows,
        "totals": totals,
    }


def record_trajectory(payload):
    path = Path(os.environ.get("REPRO_BENCH_OUT", "BENCH_alloc.json"))
    path.write_text(json.dumps({"bench": "alloc", **payload}, indent=2))
    return path


def test_alloc_adaptive_beats_fixed(benchmark):
    payload = benchmark.pedantic(collect, rounds=1, iterations=1)
    out = record_trajectory(payload)
    totals = payload["totals"]
    print()
    header = f"  {'program':26s}" + "".join(
        f" {s:>9s}" for s in (*FIXED_STRATEGIES, "adaptive")
    )
    print(header + "  winner")
    for row in payload["rows"]:
        cells = "".join(
            f" {row[s]:>9d}" for s in (*FIXED_STRATEGIES, "adaptive")
        )
        print(f"  {row['program']:26s}{cells}  {row['adaptive_winner'] or '-'}")
    print(
        "  totals:"
        + "".join(
            f" {s}={totals[s]}" for s in (*FIXED_STRATEGIES, "adaptive")
        )
    )
    print(f"  trajectory written to {out}")

    assert payload["programs"] >= 20

    # Correctness before economics: the bandit found every bug that any
    # fixed strategy found.
    for row in payload["rows"]:
        any_fixed = any(row[f"{s}_found"] for s in FIXED_STRATEGIES)
        assert row["adaptive_found"] == any_fixed or row["adaptive_found"], row

    # The headline: adaptive never loses the aggregate, and strictly
    # beats at least two fixed strategies (the samplers bleed out on
    # failure-free programs; one systematic policy may tie on a corpus
    # this small, but not win).
    best_fixed = min(totals[s] for s in FIXED_STRATEGIES)
    assert totals["adaptive"] <= best_fixed, totals
    strictly_beaten = sum(
        1 for s in FIXED_STRATEGIES if totals["adaptive"] < totals[s]
    )
    assert strictly_beaten >= 2, totals
