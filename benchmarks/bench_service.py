"""S1 (extension) — checking-as-a-service economics: dedup pays for itself.

One service session over the kernel corpus, recorded into
``BENCH_service.json`` (set ``REPRO_BENCH_OUT`` to choose the path).
Per kernel, two submit-to-verdict latencies:

* **first submission** — the job runs on the worker fleet and pays its
  engine runs;
* **duplicate submission** — the identical resubmission is answered
  from the persistent result cache with **zero** engine runs, orders of
  magnitude faster.

The session footer records the dashboard's dedup ratio (0.5 by
construction here: every kernel asked twice), total engine runs paid
(exactly the first round's), and the cache hit latency distribution.
The fleet runs inline (``pool="none"``) so the bench measures the
service machinery — queue, cache, dashboard — not fork start-up noise.
"""

import asyncio
import json
import os
from pathlib import Path
from time import perf_counter

from repro.kernels import kernel_names
from repro.service import Dashboard, ReproService, ResultCache, WorkerFleet


def _session(cache_root):
    """Submit every kernel twice against one live service."""

    async def main():
        service = ReproService(
            ResultCache(cache_root), fleet=WorkerFleet(size=2, pool="none")
        )
        await service.start()
        rows = []
        try:
            for name in kernel_names():
                start = perf_counter()
                job = service.submit("detect", name)
                await service.wait(job.id, timeout=600)
                first_wall = perf_counter() - start

                start = perf_counter()
                duplicate = service.submit("detect", name)
                cached_wall = perf_counter() - start
                assert duplicate.cached and duplicate.engine_runs == 0
                assert duplicate.verdict == job.verdict

                rows.append({
                    "kernel": name,
                    "first_wall_seconds": first_wall,
                    "cached_wall_seconds": cached_wall,
                    "engine_runs": job.engine_runs,
                    "speedup": first_wall / cached_wall if cached_wall else None,
                })
            totals = Dashboard(service).as_dict()["totals"]
        finally:
            await service.close()
        return rows, totals

    return asyncio.run(main())


def collect(tmp_root):
    rows, totals = _session(tmp_root / "cache")
    return {
        "rows": rows,
        "dedup_ratio": totals["dedup_ratio"],
        "engine_runs": totals["engine_runs"],
        "submissions": totals["submissions"],
        "cache_hits": totals["cache_hits"],
    }


def record_trajectory(payload):
    path = Path(os.environ.get("REPRO_BENCH_OUT", "BENCH_service.json"))
    path.write_text(json.dumps({"bench": "service", **payload}, indent=2))
    return path


def test_service_dedup_latency(benchmark, tmp_path):
    payload = benchmark.pedantic(
        collect, args=(tmp_path,), rounds=1, iterations=1
    )
    out = record_trajectory(payload)
    rows = payload["rows"]
    print()
    print(f"  {'kernel':26s} {'first':>9s} {'cached':>9s} {'runs':>5s}")
    for r in rows:
        print(
            f"  {r['kernel']:26s} {r['first_wall_seconds'] * 1e3:>7.1f}ms "
            f"{r['cached_wall_seconds'] * 1e6:>7.0f}us {r['engine_runs']:>5d}"
        )
    print(
        f"  dedup ratio {payload['dedup_ratio']:.0%}, "
        f"{payload['engine_runs']} engine runs for "
        f"{payload['submissions']} submissions"
    )
    print(f"  trajectory written to {out}")

    # Every kernel asked twice, answered once: the dashboard proves the
    # second round was free.
    assert payload["submissions"] == 2 * len(rows)
    assert payload["cache_hits"] == len(rows)
    assert payload["dedup_ratio"] == 0.5
    assert payload["engine_runs"] == sum(r["engine_runs"] for r in rows)

    # The economics: a cached answer must be much cheaper than the run
    # it replaces.  Conservative 10x floor on the corpus totals; the
    # measured gap is orders of magnitude.
    total_first = sum(r["first_wall_seconds"] for r in rows)
    total_cached = sum(r["cached_wall_seconds"] for r in rows)
    assert total_cached < total_first / 10, (total_first, total_cached)
