"""T6 — access-set sizes whose enforced order guarantees manifestation.

Paper shape (Finding 7/8): 92% of the bugs manifest deterministically
once a partial order over at most four accesses is enforced.  This bench
regenerates the histogram AND cross-validates the claim executably: for
every kernel, enforcing its recorded order manifests the bug on each of
several randomly scheduled runs.
"""

from repro.kernels import all_kernels
from repro.manifest import order_guarantees
from repro.study import table6_accesses


def test_table6_access_histogram(benchmark, db):
    table = benchmark(table6_accesses, db)
    small = sum(
        table.cell(n, "Bugs") for n in (2, 3, 4) if any(r[0] == n for r in table.rows)
    )
    assert small == 97
    assert sum(table.column("Bugs")) == 105
    print()
    print(table.format())


def test_table6_kernel_guarantee(benchmark):
    def guarantee_all():
        return {
            kernel.name: order_guarantees(
                kernel.buggy, kernel.manifest_order, kernel.failure, attempts=5
            )
            for kernel in all_kernels()
        }

    verdicts = benchmark.pedantic(guarantee_all, rounds=1, iterations=1)
    assert all(verdicts.values()), verdicts
    print()
    for name, verdict in verdicts.items():
        print(f"  {name}: order guarantees manifestation = {verdict}")
