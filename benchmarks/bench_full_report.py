"""The headline artifact: the complete study report regenerates and passes.

One bench to rule the reproduction: build every table, re-derive every
finding, and run the kernel evidence (manifestation + fix verification +
order-enforcement guarantee on all 13 kernels).  The report must end in
ALL FINDINGS REPRODUCED.
"""

from repro.study import generate_report


def test_full_report_reproduces_all_findings(benchmark):
    report = benchmark.pedantic(generate_report, rounds=1, iterations=1)
    assert report.all_findings_pass
    assert len(report.tables) == 10
    assert len(report.kernel_evidence) == 13
    assert all("NO" not in line for line in report.kernel_evidence)
    print()
    print(report.format())
