"""T1 — the studied application suite (paper Table 1)."""

from repro.study import table1_applications


def test_table1_applications(benchmark, db):
    table = benchmark(table1_applications, db)
    assert table.cell("Total", "Bugs examined") == 105
    assert table.cell("MySQL", "Bugs examined") == 23
    assert table.cell("Apache", "Bugs examined") == 17
    assert table.cell("Mozilla", "Bugs examined") == 57
    assert table.cell("OpenOffice", "Bugs examined") == 8
    print()
    print(table.format())
