"""Perf extension — DPOR economics, composed accelerators, stealing.

Three experiments, recorded into ``BENCH_dpor.json`` (set
``REPRO_BENCH_OUT_DPOR`` to choose the path):

* **Reduction economics** — per kernel: schedules run and engine runs
  *launched* (completed + pruned mid-flight; each launched run executes
  its prefix, so launches are the cost-proportional count) under plain
  DFS, sleep sets, and DPOR with source sets.  Asserted: DPOR preserves
  the plain-DFS outcome set everywhere, never runs more schedules than
  sleep sets, and launches strictly fewer runs on a broad slice of the
  corpus — including the torn-invariant and three-way-deadlock kernels,
  where races are plentiful and sleep sets burn many launches pruning
  after the fact.

* **Composed accelerators** — per kernel: DPOR crossed with each
  accelerator it now accepts.  ``memoize`` (launched runs and cache
  hits; outcome set asserted equal to serial DPOR), ``preemption_bound``
  (schedules vs the bounded plain DFS exploring the same subtree;
  asserted never more), and ``workers`` (a real forced-fork
  :class:`ParallelDPORExplorer` run asserted bit-identical to serial
  DPOR, with a 4-worker makespan *modeled* from the per-round accepted
  item sizes — deterministic schedule-units, immune to machine noise).
  Asserted: on the flagship race-heavy kernels the modeled DPOR×workers
  makespan beats every prior configuration's serial schedule count —
  DFS, sleep sets, and serial DPOR.

* **Work-stealing balance** — the torn-invariant kernel's initial
  prefix subtrees span orders of magnitude (single-digit to >1,200
  schedules), which is the worst case for static sharding: whoever gets
  the big subtree finishes last while the rest idle.  Subtree sizes are
  measured (in schedules — deterministic run-units, immune to machine
  noise), and 4-worker makespans are *modeled* from them: static
  sharding can hand out whole items but never split one, stealing
  splits the big items across idle workers.  A real forced-fork steal
  run is also recorded — merged result equal to serial, donation/idle
  telemetry (forced with ``donation="always"`` so the path is always
  exercised), and the run-log record carrying the steal fields.  Real
  walls are then measured best-of-N for both strategies with default
  settings and steal is asserted no slower than shard (small tolerance
  for scheduler noise): after the donation-policy and hot-path work,
  steal mode must earn its default even on a single-core CI machine.
"""

import json
import os
from pathlib import Path
from time import perf_counter

from repro.kernels import all_kernels, get_kernel
from repro.obs import runlog as obs_runlog
from repro.sim.dpor import DPORExplorer
from repro.sim.dpor_parallel import ParallelDPORExplorer
from repro.sim.explorer import Explorer, _emit_exploration_runlog
from repro.sim.parallel import ParallelExplorer
from repro.sim.reduction import SleepSetExplorer

BUDGET = 100000
STEAL_WORKERS = 4
#: workers * shard_factor: the root phase cuts ~8 initial items on the
#: torn kernel, whose sizes make the imbalance story concrete.
STEAL_SHARD_FACTOR = 2
#: Best-of-N rounds for the real steal-vs-shard wall comparison.
WALL_ROUNDS = 3
#: Steal may be this much slower than shard before the wall assertion
#: fails — absorbs scheduler noise, not a systematic gap.
WALL_TOLERANCE = 1.10
#: Preemption bound for the composed DPOR×bound rows.
COMPOSED_BOUND = 2

#: Kernels the strict launched-runs win is asserted on (the acceptance
#: floor; the recorded rows show the win is actually broader).
MUST_IMPROVE = ("multivar_torn_invariant", "deadlock_three_way")
MIN_STRICT_WINS = 5


def collect_reduction():
    rows = []
    for kernel in all_kernels():
        full = Explorer(kernel.buggy, max_schedules=BUDGET).explore(
            predicate=kernel.failure
        )
        sleep = SleepSetExplorer(kernel.buggy, max_schedules=BUDGET)
        start = perf_counter()
        sleep_result = sleep.explore(predicate=kernel.failure)
        sleep_wall = perf_counter() - start
        dpor = DPORExplorer(kernel.buggy, max_schedules=BUDGET)
        start = perf_counter()
        dpor_result = dpor.explore(predicate=kernel.failure)
        dpor_wall = perf_counter() - start
        assert set(dpor_result.outcomes) == set(full.outcomes), kernel.name
        assert set(sleep_result.outcomes) == set(full.outcomes), kernel.name
        rows.append({
            "kernel": kernel.name,
            "dfs_schedules": full.schedules_run,
            "sleepset_schedules": sleep_result.schedules_run,
            "sleepset_pruned": sleep.pruned_runs,
            "sleepset_launched": sleep_result.schedules_run + sleep.pruned_runs,
            "sleepset_wall_seconds": sleep_wall,
            "dpor_schedules": dpor_result.schedules_run,
            "dpor_pruned": dpor.pruned_runs,
            "dpor_launched": dpor_result.schedules_run + dpor.pruned_runs,
            "dpor_backtrack_points": dpor.backtrack_points,
            "dpor_races_detected": dpor.races_detected,
            "dpor_wall_seconds": dpor_wall,
        })
    return rows


def _modeled_rounds_makespan(round_sizes, total, workers):
    """Modeled DPOR×workers makespan in schedule units.

    Serial work (root phase plus narrow-frontier steps between rounds)
    runs alone; within a round the accepted items spread greedily over
    the workers.  Exact, deterministic, and directly comparable to a
    serial explorer's schedule count (= its makespan on one worker).
    """
    in_rounds = sum(size for sizes in round_sizes for size in sizes)
    makespan = total - in_rounds  # serial-phase schedules
    for sizes in round_sizes:
        finish = [0] * workers
        for size in sorted(sizes, reverse=True):
            slot = finish.index(min(finish))
            finish[slot] += size
        makespan += max(finish)
    return makespan


def collect_composed():
    rows = []
    for kernel in all_kernels():
        serial = DPORExplorer(kernel.buggy, max_schedules=BUDGET).explore(
            predicate=kernel.failure
        )
        # DPOR × memoize: same outcome set, revisited states pruned.
        memo = DPORExplorer(
            kernel.buggy, max_schedules=BUDGET, memoize=True
        )
        memo_result = memo.explore(predicate=kernel.failure)
        assert set(memo_result.outcomes) == set(serial.outcomes), kernel.name
        # DPOR × bound: same subtree as the bounded plain DFS, fewer
        # (or equal) schedules.
        bounded_dfs = Explorer(
            kernel.buggy, max_schedules=BUDGET,
            preemption_bound=COMPOSED_BOUND,
        ).explore(predicate=kernel.failure)
        bounded = DPORExplorer(
            kernel.buggy, max_schedules=BUDGET,
            preemption_bound=COMPOSED_BOUND,
        ).explore(predicate=kernel.failure)
        assert set(bounded.outcomes) == set(bounded_dfs.outcomes), kernel.name
        assert bounded.schedules_run <= bounded_dfs.schedules_run, kernel.name
        # DPOR × workers: real forced-fork run, bit-identical merge.
        par = ParallelDPORExplorer(
            kernel.buggy, workers=STEAL_WORKERS, max_schedules=BUDGET,
            pool="fork",
        )
        par_result = par.explore(predicate=kernel.failure)
        assert par_result.outcomes == serial.outcomes, kernel.name
        assert par_result.schedules_run == serial.schedules_run, kernel.name
        makespan = _modeled_rounds_makespan(
            par.round_sizes, par_result.schedules_run, STEAL_WORKERS
        )
        rows.append({
            "kernel": kernel.name,
            "dpor_schedules": serial.schedules_run,
            "memo_schedules": memo_result.schedules_run,
            "memo_cache_hits": memo_result.cache_hits,
            "bound": COMPOSED_BOUND,
            "bounded_dfs_schedules": bounded_dfs.schedules_run,
            "bounded_dpor_schedules": bounded.schedules_run,
            "workers": STEAL_WORKERS,
            "parallel_rounds": par.rounds,
            "parallel_items_accepted": par.items_accepted,
            "parallel_items_wasted": par.items_wasted,
            "parallel_modeled_makespan": makespan,
        })
    return rows


def _torn_shard_sizes():
    """Initial work items of the torn kernel, sized in schedules.

    Reproduces the parallel explorer's root phase (same frontier
    target), then explores each leftover prefix serially — the exact
    subtree a static shard would own.
    """
    kernel = get_kernel("multivar_torn_invariant")
    serial = Explorer(kernel.buggy, max_schedules=BUDGET)
    target = max(2, STEAL_WORKERS * STEAL_SHARD_FACTOR)
    root, frontier = serial._search(
        [([], 0, None)], kernel.failure, False, target
    )
    sizes = []
    for prefix, paid, snapshot in reversed(frontier):  # serial DFS order
        shard_explorer = Explorer(kernel.buggy, max_schedules=BUDGET)
        start = perf_counter()
        result, _ = shard_explorer._search(
            [(list(prefix), paid, snapshot)], kernel.failure, False, None
        )
        sizes.append({
            "schedules": result.schedules_run,
            "wall_seconds": perf_counter() - start,
        })
    return kernel, root.schedules_run, sizes


def _modeled_makespans(sizes, workers):
    """4-worker makespans in schedule units, from measured shard sizes.

    ``shard``: dynamic dispatch of whole items (``Pool.map`` with free
    workers pulling the next item) but no splitting — the big subtree
    is one worker's problem.  ``steal``: items are splittable down to
    single prefixes, so work spreads to the parallel lower bound.
    """
    finish = [0] * workers
    for item in sizes:
        slot = finish.index(min(finish))
        finish[slot] += item["schedules"]
    shard_makespan = max(finish)
    total = sum(item["schedules"] for item in sizes)
    steal_makespan = max(
        -(-total // workers),  # ceil: perfect spread of splittable work
        1,
    )
    return shard_makespan, steal_makespan, total


def collect_stealing():
    kernel, root_schedules, sizes = _torn_shard_sizes()
    shard_makespan, steal_makespan, total = _modeled_makespans(
        sizes, STEAL_WORKERS
    )
    serial = Explorer(kernel.buggy, max_schedules=BUDGET).explore(
        predicate=kernel.failure
    )
    records = []
    obs_runlog.set_runlog(records.append)
    try:
        walls = {}
        merged = None
        for strategy in ("shard", "steal"):
            explorer = ParallelExplorer(
                kernel.buggy,
                workers=STEAL_WORKERS,
                max_schedules=BUDGET,
                shard_factor=STEAL_SHARD_FACTOR,
                pool="fork",
                strategy=strategy,
                # The telemetry run forces donation so the steal fields
                # are populated even where donation="auto" would skip
                # it (single-core CI).
                donation="always" if strategy == "steal" else "auto",
            )
            result = explorer.explore(predicate=kernel.failure)
            assert result.outcomes == serial.outcomes, strategy
            assert result.schedules_run == serial.schedules_run, strategy
            walls[strategy] = result.wall_seconds
            if strategy == "steal":
                merged = result
                _emit_exploration_runlog(
                    "bench.steal", result, BUDGET, 5000, None,
                    STEAL_WORKERS, False, result.wall_seconds,
                )
        # The wall race: default settings, best of N per strategy.
        best_walls = {}
        for strategy in ("shard", "steal"):
            best = None
            for _ in range(WALL_ROUNDS):
                result = ParallelExplorer(
                    kernel.buggy,
                    workers=STEAL_WORKERS,
                    max_schedules=BUDGET,
                    shard_factor=STEAL_SHARD_FACTOR,
                    pool="fork",
                    strategy=strategy,
                ).explore(predicate=kernel.failure)
                assert result.outcomes == serial.outcomes, strategy
                if best is None or result.wall_seconds < best:
                    best = result.wall_seconds
            best_walls[strategy] = best
        first = ParallelExplorer(
            kernel.buggy,
            workers=STEAL_WORKERS,
            max_schedules=BUDGET,
            shard_factor=STEAL_SHARD_FACTOR,
            pool="fork",
            strategy="steal",
        ).explore(predicate=kernel.failure, stop_on_first=True)
    finally:
        obs_runlog.clear_runlog()
    (steal_record,) = [r for r in records if r["event"] == "bench.steal"]
    return {
        "kernel": kernel.name,
        "workers": STEAL_WORKERS,
        "root_schedules": root_schedules,
        "shard_sizes": sizes,
        "total_shard_schedules": total,
        "modeled_shard_makespan": shard_makespan,
        "modeled_steal_makespan": steal_makespan,
        "measured_wall_seconds": walls,
        "best_wall_seconds": best_walls,
        "wall_rounds": WALL_ROUNDS,
        "steal_donations": merged.steal_donations,
        "stolen_prefixes": merged.stolen_prefixes,
        "idle_seconds": merged.idle_seconds,
        "donate_seconds": merged.donate_seconds,
        "schedules_to_first_finding": first.schedules_to_first_finding,
        "runlog_steal_fields": {
            key: steal_record["result"][key]
            for key in (
                "steal_donations", "stolen_prefixes", "idle_seconds",
                "schedules_to_first_finding",
            )
        },
    }


def record_trajectory(rows, composed, stealing):
    path = Path(os.environ.get("REPRO_BENCH_OUT_DPOR", "BENCH_dpor.json"))
    path.write_text(json.dumps(
        {
            "bench": "dpor",
            "rows": rows,
            "composed": composed,
            "stealing": stealing,
        },
        indent=2,
    ))
    return path


def _collect():
    return collect_reduction(), collect_composed(), collect_stealing()


def test_dpor_and_stealing_economics(benchmark):
    rows, composed, stealing = benchmark.pedantic(
        _collect, rounds=1, iterations=1
    )
    out = record_trajectory(rows, composed, stealing)

    # DPOR never runs more schedules than sleep sets, anywhere.
    for r in rows:
        assert r["dpor_schedules"] <= r["sleepset_schedules"], r["kernel"]
    # And launches strictly fewer engine runs on a broad slice,
    # including the two race-heavy flagship kernels.
    strict = {
        r["kernel"] for r in rows
        if r["dpor_launched"] < r["sleepset_launched"]
    }
    assert len(strict) >= MIN_STRICT_WINS, sorted(strict)
    for name in MUST_IMPROVE:
        assert name in strict, (name, sorted(strict))

    # The modeled 4-worker makespan: splittable stealing beats
    # whole-item sharding on the imbalanced torn kernel.
    assert (
        stealing["modeled_steal_makespan"]
        < stealing["modeled_shard_makespan"]
    )
    # The real steal run exercised donation and reported it, all the
    # way into the run-log record.
    assert stealing["steal_donations"] > 0
    assert stealing["stolen_prefixes"] > 0
    assert stealing["runlog_steal_fields"]["steal_donations"] > 0
    # And in the wall race with default settings, steal is no slower
    # than shard (small tolerance for scheduler noise).
    assert (
        stealing["best_wall_seconds"]["steal"]
        <= stealing["best_wall_seconds"]["shard"] * WALL_TOLERANCE
    ), stealing["best_wall_seconds"]

    # DPOR×workers beats every prior configuration's schedule count on
    # the flagship kernels (modeled makespan in deterministic
    # schedule-units — one worker's makespan IS its schedule count).
    by_kernel = {r["kernel"]: r for r in rows}
    for row in composed:
        assert (
            row["bounded_dpor_schedules"] <= row["bounded_dfs_schedules"]
        ), row["kernel"]
        if row["kernel"] in MUST_IMPROVE:
            prior_best = min(
                by_kernel[row["kernel"]]["dfs_schedules"],
                by_kernel[row["kernel"]]["sleepset_schedules"],
                by_kernel[row["kernel"]]["dpor_schedules"],
            )
            assert row["parallel_modeled_makespan"] < prior_best, row

    print()
    print(f"  {'kernel':28s} {'dfs':>6s} {'ss run':>7s} {'ss launch':>10s} "
          f"{'dpor run':>9s} {'dpor launch':>12s}")
    for r in rows:
        marker = "*" if r["kernel"] in strict else " "
        print(
            f"  {r['kernel']:28s} {r['dfs_schedules']:6d} "
            f"{r['sleepset_schedules']:7d} {r['sleepset_launched']:10d} "
            f"{r['dpor_schedules']:9d} {r['dpor_launched']:11d}{marker}"
        )
    print(f"  (* = strictly fewer launched runs; {len(strict)}/{len(rows)})")
    print(f"  {'kernel':28s} {'dpor':>6s} {'memo':>6s} {'bnd-dfs':>8s} "
          f"{'bnd-dpor':>9s} {'par-span':>9s}")
    for row in composed:
        print(
            f"  {row['kernel']:28s} {row['dpor_schedules']:6d} "
            f"{row['memo_schedules']:6d} "
            f"{row['bounded_dfs_schedules']:8d} "
            f"{row['bounded_dpor_schedules']:9d} "
            f"{row['parallel_modeled_makespan']:9d}"
        )
    print(
        "  wall race (best of {n}): shard={shard:.3f}s "
        "steal={steal:.3f}s".format(
            n=stealing["wall_rounds"],
            shard=stealing["best_wall_seconds"]["shard"],
            steal=stealing["best_wall_seconds"]["steal"],
        )
    )
    print(
        "  stealing on {kernel} @ {workers} workers: shard sizes "
        "{sizes}, modeled makespan shard={shard} steal={steal} "
        "schedule-units, {don} donation(s) moved {pre} prefix(es), "
        "first finding at serial position {first}".format(
            kernel=stealing["kernel"],
            workers=stealing["workers"],
            sizes=[s["schedules"] for s in stealing["shard_sizes"]],
            shard=stealing["modeled_shard_makespan"],
            steal=stealing["modeled_steal_makespan"],
            don=stealing["steal_donations"],
            pre=stealing["stolen_prefixes"],
            first=stealing["schedules_to_first_finding"],
        )
    )
    print(f"  wrote {out}")
