"""E2 (extension) — manifestation rate: random / PCT / enforced order.

Quantifies the testing implication on every kernel.  Expected shape:

* cooperative (non-preemptive) scheduling: 0% on every kernel except the
  always-deadlocking self re-acquisition — the bugs need preemption;
* random and PCT: low, kernel-dependent rates;
* enforcing the recorded ≤4-access order: 100% on every kernel.

Also measures interleaving-space coverage: a small preemption bound
already reaches every kernel's bug (the 'few context switches suffice'
observation behind CHESS-style tools).
"""

from repro.kernels import all_kernels
from repro.manifest import compare_strategies
from repro.sim import Explorer


def collect_rates(runs=60):
    rates = {}
    for kernel in all_kernels():
        estimates = compare_strategies(kernel, runs=runs)
        rates[kernel.name] = {
            name: est.rate for name, est in estimates.items()
        }
    return rates


def test_strategy_comparison(benchmark):
    rates = benchmark.pedantic(collect_rates, rounds=1, iterations=1)
    print()
    print(f"  {'kernel':26s} {'coop':>6s} {'random':>8s} {'pct':>8s} {'enforced':>9s}")
    for name, r in rates.items():
        print(
            f"  {name:26s} {r['cooperative']:>6.0%} {r['random']:>8.1%} "
            f"{r['pct']:>8.1%} {r['enforced']:>9.0%}"
        )
    # Kernels that need zero preemptions manifest even cooperatively: the
    # self-deadlock (single thread) and the teardown order violation
    # (the parent runs to completion before its child ever starts).
    zero_preemption = {"deadlock_self", "order_teardown_use"}
    for name, r in rates.items():
        assert r["enforced"] == 1.0, name
        if name not in zero_preemption:
            assert r["cooperative"] == 0.0, name
            assert r["random"] < 1.0, name


def test_preemption_bound_two_reaches_every_bug(benchmark):
    """CHESS-style observation: two preemptions expose every kernel."""

    def check():
        reached = {}
        for kernel in all_kernels():
            explorer = Explorer(kernel.buggy, preemption_bound=2)
            result = explorer.explore(predicate=kernel.failure, stop_on_first=True)
            reached[kernel.name] = result.found
        return reached

    reached = benchmark.pedantic(check, rounds=1, iterations=1)
    assert all(reached.values()), reached
    print()
    for name in reached:
        print(f"  {name}: found within preemption bound 2")
