"""Figures — the paper's executable bug examples, regenerated.

The paper's figures are code excerpts of representative bugs (Mozilla
js-engine atomicity, MySQL binlog, Mozilla property cache multi-variable,
Mozilla thread-init order, lost wakeup, and the deadlock shapes).  Each
bench drives the corresponding kernel end to end: exploration finds a
manifesting interleaving with the recorded characteristics, the schedule
replays deterministically, and the paired fix verifies clean.
"""

import pytest

from repro.kernels import all_kernels, get_kernel
from repro.sim import replay

KERNEL_NAMES = [k.name for k in all_kernels()]


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_figure_kernel_manifests(benchmark, name):
    kernel = get_kernel(name)

    def explore():
        return kernel.find_manifestation()

    failing = benchmark.pedantic(explore, rounds=1, iterations=1)
    assert failing is not None, f"{name} never manifested"
    # Replay determinism: the found schedule reproduces the failure.
    rerun = replay(kernel.buggy, failing.schedule)
    assert kernel.failure(rerun)
    # Recorded characteristics hold on the actual failing execution.
    assert len(set(failing.schedule)) <= kernel.threads_involved
    print()
    print(f"  {kernel.summary()}")
    print(f"  manifesting schedule ({len(failing.schedule)} steps): "
          f"{failing.schedule}")
    print(f"  outcome: {failing.summary()}")


@pytest.mark.parametrize("name", KERNEL_NAMES)
def test_figure_kernel_fix_verifies(benchmark, name):
    kernel = get_kernel(name)

    def verify():
        return kernel.verify_fixed()

    clean = benchmark.pedantic(verify, rounds=1, iterations=1)
    assert clean, f"{name} fix failed exhaustive verification"
    print()
    print(f"  {kernel.name}: fix strategy '{kernel.fix_strategy.value}' "
          f"verified over every schedule")
