"""Simulator performance: engine step throughput and exploration speed.

Not a paper artifact — these benches track the substrate's own
performance so regressions in the engine/explorer hot paths are visible.
Typical numbers on a laptop-class machine: hundreds of thousands of
engine steps per second; thousands of explored schedules per second on
kernel-sized programs.

The parallel/memoization benches compare the serial plain DFS baseline
against the shipped fast path (``ParallelExplorer`` with sharding +
per-shard memoization) on the largest kernel exploration, asserting the
outcome set is preserved and the wall-clock speedup is at least 2x —
with the metrics registry supplying the *evidence* behind the speedup:
cache hit rate and per-shard schedule balance, not just two wall-clock
numbers.  ``test_observability_overhead`` pins the cost of the
observability layer itself (metrics disabled vs enabled vs profiled).
"""

import contextlib
import time

from repro.kernels import get_kernel
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.sim import (
    Acquire,
    Explorer,
    ParallelExplorer,
    Program,
    RandomScheduler,
    Read,
    Release,
    Write,
    run_program,
)


@contextlib.contextmanager
def _metrics(enabled: bool):
    """A fresh registry (or none), restoring whatever was active before.

    The conftest may have installed a session-wide registry via
    ``REPRO_METRICS_OUT``; these benches must not tear it down.
    """
    previous = obs_metrics.active()
    registry = obs_metrics.enable() if enabled else None
    if not enabled:
        obs_metrics.disable()
    try:
        yield registry
    finally:
        if previous is not None:
            obs_metrics.enable(previous)
        else:
            obs_metrics.disable()


def make_churn_program(threads: int = 4, iterations: int = 50) -> Program:
    """A locked counter ground through many iterations per thread."""

    def body():
        for _ in range(iterations):
            yield Acquire("L")
            value = yield Read("counter")
            yield Write("counter", value + 1)
            yield Release("L")

    return Program(
        "churn",
        threads={f"T{i}": body for i in range(threads)},
        initial={"counter": 0},
        locks=["L"],
    )


def test_engine_step_throughput(benchmark):
    program = make_churn_program()

    def run_once():
        return run_program(program, RandomScheduler(seed=7), max_steps=100000)

    result = benchmark(run_once)
    assert result.ok
    assert result.memory["counter"] == 4 * 50
    print(f"\n  {result.steps} engine steps per run")


def test_exploration_throughput(benchmark):
    kernel = get_kernel("atomicity_lost_update")

    def explore_all():
        explorer = Explorer(kernel.buggy, max_schedules=10000)
        return explorer.explore(predicate=kernel.failure)

    result = benchmark(explore_all)
    assert result.complete
    assert result.found
    print(f"\n  {result.schedules_run} schedules per exploration")


def test_replay_throughput(benchmark):
    from repro.sim import replay

    program = make_churn_program(threads=2, iterations=100)
    recorded = run_program(program, RandomScheduler(seed=3))

    def replay_once():
        return replay(program, recorded.schedule)

    rerun = benchmark(replay_once)
    assert rerun.memory == recorded.memory


def test_parallel_exploration_speedup():
    # multivar_torn_invariant is the largest kernel exploration (~3k
    # schedules).  Baseline: serial plain DFS.  Fast path: the shipped
    # parallel configuration — workers=4 with prefix sharding and
    # per-shard memoization.  On few-core machines the speedup comes
    # mostly from memoization (sharding adds process overhead but cannot
    # beat the core count); the 2x bar must hold either way.
    kernel = get_kernel("multivar_torn_invariant")

    start = time.perf_counter()
    serial = Explorer(kernel.buggy, max_schedules=20000).explore(
        predicate=kernel.failure
    )
    serial_seconds = time.perf_counter() - start
    assert serial.complete

    # The fast path runs under the metrics registry so the speedup
    # claim ships with its evidence: hit rate and shard balance.
    with _metrics(enabled=True) as registry:
        parallel_explorer = ParallelExplorer(
            kernel.buggy, workers=4, max_schedules=20000, memoize=True
        )
        start = time.perf_counter()
        parallel = parallel_explorer.explore(predicate=kernel.failure)
        parallel_seconds = time.perf_counter() - start
    assert parallel.complete

    # Memoization preserves the outcome set and the verdict, not counts.
    assert set(parallel.outcomes) == set(serial.outcomes)
    assert parallel.found == serial.found

    speedup = serial_seconds / parallel_seconds
    attempts = parallel.schedules_run + parallel.cache_hits
    hit_rate = parallel.cache_hits / attempts if attempts else 0.0
    balance = registry.histogram(
        "parallel.shard_schedules_balance", program=kernel.buggy.name
    )
    print(
        f"\n  serial: {serial.schedules_run} schedules in "
        f"{serial_seconds:.3f}s; workers=4+memo: {parallel.schedules_run} "
        f"schedules + {parallel.cache_hits} cache hits in "
        f"{parallel_seconds:.3f}s -> {speedup:.2f}x"
    )
    print(
        f"  evidence: {hit_rate:.0%} of attempts memo-pruned "
        f"({parallel.cache_lookups} fingerprint lookups, "
        f"{parallel.cache_states} states cached across shards)"
    )
    if balance is not None and balance.count:
        print(
            f"  shard balance: {balance.count} shards ran "
            f"{balance.minimum:.0f}..{balance.maximum:.0f} schedules "
            f"(mean {balance.mean:.1f})"
        )
    assert registry.counter(
        "explorer.schedules_run",
        program=kernel.buggy.name, explorer="parallel",
    ) == parallel.schedules_run
    assert speedup >= 2.0, (
        f"parallel+memoized exploration only {speedup:.2f}x faster "
        f"({serial_seconds:.3f}s -> {parallel_seconds:.3f}s)"
    )


def test_observability_overhead():
    # The obs layer must cost nothing when off: every hook is one
    # module-global None check, and the engine hoists the check out of
    # its step loop entirely.  Measure the same run disabled, with the
    # metrics registry on, and with the profiler on; best-of-N to shave
    # scheduler noise.  Only the disabled-vs-metrics comparison is
    # asserted (both do zero per-step work); the profiler times every
    # engine step by design, so its per-step cost is reported, not bound.
    program = make_churn_program(threads=2, iterations=200)

    def best_of(repeats=5):
        best = float("inf")
        steps = 0
        for attempt in range(repeats):
            start = time.perf_counter()
            result = run_program(
                program, RandomScheduler(seed=11), max_steps=100000
            )
            best = min(best, time.perf_counter() - start)
            steps = result.steps
        return best, steps

    with _metrics(enabled=False):
        assert not obs_metrics.enabled()
        off_seconds, steps = best_of()
        assert obs_metrics.snapshot() is None

    with _metrics(enabled=True) as registry:
        on_seconds, _ = best_of()
    # Metrics are run-granular: exactly two counter bumps per run.
    assert registry.counter("engine.runs", program="churn", status="ok") == 5

    with _metrics(enabled=True):
        profiler = obs_profile.enable()
        try:
            profiled_seconds, _ = best_of()
        finally:
            obs_profile.disable()
    span = profiler.as_dict()["engine.execute"]
    assert span["count"] == 5 * steps

    per_step = lambda seconds: seconds / steps * 1e6
    print(
        f"\n  {steps} steps/run: disabled {per_step(off_seconds):.2f}us/step, "
        f"metrics {per_step(on_seconds):.2f}us/step, "
        f"metrics+profile {per_step(profiled_seconds):.2f}us/step"
    )
    # Generous noise bound — the two configurations execute identical
    # per-step code, so anything near 2x would mean a hook leaked into
    # the hot loop.
    assert on_seconds < off_seconds * 2.0, (
        f"metrics registry added per-step overhead: "
        f"{off_seconds:.4f}s disabled vs {on_seconds:.4f}s enabled"
    )


def test_memoization_cache_hit_rate():
    kernel = get_kernel("multivar_torn_invariant")
    baseline = Explorer(kernel.buggy, max_schedules=20000).explore(
        predicate=kernel.failure
    )
    explorer = Explorer(kernel.buggy, max_schedules=20000, memoize=True)
    memoized = explorer.explore(predicate=kernel.failure)
    assert memoized.complete
    assert memoized.cache_hits > 0
    assert set(memoized.outcomes) == set(baseline.outcomes)
    assert memoized.found == baseline.found
    assert explorer.cache is not None
    print(
        f"\n  plain: {baseline.schedules_run} schedules; memoized: "
        f"{memoized.schedules_run} schedules ({explorer.cache.summary()})"
    )


def test_detector_throughput(benchmark):
    from repro.detectors import DetectorSuite, LearningAVIODetector

    program = make_churn_program(threads=3, iterations=30)
    trace = run_program(program, RandomScheduler(seed=5)).trace
    suite = DetectorSuite.for_program(program)

    def analyse():
        return suite.analyse(trace)

    result = benchmark(analyse)
    # Race/order/deadlock detectors are clean on the locked program.  The
    # *untrained* atomicity detector flags cross-iteration pairs (each
    # thread's write in one critical section and read in the next) — the
    # benign-non-atomicity false-positive class that AVIO's invariant
    # learning exists to remove:
    assert set(result.flagged_by()) <= {"atomicity"}
    learning = LearningAVIODetector()
    learning.train(
        run_program(program, RandomScheduler(seed=s)).trace for s in range(3)
    )
    assert learning.analyse(trace).clean
    print(f"\n  {len(trace)} events analysed by {len(suite.detectors)} detectors")
