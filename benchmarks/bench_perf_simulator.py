"""Simulator performance: engine step throughput and exploration speed.

Not a paper artifact — these benches track the substrate's own
performance so regressions in the engine/explorer hot paths are visible.
Typical numbers on a laptop-class machine: hundreds of thousands of
engine steps per second; thousands of explored schedules per second on
kernel-sized programs.
"""

from repro.kernels import get_kernel
from repro.sim import (
    Acquire,
    Explorer,
    Program,
    RandomScheduler,
    Read,
    Release,
    Write,
    run_program,
)


def make_churn_program(threads: int = 4, iterations: int = 50) -> Program:
    """A locked counter ground through many iterations per thread."""

    def body():
        for _ in range(iterations):
            yield Acquire("L")
            value = yield Read("counter")
            yield Write("counter", value + 1)
            yield Release("L")

    return Program(
        "churn",
        threads={f"T{i}": body for i in range(threads)},
        initial={"counter": 0},
        locks=["L"],
    )


def test_engine_step_throughput(benchmark):
    program = make_churn_program()

    def run_once():
        return run_program(program, RandomScheduler(seed=7), max_steps=100000)

    result = benchmark(run_once)
    assert result.ok
    assert result.memory["counter"] == 4 * 50
    print(f"\n  {result.steps} engine steps per run")


def test_exploration_throughput(benchmark):
    kernel = get_kernel("atomicity_lost_update")

    def explore_all():
        explorer = Explorer(kernel.buggy, max_schedules=10000)
        return explorer.explore(predicate=kernel.failure)

    result = benchmark(explore_all)
    assert result.complete
    assert result.found
    print(f"\n  {result.schedules_run} schedules per exploration")


def test_replay_throughput(benchmark):
    from repro.sim import replay

    program = make_churn_program(threads=2, iterations=100)
    recorded = run_program(program, RandomScheduler(seed=3))

    def replay_once():
        return replay(program, recorded.schedule)

    rerun = benchmark(replay_once)
    assert rerun.memory == recorded.memory


def test_detector_throughput(benchmark):
    from repro.detectors import DetectorSuite, LearningAVIODetector

    program = make_churn_program(threads=3, iterations=30)
    trace = run_program(program, RandomScheduler(seed=5)).trace
    suite = DetectorSuite.for_program(program)

    def analyse():
        return suite.analyse(trace)

    result = benchmark(analyse)
    # Race/order/deadlock detectors are clean on the locked program.  The
    # *untrained* atomicity detector flags cross-iteration pairs (each
    # thread's write in one critical section and read in the next) — the
    # benign-non-atomicity false-positive class that AVIO's invariant
    # learning exists to remove:
    assert set(result.flagged_by()) <= {"atomicity"}
    learning = LearningAVIODetector()
    learning.train(
        run_program(program, RandomScheduler(seed=s)).trace for s in range(3)
    )
    assert learning.analyse(trace).clean
    print(f"\n  {len(trace)} events analysed by {len(suite.detectors)} detectors")
