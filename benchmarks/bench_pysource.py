"""E6 (extension) — the real-Python frontend's economics and accuracy.

Per corpus module (``examples/realworld``), recorded into
``BENCH_pysource.json`` (set ``REPRO_BENCH_OUT`` to choose the path):

* **frontend wall time** — parsing + summary extraction runs in
  milliseconds per module, so analysing real source costs about as much
  as analysing a DSL kernel;
* **the candidate → confirmed funnel** — static candidates per module,
  how many the lifted program dynamically confirms, and the recall /
  precision this buys against the ``REPRO_EXPECT`` ground truth:
  recall 1.0 (every annotated bug is an active candidate) and every
  ``confirmable`` bug manifests in the lifted program, while fixed
  variants explore clean.
"""

import json
import os
from pathlib import Path
from time import perf_counter

from repro.static.lift import confirm
from repro.static.pysource import annotation_matches, load_corpus
from repro.static.report import analyse_summary

CORPUS = Path(__file__).resolve().parent.parent / "examples" / "realworld"


def collect():
    # Re-run the frontend per module to time it (load_corpus already
    # parsed once; the re-parse is the number we are measuring).
    from repro.static.pysource import load_source

    rows = []
    for module in load_corpus(CORPUS):
        start = perf_counter()
        load_source(module.path)
        frontend_wall = perf_counter() - start

        report = analyse_summary(module.summary)
        active = report.active()
        outcome = confirm(module.summary, max_schedules=800)
        confirmed_keys = {
            (o.kind, o.variables, o.resources)
            for o in outcome.outcomes
            if o.confirmed
        }
        recalled = sum(
            1 for bug in module.bugs
            if any(annotation_matches(bug, c) for c in active)
        )
        manifested = sum(
            1 for bug in module.bugs
            if bug.confirmable and any(
                annotation_matches(bug, c) for c in active
                if (c.kind, c.variables, c.resources) in confirmed_keys
            )
        )
        rows.append({
            "module": module.name,
            "fixed": module.is_fixed,
            "frontend_wall_seconds": frontend_wall,
            "confirm_wall_seconds": outcome.wall_seconds,
            "candidates": len(active),
            "confirmed": len(outcome.confirmed),
            "annotated": len(module.bugs),
            "recalled": recalled,
            "confirmable": sum(1 for b in module.bugs if b.confirmable),
            "manifested": manifested,
            "clean": outcome.clean,
            "statuses": outcome.statuses,
        })
    return rows


def record_trajectory(rows):
    path = Path(os.environ.get("REPRO_BENCH_OUT", "BENCH_pysource.json"))
    candidates = sum(r["candidates"] for r in rows)
    confirmed = sum(r["confirmed"] for r in rows)
    annotated = sum(r["annotated"] for r in rows)
    recalled = sum(r["recalled"] for r in rows)
    payload = {
        "bench": "pysource",
        "funnel": {
            "modules": len(rows),
            "static_candidates": candidates,
            "dynamically_confirmed": confirmed,
            "annotated_bugs": annotated,
            "recalled_bugs": recalled,
            "recall": (recalled / annotated) if annotated else 1.0,
            "precision": (confirmed / candidates) if candidates else 1.0,
        },
        "rows": rows,
    }
    path.write_text(json.dumps(payload, indent=2))
    return path


def test_frontend_cheap_and_funnel_sound(benchmark):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    out = record_trajectory(rows)
    print()
    print(f"  {'module':32s} {'frontend':>10s} {'cand':>5s} "
          f"{'conf':>5s} {'recall':>7s}")
    for r in rows:
        recall = (
            f"{r['recalled']}/{r['annotated']}" if r["annotated"] else "—"
        )
        print(
            f"  {r['module']:32s} "
            f"{r['frontend_wall_seconds'] * 1e3:>8.2f}ms "
            f"{r['candidates']:>5d} {r['confirmed']:>5d} {recall:>7s}"
        )
    print(f"  trajectory written to {out}")

    # Recall 1.0 on the ground truth: every annotated bug is a static
    # candidate, and every confirmable one manifests when lifted.
    assert all(r["recalled"] == r["annotated"] for r in rows), [
        r["module"] for r in rows if r["recalled"] != r["annotated"]
    ]
    assert all(r["manifested"] == r["confirmable"] for r in rows), [
        r["module"] for r in rows if r["manifested"] != r["confirmable"]
    ]
    # Fixed variants verify clean; buggy modules never do.
    assert all(r["clean"] for r in rows if r["fixed"]), [
        r["module"] for r in rows if r["fixed"] and not r["clean"]
    ]

    # Economics: the frontend is a milliseconds-per-module analysis.
    slowest = max(r["frontend_wall_seconds"] for r in rows)
    assert slowest < 0.25, slowest
