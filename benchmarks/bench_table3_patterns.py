"""T3 — bug pattern distribution (Findings 1-3).

Paper shape: atomicity violations dominate (~69%), order violations are
the second class (~32%), and together they cover 97% of non-deadlock
bugs.
"""

from repro.study import table3_patterns


def test_table3_patterns(benchmark, db):
    table = benchmark(table3_patterns, db)
    assert table.cell("Atomicity violation", "Bugs") == 51
    assert table.cell("Order violation", "Bugs") == 24
    assert table.cell("Atomicity or order", "Bugs") == 72
    assert table.cell("Other", "Bugs") == 2
    # Shape: atomicity > order > other; union covers 97%.
    assert (
        table.cell("Atomicity violation", "Bugs")
        > table.cell("Order violation", "Bugs")
        > table.cell("Other", "Bugs")
    )
    assert table.cell("Atomicity or order", "% of non-deadlock") == "97%"
    print()
    print(table.format())
