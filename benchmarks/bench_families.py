"""Workload-family extension — actor and weak-memory kernels end to end.

The pluggable-memory-model refactor opened two kernel families beyond
the 13 lock-based SC kernels: message-passing actors (channels,
``Select`` nondeterminism) and TSO weak-memory litmus shapes (store
buffers, explicit flush steps).  This bench records, per family kernel,
into ``BENCH_families.json`` (set ``REPRO_BENCH_OUT_FAMILIES`` to choose
the path):

* **Manifestation** — schedules to the first failure under the kernel's
  declared model, and the fix verified clean over the complete space.
* **Model gating** — the weakmem kernels swept under both ``sc`` and
  ``tso``: the bug must be unreachable in the complete SC space and
  found under TSO, and the row records how much schedule space the
  flush pseudo-threads add.
* **Reduction economics on the extended vocabulary** — DFS vs DPOR
  schedule counts per kernel, with the outcome *sets* asserted equal:
  the dependence relation over ``Send``/``Recv``/``Select`` and flush
  steps must stay sound while still pruning.
"""

import json
import os
from pathlib import Path

from repro.kernels import all_kernels, families
from repro.sim.explorer import make_explorer

BUDGET = 50000
MAX_STEPS = 5000

#: The families this bench owns (the SC family has its own benches and
#: the golden invariance guard).
NEW_FAMILIES = ("actor", "weakmem")


def _explore(program, reduction=None, predicate=None):
    explorer = make_explorer(
        program, max_schedules=BUDGET, max_steps=MAX_STEPS,
        reduction=reduction, keep_matches=1,
    )
    result = explorer.explore(
        predicate=predicate or (lambda run: False),
        stop_on_first=predicate is not None,
    )
    return result


def collect_manifestation():
    rows = []
    for family in NEW_FAMILIES:
        for kernel in all_kernels(family=family):
            found = _explore(kernel.buggy, predicate=kernel.failure)
            assert found.found, f"{kernel.name} never manifested"
            fix = _explore(kernel.fixed, predicate=kernel.failure)
            assert fix.complete and not fix.found, (
                f"{kernel.name}: fix not verified clean"
            )
            rows.append({
                "kernel": kernel.name,
                "family": family,
                "memory": kernel.buggy.memory,
                "schedules_to_first_finding": found.schedules_to_first_finding,
                "fix_schedules_explored": fix.schedules_run,
            })
    return rows


def collect_model_gating():
    rows = []
    for kernel in all_kernels(family="weakmem"):
        tso = _explore(kernel.buggy, predicate=kernel.failure)
        sc = _explore(kernel.buggy.with_memory("sc"), predicate=kernel.failure)
        assert tso.found, f"{kernel.name}: not found under TSO"
        assert sc.complete and not sc.found, (
            f"{kernel.name}: reachable under SC — not a weak-memory bug"
        )
        tso_full = _explore(kernel.buggy)
        sc_full = _explore(kernel.buggy.with_memory("sc"))
        rows.append({
            "kernel": kernel.name,
            "sc_schedules": sc_full.schedules_run,
            "tso_schedules": tso_full.schedules_run,
            "flush_step_blowup": tso_full.schedules_run / sc_full.schedules_run,
            "tso_schedules_to_first_finding": tso.schedules_to_first_finding,
        })
    return rows


def collect_reduction():
    rows = []
    for family in NEW_FAMILIES:
        for kernel in all_kernels(family=family):
            dfs = _explore(kernel.buggy)
            dpor = _explore(kernel.buggy, reduction="dpor")
            assert dfs.complete and dpor.complete, kernel.name
            assert set(dpor.outcomes) == set(dfs.outcomes), (
                f"{kernel.name}: DPOR outcome set diverged on the extended "
                f"vocabulary"
            )
            rows.append({
                "kernel": kernel.name,
                "family": family,
                "dfs_schedules": dfs.schedules_run,
                "dpor_schedules": dpor.schedules_run,
                "distinct_outcomes": len(dfs.outcomes),
            })
    return rows


def record(manifestation, gating, reduction):
    path = Path(os.environ.get("REPRO_BENCH_OUT_FAMILIES", "BENCH_families.json"))
    path.write_text(json.dumps(
        {
            "bench": "families",
            "families": sorted(families()),
            "manifestation": manifestation,
            "model_gating": gating,
            "reduction": reduction,
        },
        indent=2,
    ))
    return path


def _collect():
    return collect_manifestation(), collect_model_gating(), collect_reduction()


def test_actor_and_weakmem_families(benchmark):
    manifestation, gating, reduction = benchmark.pedantic(
        _collect, rounds=1, iterations=1
    )
    record(manifestation, gating, reduction)

    # Every new-family kernel manifested and verified.
    assert {row["family"] for row in manifestation} == set(NEW_FAMILIES)
    # The weakmem family is model-gated, and flush steps genuinely
    # enlarge the space (that's the cost DPOR then claws back).
    for row in gating:
        assert row["flush_step_blowup"] > 1.0, row["kernel"]
    # DPOR never explores more than DFS on the extended vocabulary.
    for row in reduction:
        assert row["dpor_schedules"] <= row["dfs_schedules"], row["kernel"]

    print(f"\nfamilies: {sorted(families())}")
    for row in manifestation:
        print(
            f"  {row['kernel']} [{row['family']}/{row['memory']}]: "
            f"first finding at schedule {row['schedules_to_first_finding']}, "
            f"fix clean over {row['fix_schedules_explored']} schedules"
        )
    for row in gating:
        print(
            f"  {row['kernel']}: SC {row['sc_schedules']} vs TSO "
            f"{row['tso_schedules']} schedules "
            f"({row['flush_step_blowup']:.1f}x flush blowup)"
        )
    for row in reduction:
        print(
            f"  {row['kernel']}: DFS {row['dfs_schedules']} -> DPOR "
            f"{row['dpor_schedules']} schedules, "
            f"{row['distinct_outcomes']} outcomes"
        )
