"""E1 (extension) — detector-class coverage over the bug classes.

Reproduces the study's implications-for-detection discussion as a
measured matrix: for each kernel's manifesting trace, which detector
classes flag it?  Expected shape (the paper's argument):

* race detectors (happens-before, lockset) catch the racy atomicity and
  order kernels but are structurally blind to the race-free atomicity
  violation (Apache refcount shape);
* the AVIO-style atomicity detector catches all single-variable
  atomicity kernels, including the race-free one;
* deadlocks are invisible to all of the above and owned by the
  lock-order analysis.
"""

from repro.detectors import DetectorSuite
from repro.kernels import all_kernels


def build_matrix():
    matrix = {}
    for kernel in all_kernels():
        failing = kernel.find_manifestation()
        suite = DetectorSuite.for_program(kernel.buggy)
        result = suite.analyse(failing.trace)
        matrix[kernel.name] = set(result.flagged_by())
    return matrix


def test_detector_coverage_matrix(benchmark):
    matrix = benchmark.pedantic(build_matrix, rounds=1, iterations=1)

    # Every kernel is caught by at least one detector class.
    assert all(matrix.values())
    # The study's blind spot: no race detector on the race-free kernel.
    assert "happens-before" not in matrix["atomicity_lock_free"]
    assert "lockset" not in matrix["atomicity_lock_free"]
    assert "atomicity" in matrix["atomicity_lock_free"]
    # Racy atomicity kernels are caught by race detectors too.
    assert "happens-before" in matrix["atomicity_single_var"]
    # Deadlock kernels are owned by the deadlock detector.
    for name in ("deadlock_self", "deadlock_abba", "deadlock_three_way"):
        assert "deadlock" in matrix[name]
        assert "atomicity" not in matrix[name]
    # Order kernels are caught by the order-violation heuristics.
    assert "order-violation" in matrix["order_use_before_init"]
    assert "order-violation" in matrix["order_lost_wakeup"]

    detectors = ["happens-before", "lockset", "atomicity", "order-violation", "deadlock"]
    print()
    header = f"  {'kernel':26s}" + "".join(f"{d[:12]:>14s}" for d in detectors)
    print(header)
    for name, flagged in matrix.items():
        row = f"  {name:26s}" + "".join(
            f"{'X' if d in flagged else '.':>14s}" for d in detectors
        )
        print(row)
