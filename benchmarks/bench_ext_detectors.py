"""E1 (extension) — detector-class coverage over the bug classes.

Reproduces the study's implications-for-detection discussion as a
measured matrix: for each kernel's manifesting trace, which detector
classes flag it?  Expected shape (the paper's argument):

* race detectors (happens-before, lockset) catch the racy atomicity and
  order kernels but are structurally blind to the race-free atomicity
  violation (Apache refcount shape);
* the AVIO-style atomicity detector catches all single-variable
  atomicity kernels, including the race-free one;
* deadlocks are invisible to all of the above and owned by the
  lock-order analysis.

Also benches the streaming detector pipeline against the classic
per-detector batch: identical findings, one shared event pass.
"""

import time

from repro.detectors import DetectorSuite
from repro.kernels import all_kernels, get_kernel
from repro.sim.explorer import make_explorer


def build_matrix():
    matrix = {}
    for kernel in all_kernels():
        failing = kernel.find_manifestation()
        suite = DetectorSuite.for_program(kernel.buggy)
        result = suite.analyse(failing.trace)
        matrix[kernel.name] = set(result.flagged_by())
    return matrix


def test_detector_coverage_matrix(benchmark):
    matrix = benchmark.pedantic(build_matrix, rounds=1, iterations=1)

    # Every kernel is caught by at least one detector class.
    assert all(matrix.values())
    # The study's blind spot: no race detector on the race-free kernel.
    assert "happens-before" not in matrix["atomicity_lock_free"]
    assert "lockset" not in matrix["atomicity_lock_free"]
    assert "atomicity" in matrix["atomicity_lock_free"]
    # Racy atomicity kernels are caught by race detectors too.
    assert "happens-before" in matrix["atomicity_single_var"]
    # Deadlock kernels are owned by the deadlock detector.
    for name in ("deadlock_self", "deadlock_abba", "deadlock_three_way"):
        assert "deadlock" in matrix[name]
        assert "atomicity" not in matrix[name]
    # Order kernels are caught by the order-violation heuristics.
    assert "order-violation" in matrix["order_use_before_init"]
    assert "order-violation" in matrix["order_lost_wakeup"]

    detectors = ["happens-before", "lockset", "atomicity", "order-violation", "deadlock"]
    print()
    header = f"  {'kernel':26s}" + "".join(f"{d[:12]:>14s}" for d in detectors)
    print(header)
    for name, flagged in matrix.items():
        row = f"  {name:26s}" + "".join(
            f"{'X' if d in flagged else '.':>14s}" for d in detectors
        )
        print(row)


def test_streaming_vs_batch_suite(benchmark):
    """E1b — the online streamed pipeline beats explore-then-batch analysis.

    Both paths analyse every explored schedule of the torn-invariant
    kernel (the largest state space in the kernel set).  The batch path
    explores first, retains every trace, then runs the five-detector
    battery over them; the online path streams one shared pipeline along
    the exploration, restoring snapshotted analysis state at branch
    points so shared schedule prefixes are analysed once.  Findings must
    be identical; the prefix reuse is the wall-clock win.
    """
    kernel = get_kernel("multivar_torn_invariant")
    program = kernel.buggy
    budget = 3000

    def batch_path():
        explorer = make_explorer(
            program, max_schedules=budget, keep_matches=10**9
        )
        exploration = explorer.explore(predicate=lambda run: True)
        traces = [run.trace for run in exploration.matching]
        return DetectorSuite.for_program(program).analyse_many(traces)

    def online_path():
        return DetectorSuite.for_program(program).analyse_online(
            program, max_schedules=budget
        )

    def best_of(path, repeats=3):
        best, result = float("inf"), None
        for _ in range(repeats):
            start = time.perf_counter()
            result = path()
            best = min(best, time.perf_counter() - start)
        return best, result

    batch_seconds, batch_result = best_of(batch_path)
    online_seconds, online_result = benchmark.pedantic(
        best_of, args=(online_path,), rounds=1, iterations=1
    )

    # Equivalence first: the speed-up must not change a single finding.
    def keys(result):
        return {
            name: sorted(
                (f.kind.value, f.detector, f.description, f.threads,
                 f.variables, f.resources, f.events)
                for f in report
            )
            for name, report in result.reports.items()
        }

    assert keys(online_result) == keys(batch_result)
    assert not online_result.clean

    stats = online_result.exploration.pipeline_stats
    print()
    print(f"  schedules: {online_result.exploration.schedules_run}"
          f"  events dispatched: {stats['events_dispatched']}"
          f"  reused: {stats['events_reused']} ({stats['reuse_ratio']:.0%})")
    print(f"  explore + batch battery:  {batch_seconds * 1e3:8.1f} ms")
    print(f"  online streamed pipeline: {online_seconds * 1e3:8.1f} ms")
    print(f"  speed-up:                 {batch_seconds / online_seconds:8.2f}x")
    # ~1.5x locally; the margin is generous so CI noise cannot flake it.
    assert online_seconds < batch_seconds * 0.95
