"""T2 — non-deadlock/deadlock split per application (paper Table 2)."""

from repro.study import table2_bug_sources


def test_table2_bug_sources(benchmark, db):
    table = benchmark(table2_bug_sources, db)
    assert table.cell("Total", "Non-deadlock") == 74
    assert table.cell("Total", "Deadlock") == 31
    assert table.cell("MySQL", "Non-deadlock") == 14
    assert table.cell("MySQL", "Deadlock") == 9
    assert table.cell("Apache", "Non-deadlock") == 13
    assert table.cell("Apache", "Deadlock") == 4
    assert table.cell("Mozilla", "Non-deadlock") == 41
    assert table.cell("Mozilla", "Deadlock") == 16
    assert table.cell("OpenOffice", "Non-deadlock") == 6
    assert table.cell("OpenOffice", "Deadlock") == 2
    print()
    print(table.format())
