"""T4 — threads needed to manifest (Finding 4: 96% need at most two)."""

from repro.study import table4_threads


def test_table4_threads(benchmark, db):
    table = benchmark(table4_threads, db)
    two_or_fewer = table.cell(1, "Bugs") + table.cell(2, "Bugs")
    assert two_or_fewer == 101
    assert sum(table.column("Bugs")) == 105
    # Shape: the two-thread bucket towers over everything else.
    assert table.cell(2, "Bugs") > 10 * table.cell(3, "Bugs")
    print()
    print(table.format())
