"""E5 (extension) — the static analyzer's economics and its steering value.

Two headline numbers per kernel, recorded into ``BENCH_static.json``
(set ``REPRO_BENCH_OUT`` to choose the path):

* **static pass wall time** — the whole battery (summaries, locksets,
  lock-order graph, pair compilation) runs in milliseconds with zero
  executed schedules, orders of magnitude under exploration, while
  still flagging every dynamically confirmed race and deadlock
  (recall 1.0 over the corpus);
* **directed vs undirected schedules-to-first-finding** — feeding the
  predicted target pairs back as ``Explorer(targets=...)`` reaches the
  first confirmed manifestation in fewer schedules on a strict majority
  of kernels and is never slower (the tree is unchanged, only the visit
  order).
"""

import json
import os
from pathlib import Path
from time import perf_counter

from repro.detectors import DetectorSuite
from repro.kernels import all_kernels
from repro.sim.explorer import make_explorer
from repro.static import analyse


def _first_finding(kernel, targets):
    explorer = make_explorer(
        kernel.buggy, 20000, 5000, None, None, False,
        keep_matches=1, targets=targets,
    )
    start = perf_counter()
    result = explorer.explore(predicate=kernel.failure, stop_on_first=True)
    return result, perf_counter() - start


def collect():
    rows = []
    for kernel in all_kernels():
        report = analyse(kernel.buggy)
        start = perf_counter()
        comparison = DetectorSuite.for_program(
            kernel.buggy, streaming=True
        ).analyse_static(kernel.buggy, predicate=kernel.failure)
        confirm_wall = perf_counter() - start
        undirected, undirected_wall = _first_finding(kernel, None)
        directed, directed_wall = _first_finding(kernel, report.pairs)
        rows.append({
            "kernel": kernel.name,
            "static_wall_seconds": report.wall_seconds,
            "static_candidates": len(report.active()),
            "static_pairs": len(report.pairs),
            "recall": comparison.recall,
            "precision": comparison.precision,
            "sound": comparison.sound,
            "confirm_wall_seconds": confirm_wall,
            "undirected_schedules": undirected.schedules_run,
            "directed_schedules": directed.schedules_run,
            "undirected_wall_seconds": undirected_wall,
            "directed_wall_seconds": directed_wall,
        })
    return rows


def record_trajectory(rows):
    path = Path(os.environ.get("REPRO_BENCH_OUT", "BENCH_static.json"))
    path.write_text(json.dumps({"bench": "static", "rows": rows}, indent=2))
    return path


def test_static_pass_cheap_sound_and_directing(benchmark):
    rows = benchmark.pedantic(collect, rounds=1, iterations=1)
    out = record_trajectory(rows)
    print()
    print(f"  {'kernel':26s} {'static':>9s} {'recall':>7s} "
          f"{'undirected':>11s} {'directed':>9s}")
    for r in rows:
        print(
            f"  {r['kernel']:26s} {r['static_wall_seconds'] * 1e3:>7.2f}ms "
            f"{r['recall']:>7.0%} {r['undirected_schedules']:>11d} "
            f"{r['directed_schedules']:>9d}"
        )
    print(f"  trajectory written to {out}")

    # Soundness with zero schedules: every dynamically confirmed race /
    # atomicity / order violation / deadlock was statically predicted.
    assert all(r["sound"] for r in rows), [r["kernel"] for r in rows if not r["sound"]]
    assert all(r["recall"] == 1.0 for r in rows)

    # Directed exploration: never slower, strictly faster on >= 3 kernels
    # (the acceptance floor; currently 8 of 13).
    assert all(
        r["directed_schedules"] <= r["undirected_schedules"] for r in rows
    ), [r["kernel"] for r in rows
        if r["directed_schedules"] > r["undirected_schedules"]]
    strictly_faster = [
        r["kernel"] for r in rows
        if r["directed_schedules"] < r["undirected_schedules"]
    ]
    print(f"  directed strictly faster on {len(strictly_faster)}/13: "
          f"{', '.join(strictly_faster)}")
    assert len(strictly_faster) >= 3, strictly_faster

    # The economics: predicting the findings statically must be far
    # cheaper than confirming them dynamically (exploration + detector
    # battery).  Conservative 10x floor; the measured gap is larger.
    total_static = sum(r["static_wall_seconds"] for r in rows)
    total_confirm = sum(r["confirm_wall_seconds"] for r in rows)
    assert total_static < total_confirm / 10, (total_static, total_confirm)
