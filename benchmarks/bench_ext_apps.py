"""E4 (extension) — bug hunting at application scale.

The study's subjects are applications, not kernels; this bench drives the
miniature application analogues end to end.  For every injectable bug in
the catalogue: bounded exploration finds a manifesting interleaving, the
witness shrinks to ≤2 preemptions, and the correct configuration of the
same application survives the same bounded search.
"""

from repro.apps import bug_catalogue
from repro.apps.cache import CacheConfig, build_cache, single_free
from repro.apps.logger import LoggerConfig, build_logger, no_events_lost
from repro.apps.webserver import WebServerConfig, build_webserver, served_everything
from repro.sim import Explorer, find_schedule, minimize_preemptions


def test_injected_bugs_all_hunted(benchmark):
    def hunt():
        rows = {}
        for app, flag, kind, program, oracle in bug_catalogue():
            failing = find_schedule(
                program, predicate=oracle, max_schedules=60000,
                preemption_bound=3,
            )
            witness = minimize_preemptions(
                program, oracle, max_bound=4, max_schedules_per_bound=60000
            )
            rows[f"{app}.{flag}"] = (kind, failing, witness)
        return rows

    rows = benchmark.pedantic(hunt, rounds=1, iterations=1)
    print()
    print(f"  {'injected bug':32s} {'class':20s} {'steps':>6s} {'preempt':>8s}")
    for name, (kind, failing, witness) in rows.items():
        assert failing is not None, name
        assert witness is not None, name
        assert witness.preemptions <= 2, name
        print(
            f"  {name:32s} {kind:20s} {len(failing.schedule):>6d} "
            f"{witness.preemptions:>8d}"
        )


def test_correct_configurations_survive_bounded_search(benchmark):
    def verify():
        verdicts = {}
        server_cfg = WebServerConfig(workers=1, requests=1)
        server_oracle = served_everything(server_cfg)
        result = Explorer(
            build_webserver(server_cfg), max_schedules=60000, preemption_bound=2
        ).explore(predicate=lambda run: not server_oracle(run), stop_on_first=True)
        verdicts["webserver"] = not result.found

        logger_cfg = LoggerConfig(writers=1, events_per_writer=1, rotations=1)
        logger_oracle = no_events_lost(logger_cfg)
        result = Explorer(
            build_logger(logger_cfg), max_schedules=60000
        ).explore(predicate=lambda run: not logger_oracle(run), stop_on_first=True)
        verdicts["logger"] = result.complete and not result.found

        cache_cfg = CacheConfig(clients=2)
        cache_oracle = single_free(cache_cfg)
        result = Explorer(
            build_cache(cache_cfg), max_schedules=60000
        ).explore(predicate=lambda run: not cache_oracle(run), stop_on_first=True)
        verdicts["cache"] = result.complete and not result.found
        return verdicts

    verdicts = benchmark.pedantic(verify, rounds=1, iterations=1)
    print()
    for app, clean in verdicts.items():
        print(f"  {app}: correct configuration clean = {clean}")
        assert clean, app
