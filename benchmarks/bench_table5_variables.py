"""T5 — variables/resources involved (Findings 5-6).

Paper shape: 66% of non-deadlock bugs involve one variable; 97% of
deadlocks involve at most two resources (a quarter involve just one —
the self re-acquisition shape).
"""

from repro.study import table5_variables


def test_table5_variables(benchmark, db):
    table = benchmark(table5_variables, db)
    nd_rows = {r[1]: r[2] for r in table.rows if r[0] == "non-deadlock"}
    dl_rows = {r[1]: r[2] for r in table.rows if r[0] == "deadlock"}
    assert nd_rows["1 variable"] == 49
    assert sum(nd_rows.values()) == 74
    assert dl_rows == {"1 resource": 7, "2 resources": 23, "3 resources": 1}
    # Shape: single variable dominates; two-resource deadlocks dominate.
    assert nd_rows["1 variable"] > sum(v for k, v in nd_rows.items() if k != "1 variable")
    assert dl_rows["2 resources"] > dl_rows["1 resource"] > dl_rows["3 resources"]
    print()
    print(table.format())
