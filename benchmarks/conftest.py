"""Shared fixtures for the benchmark harness.

Every bench regenerates one paper artifact (table T1-T8, the figure
kernels, or an extension experiment), asserts the headline cells match
the published values, and prints the rendered artifact (visible with
``pytest benchmarks/ --benchmark-only -s``).

Set ``REPRO_METRICS_OUT=PATH`` to record the whole bench session: every
instrumented exploration/estimator call appends a JSONL run record to
PATH, plus one final ``bench_session`` record carrying the aggregated
metrics snapshot (schema in ``docs/observability.md``).
"""

import os

import pytest

from repro.bugdb import BugDatabase
from repro.obs import metrics as obs_metrics
from repro.obs import runlog as obs_runlog


@pytest.fixture(scope="session")
def db():
    return BugDatabase.load()


@pytest.fixture(scope="session", autouse=True)
def _bench_runlog():
    path = os.environ.get("REPRO_METRICS_OUT")
    if not path:
        yield
        return
    registry = obs_metrics.enable()
    obs_runlog.set_runlog(path)
    try:
        yield
        obs_runlog.emit("bench_session", metrics=registry.snapshot())
    finally:
        obs_runlog.clear_runlog()
        obs_metrics.disable()
