"""Shared fixtures for the benchmark harness.

Every bench regenerates one paper artifact (table T1-T8, the figure
kernels, or an extension experiment), asserts the headline cells match
the published values, and prints the rendered artifact (visible with
``pytest benchmarks/ --benchmark-only -s``).
"""

import pytest

from repro.bugdb import BugDatabase


@pytest.fixture(scope="session")
def db():
    return BugDatabase.load()
