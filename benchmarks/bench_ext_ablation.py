"""E3 (extension) — ablations of the manifestation machinery.

Three ablations of the design choices DESIGN.md calls out:

* **Enforcement-order minimality** — each kernel's recorded partial order
  both guarantees manifestation *and* is minimal: dropping any single
  pair loses the guarantee.  This is the strong form of Finding 8: the
  access sets are not just small, they are tight.
* **Preemption-bound coverage curve** — how many schedules exist (and
  whether the bug is reachable) at preemption bounds 0, 1, 2 versus the
  full space.  Bound 1 reaches every kernel's bug while exploring a tiny
  slice of the space — why CHESS-style bounding works.
* **Minimal witnesses** — the smallest failing witness of every kernel
  needs at most one pre-emptive context switch.
"""

from repro.kernels import all_kernels
from repro.manifest import order_guarantees
from repro.sim import Explorer, minimize_preemptions


def test_enforcement_orders_are_minimal(benchmark):
    def audit():
        verdicts = {}
        for kernel in all_kernels():
            full = order_guarantees(
                kernel.buggy, kernel.manifest_order, kernel.failure, attempts=10
            )
            tight = True
            for i in range(len(kernel.manifest_order)):
                reduced = (
                    kernel.manifest_order[:i] + kernel.manifest_order[i + 1:]
                )
                if len(kernel.manifest_order) >= 2 and order_guarantees(
                    kernel.buggy, reduced, kernel.failure, attempts=10
                ):
                    tight = False
            verdicts[kernel.name] = (full, tight)
        return verdicts

    verdicts = benchmark.pedantic(audit, rounds=1, iterations=1)
    print()
    for name, (full, tight) in verdicts.items():
        print(f"  {name:26s} guarantees={full} minimal={tight}")
        assert full, name
        assert tight, name


def test_preemption_bound_coverage_curve(benchmark):
    def curve():
        rows = {}
        for kernel in all_kernels():
            per_bound = []
            for bound in (0, 1, 2, None):
                explorer = Explorer(
                    kernel.buggy, max_schedules=20000, preemption_bound=bound
                )
                result = explorer.explore(predicate=kernel.failure)
                per_bound.append((bound, result.schedules_run, result.found))
            rows[kernel.name] = per_bound
        return rows

    rows = benchmark.pedantic(curve, rounds=1, iterations=1)
    print()
    print(f"  {'kernel':26s} {'b=0':>12s} {'b=1':>12s} {'b=2':>12s} {'full':>12s}")
    for name, per_bound in rows.items():
        cells = []
        for bound, schedules, found in per_bound:
            mark = "+" if found else "-"
            cells.append(f"{schedules}{mark}")
        print(f"  {name:26s} " + " ".join(f"{c:>12s}" for c in cells))
    for name, per_bound in rows.items():
        counts = [schedules for _, schedules, _ in per_bound]
        # Coverage grows monotonically with the bound.
        assert counts == sorted(counts), name
        # Bound 1 already reaches every kernel's bug...
        assert per_bound[1][2], name
        # ...while exploring no more of the space than the full search.
        assert per_bound[1][1] <= per_bound[3][1], name


def test_minimal_witnesses_need_at_most_one_preemption(benchmark):
    def minimise_all():
        return {
            kernel.name: minimize_preemptions(kernel.buggy, kernel.failure)
            for kernel in all_kernels()
        }

    witnesses = benchmark.pedantic(minimise_all, rounds=1, iterations=1)
    print()
    for name, witness in witnesses.items():
        assert witness is not None, name
        assert witness.preemptions <= 1, name
        print(f"  {witness.summary()}")


def test_sleep_set_reduction_preserves_outcomes(benchmark):
    """E3 ablation: partial-order reduction vs plain DFS on every kernel.

    The reduced search must reach exactly the same terminal-outcome set
    and the same failure verdict while exploring (often far) fewer
    schedules — e.g. the 3-thread torn-invariant kernel drops from 3096
    schedules to ~144, the 3-way deadlock from 234 to ~7.
    """
    from repro.sim import Explorer
    from repro.sim.reduction import SleepSetExplorer

    def compare():
        rows = {}
        for kernel in all_kernels():
            full = Explorer(kernel.buggy, max_schedules=100000).explore(
                predicate=kernel.failure
            )
            reduced = SleepSetExplorer(
                kernel.buggy, max_schedules=100000
            ).explore(predicate=kernel.failure)
            rows[kernel.name] = (full, reduced)
        return rows

    rows = benchmark.pedantic(compare, rounds=1, iterations=1)
    print()
    print(f"  {'kernel':26s} {'full':>8s} {'reduced':>8s} {'saving':>8s}")
    for name, (full, reduced) in rows.items():
        saving = 1 - reduced.schedules_run / full.schedules_run
        print(
            f"  {name:26s} {full.schedules_run:>8d} "
            f"{reduced.schedules_run:>8d} {saving:>8.0%}"
        )
        assert set(reduced.outcomes) == set(full.outcomes), name
        assert reduced.found == full.found, name
        assert reduced.schedules_run <= full.schedules_run, name
