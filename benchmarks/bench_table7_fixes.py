"""T7 — fix strategies (Findings 8-9 on fixes).

Paper shape: 73% of non-deadlock fixes add no lock; COND/Switch/Design
together dominate.  Deadlock fixes are dominated by giving up the
resource (61%), not by reordering acquisitions.
"""

from repro.bugdb import FixStrategy
from repro.study import table7_fixes


def test_table7_fix_strategies(benchmark, db):
    table = benchmark(table7_fixes, db)
    nd = {r[1]: r[2] for r in table.rows if r[0] == "non-deadlock"}
    dl = {r[1]: r[2] for r in table.rows if r[0] == "deadlock"}
    assert nd == {
        "Condition check (COND)": 19,
        "Code switch (Switch)": 10,
        "Design change (Design)": 24,
        "Add/change lock (Lock)": 20,
        "Other": 1,
    }
    assert dl == {
        "Give up resource": 19,
        "Change acquisition order": 6,
        "Split resource": 2,
        "Other": 4,
    }
    # Shape: lock-free strategies outweigh locking ~3:1; give-up dominates.
    lockless = sum(v for k, v in nd.items() if k != "Add/change lock (Lock)")
    assert lockless / sum(nd.values()) > 0.7
    assert dl["Give up resource"] > sum(dl.values()) / 2
    print()
    print(table.format())


def test_table7_fixes_verified_executably(benchmark):
    """Every kernel's shipped fix (each strategy class) verifies clean."""
    from repro.fixes import verify_all_fixes
    from repro.kernels import all_kernels

    def verify_everything():
        results = {}
        for kernel in all_kernels():
            for strategy, verification in verify_all_fixes(kernel).items():
                results[f"{kernel.name}:{strategy.value}"] = verification.clean
        return results

    results = benchmark.pedantic(verify_everything, rounds=1, iterations=1)
    assert all(results.values()), [k for k, v in results.items() if not v]
    strategies = {key.split(":", 1)[1] for key in results}
    # The executable fixes span both halves of the taxonomy.
    assert {
        "condition-check", "code-switch", "design-change", "add-lock",
        "give-up-resource", "acquire-order",
    } <= strategies
    print()
    for key in sorted(results):
        print(f"  verified clean: {key}")
