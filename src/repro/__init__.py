"""repro — reproduction of "Learning from Mistakes: A Comprehensive Study
on Real World Concurrency Bug Characteristics" (ASPLOS 2008).

The package has five layers, importable independently:

* :mod:`repro.sim` — deterministic concurrency simulator (virtual
  threads, schedulers, exhaustive interleaving exploration, replay);
* :mod:`repro.detectors` — happens-before, lockset, AVIO-style
  atomicity, order-violation, and deadlock detection;
* :mod:`repro.bugdb` — the 105 studied bug records and their
  characteristic dimensions;
* :mod:`repro.kernels` — executable (buggy, fixed) reproductions of the
  paper's figure examples, plus :mod:`repro.fixes` for strategy-based
  patching and exhaustive fix verification;
* :mod:`repro.study` — tables T1-T8 and findings F1-F10, regenerated
  from the database, with :mod:`repro.manifest` providing the testing-
  implication machinery (order enforcement, coverage, estimators).

Quick taste::

    from repro import BugDatabase, generate_report
    print(generate_report(quick=True).format())
"""

from repro.bugdb import (
    Application,
    BugCategory,
    BugDatabase,
    BugPattern,
    BugRecord,
    FixStrategy,
    Impact,
)
from repro.detectors import DetectorSuite, Finding, FindingKind, Report
from repro.errors import ReproError, SimCrash
from repro.kernels import BugKernel, all_kernels, get_kernel, kernel_names
from repro.sim import (
    Engine,
    Explorer,
    ParallelExplorer,
    Program,
    RunResult,
    RunStatus,
    StateCache,
    Trace,
    enumerate_outcomes,
    find_schedule,
    replay,
    run_program,
)
from repro.reporting import BugReport, build_bug_report
from repro.study import FINDINGS, StudyReport, all_tables, check_all, generate_report

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SimCrash",
    # simulator
    "Program",
    "Engine",
    "RunResult",
    "RunStatus",
    "Trace",
    "run_program",
    "Explorer",
    "ParallelExplorer",
    "StateCache",
    "enumerate_outcomes",
    "find_schedule",
    "replay",
    # detectors
    "DetectorSuite",
    "Finding",
    "FindingKind",
    "Report",
    # bug database
    "BugDatabase",
    "BugRecord",
    "Application",
    "BugCategory",
    "BugPattern",
    "Impact",
    "FixStrategy",
    # kernels
    "BugKernel",
    "all_kernels",
    "get_kernel",
    "kernel_names",
    # study
    "generate_report",
    "StudyReport",
    "all_tables",
    "check_all",
    "FINDINGS",
    # failure reporting
    "BugReport",
    "build_bug_report",
]
