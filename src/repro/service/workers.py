"""The worker fleet: a process pool executing jobs off the event loop.

The service's asyncio loop must never run an exploration itself — a
single ``detect`` job can take seconds of pure-CPU engine time, and the
loop has submissions to accept and status requests to answer meanwhile.
:class:`WorkerFleet` owns that boundary: jobs go to a
``ProcessPoolExecutor`` built on the ``fork`` start method — the same
machinery (and the same availability rules) as
:class:`repro.sim.parallel.ParallelExplorer` — and come back as plain
dicts via :func:`repro.service.jobs.run_job`.

Where ``fork`` is unavailable (or explicitly disabled with
``pool="none"``), the fleet degrades to a thread pool: verdicts are
identical because :func:`run_job` is a pure function of its arguments;
only wall-clock parallelism is lost to the GIL.  ``pool="fork"`` forces
the process pool and raises at construction when it cannot be honoured,
mirroring ``parallel.py`` — nothing silently degrades.

Sizing guidance lives in ``docs/service.md``; the short version is
:func:`default_fleet_size`: one worker per core up to 4 by default,
because engine runs are CPU-bound and oversubscription only adds
scheduler churn, while a small cap keeps a shared box responsive.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from functools import partial
from typing import Any, Dict, Optional

from repro.service.jobs import Job, run_job

__all__ = ["WorkerFleet", "default_fleet_size"]

POOLS = ("auto", "fork", "none")


def default_fleet_size() -> int:
    """One worker per core, capped at 4 (CPU-bound work; see module doc)."""
    return max(1, min(4, os.cpu_count() or 1))


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class WorkerFleet:
    """A fixed-size executor for :func:`~repro.service.jobs.run_job` calls.

    :param size: worker count (default :func:`default_fleet_size`).
    :param pool: ``"auto"`` (fork processes when available, threads
        otherwise), ``"fork"`` (require processes; raises if the start
        method is missing), or ``"none"`` (always threads — useful for
        tests that want in-process determinism and coverage).
    """

    def __init__(self, size: Optional[int] = None, pool: str = "auto"):
        if pool not in POOLS:
            raise ValueError(f"pool must be one of {', '.join(POOLS)}, got {pool!r}")
        if size is not None and size < 1:
            raise ValueError(f"fleet size must be >= 1, got {size}")
        if pool == "fork" and not _fork_available():
            raise ValueError(
                "pool='fork' requested but the 'fork' start method is not "
                "available on this platform; use pool='auto' or 'none'"
            )
        self.size = size if size is not None else default_fleet_size()
        self.pool = pool
        self._executor: Optional[Executor] = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def mode(self) -> str:
        """``"fork"`` (process pool) or ``"inline"`` (thread pool)."""
        use_processes = self.pool == "fork" or (
            self.pool == "auto" and _fork_available()
        )
        return "fork" if use_processes else "inline"

    def start(self) -> None:
        """Create the executor (idempotent)."""
        if self._executor is not None:
            return
        if self.mode == "fork":
            self._executor = ProcessPoolExecutor(
                max_workers=self.size,
                mp_context=multiprocessing.get_context("fork"),
            )
        else:
            self._executor = ThreadPoolExecutor(
                max_workers=self.size, thread_name_prefix="repro-fleet"
            )

    def shutdown(self) -> None:
        """Tear the executor down, waiting for in-flight jobs."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- execution ---------------------------------------------------------

    async def run(self, job: Job) -> Dict[str, Any]:
        """Execute ``job`` on the fleet; returns the ``run_job`` payload.

        Only primitives cross the executor boundary (kind value, kernel
        name, options dict), so the same call works for forked processes
        and inline threads.
        """
        self.start()
        assert self._executor is not None
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor,
            partial(
                run_job, job.kind.value, job.kernel, job.options.to_dict()
            ),
        )

    async def run_slice(
        self, job: Job, frontier_hex: Optional[str], slice_budget: int
    ) -> Dict[str, Any]:
        """Advance ``job`` by one exploration slice on the fleet.

        Same boundary rules as :meth:`run` — primitives in, a plain dict
        out — but backed by :func:`repro.service.slices.run_slice`, so
        the payload is either a checkpointed frontier or the terminal
        verdict.
        """
        from repro.service.slices import run_slice

        self.start()
        assert self._executor is not None
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor,
            partial(
                run_slice,
                job.kind.value,
                job.kernel,
                job.options.to_dict(),
                frontier_hex or "",
                slice_budget,
            ),
        )

    def describe(self) -> Dict[str, Any]:
        """Dashboard-ready fleet description."""
        return {"size": self.size, "mode": self.mode, "pool": self.pool}
