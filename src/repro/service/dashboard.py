"""Status dashboard: one service snapshot, rendered as JSON or text.

The dashboard is a *pure function* of the service state — it owns no
counters of its own, so ``repro status`` (and the tests, and the CI
smoke job) see exactly the numbers the scheduler maintains: submissions,
completions, cache hits, coalesced submissions, the dedup ratio, total
engine runs paid, queue depth, and the newest jobs with per-job
submit-to-verdict latency.  ``as_dict`` is the machine surface
(``repro status --json``); ``format`` is the human one.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.service.jobs import Job
from repro.service.queue import ReproService

__all__ = ["Dashboard"]

SCHEMA = "repro.service.status/v1"


class Dashboard:
    """Snapshot view over one :class:`~repro.service.queue.ReproService`."""

    def __init__(self, service: ReproService, job_limit: int = 50):
        self.service = service
        self.job_limit = job_limit

    def as_dict(self) -> Dict[str, Any]:
        """The ``repro status --json`` payload."""
        service = self.service
        return {
            "schema": SCHEMA,
            "uptime_seconds": service.uptime_seconds(),
            "fleet": service.fleet.describe(),
            "queue": {
                "depth": len(service.queue),
                "running": service.queue.running,
                "max_pending": service.queue.max_pending,
            },
            "queue_wait": service.queue_wait.as_dict(),
            "alloc": self._alloc_dict(),
            "totals": {
                "submissions": service.submissions,
                "completed": service.jobs_completed,
                "failed": service.jobs_failed,
                "cache_hits": service.cache_hits,
                "coalesced": service.coalesced,
                "dedup_ratio": service.dedup_ratio(),
                "engine_runs": service.engine_runs,
            },
            "cache": service.cache.stats(),
            "jobs": [job.to_dict() for job in service.recent_jobs(self.job_limit)],
        }

    def _alloc_dict(self) -> Dict[str, Any]:
        """The allocation-policy section: policy always, arms under ucb."""
        service = self.service
        alloc: Dict[str, Any] = {"policy": service.alloc}
        if service.alloc == "ucb":
            summary = service.allocator.summary()
            alloc["slice_budget"] = service.slice_budget
            alloc["arms_total"] = summary["arms"]
            alloc["arms_live"] = summary["live"]
            alloc["pulls"] = summary["pulls"]
            alloc["schedules"] = summary["schedules"]
            alloc["arms"] = service.allocator.stats()
        return alloc

    def format(self) -> str:
        """The ``repro status`` text rendering."""
        service = self.service
        wait = service.queue_wait
        lines = [
            f"repro service — up {service.uptime_seconds():.0f}s, "
            f"fleet {service.fleet.size} ({service.fleet.mode}), "
            f"alloc {service.alloc}, "
            f"queue {len(service.queue)} pending / "
            f"{service.queue.running} running",
            f"  submissions {service.submissions}  "
            f"completed {service.jobs_completed}  "
            f"failed {service.jobs_failed}  "
            f"cache hits {service.cache_hits}  "
            f"coalesced {service.coalesced}  "
            f"dedup {service.dedup_ratio():.0%}  "
            f"engine runs {service.engine_runs}",
            f"  queue wait: mean {wait.mean:.3f}s  "
            f"max {(wait.maximum if wait.count else 0.0):.3f}s  "
            f"over {wait.count} dispatched job(s)",
            f"  cache: {service.cache.stats()['entries']} entries at "
            f"{service.cache.root}",
        ]
        if service.alloc == "ucb" and len(service.allocator):
            lines.append("")
            lines.append(_arms_table(service.allocator.stats()))
        jobs = service.recent_jobs(self.job_limit)
        if jobs:
            lines.append("")
            lines.append(_jobs_table(jobs))
        return "\n".join(lines)


def _verdict_cell(job: Job) -> str:
    """One-word verdict summary for the text table."""
    if job.error is not None:
        return job.error.split(":", 1)[0]
    verdict: Optional[Dict[str, Any]] = job.verdict
    if verdict is None:
        return "-"
    kind = verdict.get("kind")
    if kind == "check":
        return "clean" if verdict.get("clean") else "STILL-BUGGY"
    if kind == "detect":
        if not verdict.get("manifested"):
            return "no-manifest"
        return ",".join(verdict.get("flagged_by", [])) or "manifested"
    if kind == "explore":
        return f"{verdict.get('distinct_outcomes', 0)} outcomes"
    if kind == "static":
        return f"{verdict.get('candidates', 0)} candidates"
    return "?"


def _arms_table(arms: List[Dict[str, Any]]) -> str:
    """Per-arm allocator stats for the ucb text dashboard."""
    header = (
        f"  {'arm':14s} {'strategy':14s} {'pulls':>5s} {'sched':>7s} "
        f"{'payout':>8s} {'mean':>8s} {'finds':>5s}  state"
    )
    rows = [header, "  " + "-" * (len(header) - 2)]
    for arm in arms:
        rows.append(
            f"  {arm['job']:14s} {arm['strategy']:14s} {arm['pulls']:>5d} "
            f"{arm['schedules']:>7d} {arm['payout']:>8.2f} "
            f"{arm['mean_payout']:>8.4f} {arm['findings']:>5d}  "
            f"{'retired' if arm['retired'] else 'live'}"
        )
    return "\n".join(rows)


def _jobs_table(jobs: List[Job]) -> str:
    header = (
        f"  {'id':6s} {'kind':8s} {'kernel':26s} {'state':8s} "
        f"{'src':7s} {'subs':>4s} {'runs':>6s} {'wall':>8s}  verdict"
    )
    rows = [header, "  " + "-" * (len(header) - 2)]
    for job in jobs:
        wall = job.wall_seconds()
        source = "cache" if job.cached else "fleet"
        rows.append(
            f"  {job.id:6s} {job.kind.value:8s} {job.kernel:26s} "
            f"{job.state.value:8s} {source:7s} {job.submissions:>4d} "
            f"{job.engine_runs:>6d} "
            f"{(f'{wall:.3f}s' if wall is not None else '-'):>8s}  "
            f"{_verdict_cell(job)}"
        )
    return "\n".join(rows)
