"""The wire protocol: newline-delimited JSON over a local socket.

One request per line, one response per line, UTF-8 JSON both ways — an
"HTTP-ish" local protocol that ``nc``/``socat`` can speak and every
language can client in ten lines.  The service listens on a Unix domain
socket by default (filesystem permissions are the auth model) or on a
loopback TCP port where Unix sockets are unavailable.

Requests are ``{"op": <name>, ...}``; responses always carry ``"ok"``:

========== ============================================ =========================
op         request fields                               response (``ok: true``)
========== ============================================ =========================
``ping``   —                                            ``service``, ``uptime_seconds``
``submit`` ``kind``, ``kernel``, ``options?``,          ``job`` (its carrier job —
           ``wait?`` (bool), ``timeout?`` (s)           final when ``wait``/cached)
``result`` ``id``                                       ``job`` (non-blocking)
``wait``   ``id``, ``timeout?`` (s)                     ``job`` (after completion)
``status`` —                                            the dashboard dict
``shutdown`` —                                          acknowledgement; server stops
========== ============================================ =========================

Errors come back as ``{"ok": false, "error": "...", "retryable": bool}``
(``retryable`` marks admission-control refusals).  A connection may pipe
any number of requests; the CLI clients use one connection per command.
"""

from __future__ import annotations

import asyncio
import json
import socket
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.service.dashboard import Dashboard
from repro.service.jobs import JobError
from repro.service.queue import AdmissionError, ReproService

__all__ = [
    "SCHEMA",
    "ServiceClient",
    "decode",
    "encode",
    "request_once",
    "serve",
    "start_server",
]

SCHEMA = "repro.service/v1"

#: Generous per-line cap: a request is a few hundred bytes, a response a
#: few hundred KB at worst (a long jobs table); 8 MiB refuses abuse.
MAX_LINE = 8 * 1024 * 1024


def encode(payload: Dict[str, Any]) -> bytes:
    """One JSON line, ready to write."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def decode(line: bytes) -> Dict[str, Any]:
    """Parse one request/response line (raises ``JobError`` on garbage)."""
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        raise JobError("malformed JSON line") from None
    if not isinstance(payload, dict):
        raise JobError("request must be a JSON object")
    return payload


# -- server ------------------------------------------------------------------


async def _dispatch(
    service: ReproService, request: Dict[str, Any], stop: asyncio.Event
) -> Dict[str, Any]:
    """Execute one request against the service; always returns a response."""
    op = request.get("op")
    if op == "ping":
        return {
            "ok": True,
            "service": SCHEMA,
            "uptime_seconds": service.uptime_seconds(),
        }
    if op == "submit":
        kernel = request.get("kernel")
        if not isinstance(kernel, str):
            return {"ok": False, "error": "submit needs a 'kernel' name"}
        job = service.submit(
            request.get("kind", "detect"), kernel, request.get("options")
        )
        if request.get("wait") and not job.finished:
            try:
                await service.wait(job.id, timeout=request.get("timeout"))
            except asyncio.TimeoutError:
                return {
                    "ok": False,
                    "error": f"timed out waiting for job {job.id}",
                    "job": job.to_dict(),
                }
        return {"ok": True, "job": job.to_dict()}
    if op == "result":
        return {"ok": True, "job": service.get_job(request["id"]).to_dict()}
    if op == "wait":
        try:
            job = await service.wait(
                request["id"], timeout=request.get("timeout")
            )
        except asyncio.TimeoutError:
            return {
                "ok": False,
                "error": f"timed out waiting for job {request['id']}",
            }
        return {"ok": True, "job": job.to_dict()}
    if op == "status":
        service.cache.record_metrics()
        return {"ok": True, **Dashboard(service).as_dict()}
    if op == "shutdown":
        stop.set()
        return {"ok": True, "stopping": True}
    return {"ok": False, "error": f"unknown op {op!r}"}


async def _handle_connection(
    service: ReproService,
    stop: asyncio.Event,
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
) -> None:
    """Serve one client connection: a request/response loop until EOF."""
    try:
        while True:
            try:
                line = await reader.readline()
            except (ValueError, ConnectionError):
                break  # over-long line or peer reset
            if not line:
                break
            if not line.strip():
                continue
            try:
                request = decode(line)
                response = await _dispatch(service, request, stop)
            except AdmissionError as exc:
                response = {"ok": False, "error": str(exc), "retryable": True}
            except (JobError, KeyError) as exc:
                response = {"ok": False, "error": str(exc)}
            writer.write(encode(response))
            await writer.drain()
    except asyncio.CancelledError:
        pass  # server shutting down while we awaited the next request
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass


async def start_server(
    service: ReproService,
    socket_path: Optional[Union[str, Path]] = None,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
) -> "tuple[asyncio.AbstractServer, asyncio.Event]":
    """Bind the protocol onto ``service``; returns (server, stop event).

    Exactly one of ``socket_path`` / ``port`` selects the transport.
    The stop event is set by a ``shutdown`` request (or by the caller)
    to end :func:`serve`'s lifetime.
    """
    if (socket_path is None) == (port is None):
        raise ValueError("pass exactly one of socket_path or port")
    stop = asyncio.Event()

    async def handler(reader, writer):
        await _handle_connection(service, stop, reader, writer)

    if socket_path is not None:
        path = Path(socket_path)
        if path.exists():
            path.unlink()  # stale socket from an unclean previous exit
        server = await asyncio.start_unix_server(
            handler, path=str(path), limit=MAX_LINE
        )
    else:
        server = await asyncio.start_server(
            handler, host=host, port=port, limit=MAX_LINE
        )
    return server, stop


async def serve(
    service: ReproService,
    socket_path: Optional[Union[str, Path]] = None,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
) -> None:
    """Run the service until a ``shutdown`` request arrives.

    The whole ``repro serve`` lifetime: start the fleet and scheduler,
    bind the socket, serve requests, then tear everything down (and
    unlink the Unix socket) on the way out.
    """
    await service.start()
    server, stop = await start_server(
        service, socket_path=socket_path, host=host, port=port
    )
    try:
        await stop.wait()
    finally:
        server.close()
        await server.wait_closed()
        await service.close()
        if socket_path is not None:
            try:
                Path(socket_path).unlink()
            except OSError:
                pass


# -- clients -----------------------------------------------------------------


class ServiceClient:
    """Blocking one-connection-per-request client (the CLI's side).

    Deliberately synchronous and dependency-free: ``repro submit`` and
    ``repro status`` are short-lived processes that open a socket, write
    one line, read one line, and exit.
    """

    def __init__(
        self,
        socket_path: Optional[Union[str, Path]] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        timeout: Optional[float] = None,
    ):
        if (socket_path is None) == (port is None):
            raise ValueError("pass exactly one of socket_path or port")
        self.socket_path = str(socket_path) if socket_path is not None else None
        self.host = host
        self.port = port
        self.timeout = timeout

    def _connect(self) -> socket.socket:
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
            return sock
        assert self.port is not None
        return socket.create_connection(
            (self.host, self.port), timeout=self.timeout
        )

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one request and return the decoded response."""
        payload = {"op": op, **fields}
        with self._connect() as sock:
            sock.sendall(encode(payload))
            with sock.makefile("rb") as fh:
                line = fh.readline(MAX_LINE)
        if not line:
            raise ConnectionError("service closed the connection mid-request")
        return decode(line)

    # Convenience wrappers mirroring the op table above.

    def ping(self) -> Dict[str, Any]:
        return self.request("ping")

    def submit(
        self,
        kernel: str,
        kind: str = "detect",
        options: Optional[Dict[str, Any]] = None,
        wait: bool = True,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        return self.request(
            "submit", kernel=kernel, kind=kind, options=options or {},
            wait=wait, timeout=timeout,
        )

    def status(self) -> Dict[str, Any]:
        return self.request("status")

    def shutdown(self) -> Dict[str, Any]:
        return self.request("shutdown")


async def request_once(
    payload: Dict[str, Any],
    socket_path: Optional[Union[str, Path]] = None,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
) -> Dict[str, Any]:
    """Async one-shot client (used by tests and embedded consumers)."""
    if (socket_path is None) == (port is None):
        raise ValueError("pass exactly one of socket_path or port")
    if socket_path is not None:
        reader, writer = await asyncio.open_unix_connection(
            str(socket_path), limit=MAX_LINE
        )
    else:
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_LINE
        )
    try:
        writer.write(encode(payload))
        await writer.drain()
        line = await reader.readline()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass
    if not line:
        raise ConnectionError("service closed the connection mid-request")
    return decode(line)
