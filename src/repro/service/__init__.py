"""Checking-as-a-service: job queue, worker fleet, persistent result cache.

``repro serve`` turns the one-shot CLI subcommands into a long-running
service: submissions arrive over a local socket as JSON lines
(:mod:`~repro.service.protocol`), pass a dedup ladder — persistent
verdict cache (:mod:`~repro.service.resultcache`), then in-flight
coalescing and admission control (:mod:`~repro.service.queue`) — and
run on a forked process-pool fleet (:mod:`~repro.service.workers`)
executing :func:`~repro.service.jobs.run_job` — or, under
``repro serve --alloc ucb``, as bandit-allocated exploration slices
(:mod:`~repro.service.slices`) that checkpoint and resume through
:class:`~repro.sim.frontier.ExplorationFrontier`.  ``repro status``
renders the :mod:`~repro.service.dashboard`.  ``docs/service.md`` is the
handbook: protocol reference, job lifecycle, cache-key semantics, fleet
sizing, and a walkthrough; ``docs/allocator.md`` covers slice
scheduling.
"""

from repro.service.dashboard import Dashboard
from repro.service.jobs import (
    Job,
    JobError,
    JobKind,
    JobOptions,
    JobState,
    cache_key,
    kernel_cache_key,
    run_job,
)
from repro.service.queue import (
    ALLOC_POLICIES,
    AdmissionError,
    JobQueue,
    ReproService,
)
from repro.service.resultcache import ResultCache
from repro.service.slices import job_sliceable, run_slice
from repro.service.workers import WorkerFleet, default_fleet_size

__all__ = [
    "ALLOC_POLICIES",
    "AdmissionError",
    "Dashboard",
    "Job",
    "JobError",
    "JobKind",
    "JobOptions",
    "JobState",
    "JobQueue",
    "ReproService",
    "ResultCache",
    "WorkerFleet",
    "cache_key",
    "default_fleet_size",
    "job_sliceable",
    "kernel_cache_key",
    "run_job",
    "run_slice",
]
