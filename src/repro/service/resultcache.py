"""Persistent on-disk verdict cache, keyed by canonical cache keys.

One JSON file per entry under a cache directory, named by the submission
cache key (a SHA-256 hex string from :func:`repro.service.jobs.cache_key`,
which folds together the content-addressed program fingerprint and every
verdict-relevant option).  The layout is deliberately primitive:

* **one key = one file** — concurrent services sharing a directory never
  contend on an index, and a corrupt or truncated entry damages exactly
  one key;
* **atomic publication** — entries are written to a temp file and
  ``os.replace``-d into place, so a reader sees either nothing or a
  complete entry, never a partial write;
* **self-describing** — each entry carries the cache schema version,
  its key, the verdict payload, and provenance (kind, kernel, engine
  runs paid, wall seconds, creation time), so ``repro status`` can
  attribute a hit and a schema bump invalidates every old entry on
  read (stale entries are simply treated as misses).

What invalidates a cached verdict is entirely a property of the *key*
(see ``docs/service.md``): a program edit, a different reduction /
preemption bound / worker count / memoization setting, a different
schedule budget, or a bump of either the key schema or this entry
schema.  The cache itself never inspects verdicts.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.obs import metrics as obs_metrics

__all__ = ["ResultCache"]

#: Entry schema: bump to orphan (ignore) every previously written entry.
ENTRY_SCHEMA = "repro.service.cache/v1"

_KEY_CHARS = set("0123456789abcdef")


class ResultCache:
    """Directory-backed verdict store with hit/miss accounting.

    ``root`` is created on first use.  ``get``/``put`` are safe to call
    from several service processes sharing the directory; in-process the
    service serialises them on the event loop.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # -- keys --------------------------------------------------------------

    @staticmethod
    def _validate_key(key: str) -> str:
        # Keys become file names: accept only the sha256-hex alphabet so
        # a malformed wire key can never traverse outside the cache dir.
        if not key or len(key) != 64 or not set(key) <= _KEY_CHARS:
            raise ValueError(f"malformed cache key: {key!r}")
        return key

    def _path(self, key: str) -> Path:
        return self.root / f"{self._validate_key(key)}.json"

    # -- access ------------------------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached entry for ``key``, or ``None`` (miss).

        Unreadable, truncated, or schema-mismatched entries count as
        misses — the job just runs again and overwrites them.
        """
        path = self._path(key)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if (
            not isinstance(entry, dict)
            or entry.get("schema") != ENTRY_SCHEMA
            or entry.get("key") != key
        ):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(
        self,
        key: str,
        verdict: Dict[str, Any],
        *,
        kind: str,
        kernel: str,
        engine_runs: int,
        wall_seconds: float,
    ) -> Dict[str, Any]:
        """Atomically publish one verdict entry; returns the stored dict."""
        entry = {
            "schema": ENTRY_SCHEMA,
            "key": self._validate_key(key),
            "kind": kind,
            "kernel": kernel,
            "verdict": verdict,
            "engine_runs": engine_runs,
            "wall_seconds": wall_seconds,
            "created_ts": time.time(),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.writes += 1
        return entry

    # -- reporting ---------------------------------------------------------

    def __len__(self) -> int:
        if not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("*.json"))

    def hit_rate(self) -> float:
        """Fraction of lookups answered from disk."""
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, Any]:
        """Dashboard-ready counters."""
        return {
            "path": str(self.root),
            "entries": len(self),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "hit_rate": self.hit_rate(),
        }

    def record_metrics(self) -> None:
        """Publish totals to :mod:`repro.obs.metrics` (no-op when disabled).

        Gauges, not counters: this may be called on every ``status``
        request, so last-write-wins semantics are the safe choice (the
        per-event ``service.*`` counters live in the service core).
        """
        registry = obs_metrics.active()
        if registry is None:
            return
        registry.set_gauge("service.cache_lookup_total", self.hits + self.misses)
        registry.set_gauge("service.cache_hit_total", self.hits)
        registry.set_gauge("service.cache_entries", len(self))
