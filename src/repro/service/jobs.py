"""Job model for checking-as-a-service: kinds, options, keys, execution.

A *job* is one unit of checking work the service accepts over the wire:
run a kernel's detector battery (``detect``), verify its fix (``check``),
enumerate its outcome set (``explore``), run the static analyzer
(``static``), or analyze a real Python ``threading`` module end to end —
frontend, lift, confirm (``source``, keyed on the file's content digest
plus the frontend version rather than a program fingerprint).  Everything about a job that can change its verdict is
captured in :class:`JobOptions` and folded — together with the
content-addressed :func:`~repro.sim.statecache.program_fingerprint` of
the program(s) the job actually executes — into a :func:`cache_key`, so
the persistent result cache (:mod:`repro.service.resultcache`) and the
in-flight dedup layer (:mod:`repro.service.queue`) agree on what
"identical submission" means.

:func:`run_job` is the worker-side entry point: a pure function of
``(kind, kernel name, options)`` returning a JSON-native payload, so it
crosses a fork/pickle boundary untouched and its verdicts are
bit-comparable with the one-shot CLI subcommands it mirrors
(``repro detect`` / ``repro kernel`` / ``repro static``).
"""

from __future__ import annotations

import enum
import hashlib
import time
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Optional, Tuple

from repro.sim.program import Program
from repro.sim.statecache import program_fingerprint

__all__ = [
    "Job",
    "JobError",
    "JobKind",
    "JobOptions",
    "JobState",
    "VERDICT_BUILDERS",
    "cache_key",
    "check_verdict",
    "detect_verdict",
    "exploration_setup",
    "explore_verdict",
    "kernel_cache_key",
    "run_job",
    "source_cache_key",
]

#: Version tag baked into every cache key; bump on any change to the
#: verdict payloads or option normalisation so stale persisted verdicts
#: can never be served under a new scheme.
KEY_SCHEMA = "repro.service.key/v2"


class JobError(Exception):
    """A submission the service cannot accept (unknown kernel/kind/option)."""


class JobKind(enum.Enum):
    """What a job runs.  Values are the wire/CLI spelling."""

    CHECK = "check"      # verify the *fixed* program over every schedule
    DETECT = "detect"    # detector battery on a manifesting trace
    EXPLORE = "explore"  # enumerate the buggy program's outcome set
    STATIC = "static"    # zero-schedule static analysis
    SOURCE = "source"    # real-Python frontend + lift-to-simulator confirm

    @classmethod
    def parse(cls, text: str) -> "JobKind":
        try:
            return cls(text)
        except ValueError:
            raise JobError(
                f"unknown job kind {text!r}; one of "
                f"{', '.join(k.value for k in cls)}"
            ) from None


class JobState(enum.Enum):
    """Lifecycle states (``docs/service.md`` has the full state machine)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


#: Per-kind default exploration budget, matching the one-shot CLI paths
#: (``verify_fixed`` defaults to 50000 schedules, ``source`` matches the
#: CLI ``--budget`` default because lifted exploration is serial,
#: everything else 20000).
_DEFAULT_BUDGET = {JobKind.CHECK: 50000, JobKind.SOURCE: 800}


@dataclass(frozen=True)
class JobOptions:
    """The verdict-relevant knobs of a submission, normalised.

    Every field participates in the cache key: ``reduction`` and
    ``preemption_bound`` genuinely change which schedules run,
    ``memoize`` changes which runs complete, and ``workers`` *should*
    be verdict-neutral but stays in the key so a cached verdict is
    always attributable to one exact configuration (conservative
    misses over clever sharing).
    """

    reduction: Optional[str] = None
    workers: Optional[int] = None
    preemption_bound: Optional[int] = None
    memoize: bool = False
    max_schedules: Optional[int] = None
    #: Memory model override (``"sc"`` / ``"tso"``); ``None`` runs the
    #: kernel under its declared model.
    memory: Optional[str] = None

    @classmethod
    def from_dict(cls, raw: Optional[Dict[str, Any]]) -> "JobOptions":
        """Validate a wire-side options dict (unknown keys are errors)."""
        raw = dict(raw or {})
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = sorted(set(raw) - known)
        if unknown:
            raise JobError(f"unknown job option(s): {', '.join(unknown)}")
        for key in ("workers", "preemption_bound", "max_schedules"):
            if raw.get(key) is not None and (
                not isinstance(raw[key], int) or raw[key] < 1
            ):
                raise JobError(f"option {key} must be a positive integer")
        if raw.get("reduction") is not None:
            from repro.sim.explorer import REDUCTIONS

            if raw["reduction"] not in REDUCTIONS:
                raise JobError(
                    f"option reduction must be one of {', '.join(REDUCTIONS)}"
                )
        if raw.get("memory") is not None:
            from repro.sim.memory import MEMORY_MODELS

            if raw["memory"] not in MEMORY_MODELS:
                raise JobError(
                    f"option memory must be one of {', '.join(MEMORY_MODELS)}"
                )
        return cls(
            reduction=raw.get("reduction"),
            workers=raw.get("workers"),
            preemption_bound=raw.get("preemption_bound"),
            memoize=bool(raw.get("memoize", False)),
            max_schedules=raw.get("max_schedules"),
            memory=raw.get("memory"),
        )

    def budget(self, kind: JobKind) -> int:
        """The effective ``max_schedules`` for ``kind``."""
        if self.max_schedules is not None:
            return self.max_schedules
        return _DEFAULT_BUDGET.get(kind, 20000)

    def key_items(self, kind: JobKind) -> Tuple:
        """The normalised option tuple folded into the cache key."""
        return (
            ("reduction", self.reduction or "none"),
            ("workers", self.workers or 1),
            ("preemption_bound", self.preemption_bound),
            ("memoize", self.memoize),
            ("max_schedules", self.budget(kind)),
            ("memory", self.memory or "declared"),
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native rendering (for job payloads and runlog records)."""
        return {
            "reduction": self.reduction,
            "workers": self.workers,
            "preemption_bound": self.preemption_bound,
            "memoize": self.memoize,
            "max_schedules": self.max_schedules,
            "memory": self.memory,
        }


def cache_key(kind: JobKind, options: JobOptions, *programs: Program) -> str:
    """The persistent-cache / dedup key of one submission.

    ``programs`` are the program(s) the job actually executes (the fixed
    program for ``check``, the buggy one otherwise), identified by their
    content-addressed fingerprints — so a verdict survives interpreter
    restarts and kernel *renames*, but any edit to the executed code or
    its declarations invalidates it.
    """
    body = (
        KEY_SCHEMA,
        kind.value,
        tuple(program_fingerprint(p) for p in programs),
        options.key_items(kind),
    )
    return hashlib.sha256(repr(body).encode("utf-8")).hexdigest()


def _target_program(kind: JobKind, kernel: Any, options: JobOptions) -> Program:
    """The program a job executes, with any memory-model override applied."""
    program = kernel.fixed if kind is JobKind.CHECK else kernel.buggy
    if options.memory is not None:
        program = program.with_memory(options.memory)
    return program


def kernel_cache_key(kind: JobKind, kernel: Any, options: JobOptions) -> str:
    """Cache key for a kernel submission: fingerprint what the job runs."""
    return cache_key(kind, options, _target_program(kind, kernel, options))


def source_cache_key(path: str, options: JobOptions) -> str:
    """Cache key for a ``source`` submission: digest of the file's bytes.

    The key folds in :data:`~repro.static.pysource.PYSOURCE_VERSION` so
    any frontend change invalidates every cached source verdict — the
    source-side analogue of a kernel edit changing its program
    fingerprint.  Keyed on content, not path: a renamed copy of the
    same module reuses its verdict.
    """
    from repro.static.pysource import PYSOURCE_VERSION

    with open(path, "rb") as handle:
        digest = hashlib.sha256(handle.read()).hexdigest()
    body = (
        KEY_SCHEMA,
        JobKind.SOURCE.value,
        PYSOURCE_VERSION,
        digest,
        options.key_items(JobKind.SOURCE),
    )
    return hashlib.sha256(repr(body).encode("utf-8")).hexdigest()


@dataclass
class Job:
    """One accepted submission and everything the dashboard shows about it."""

    id: str
    kind: JobKind
    kernel: str
    options: JobOptions
    key: str
    state: JobState = JobState.QUEUED
    #: Answered straight from the persistent cache (never dispatched).
    cached: bool = False
    #: Total identical submissions folded into this job (>= 1); the
    #: ones beyond the first were coalesced while it was in flight.
    submissions: int = 1
    verdict: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    #: Engine runs this job actually launched (0 for cached answers).
    engine_runs: int = 0
    #: Dispatches this job took (1 under FIFO; >= 1 under sliced alloc).
    slices: int = 0
    #: Serialized exploration frontier between slices (hex pickle of an
    #: :class:`~repro.sim.frontier.ExplorationFrontier`); ``None`` before
    #: the first slice and after the terminal one.
    frontier: Optional[str] = None
    #: Cumulative schedule attempts charged to the allocator so far.
    attempts_done: int = 0
    #: Distinct outcomes seen by the end of the last slice (payout base).
    outcomes_seen: int = 0
    submitted_ts: float = field(default_factory=time.time)
    started_ts: Optional[float] = None
    finished_ts: Optional[float] = None

    @property
    def finished(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED)

    def wall_seconds(self) -> Optional[float]:
        """Submit-to-verdict latency (None while in flight)."""
        if self.finished_ts is None:
            return None
        return self.finished_ts - self.submitted_ts

    def to_dict(self) -> Dict[str, Any]:
        """The wire/JSON rendering of this job."""
        return {
            "id": self.id,
            "kind": self.kind.value,
            "kernel": self.kernel,
            "state": self.state.value,
            "cached": self.cached,
            "submissions": self.submissions,
            "options": self.options.to_dict(),
            "verdict": self.verdict,
            "error": self.error,
            "engine_runs": self.engine_runs,
            "slices": self.slices,
            "wall_seconds": self.wall_seconds(),
        }


# -- worker-side execution ---------------------------------------------------
#
# The exploration-backed kinds (check / detect / explore) are split into
# three shareable pieces — explorer construction, the explore() call
# arguments, and the verdict builder — so that the run-to-completion path
# below and the sliced path in :mod:`repro.service.slices` are guaranteed
# to produce bit-identical verdicts: both call exactly these functions,
# differing only in whether ``slice_budget``/``frontier`` are threaded
# through the ``explore()`` call.


def _never(run: Any) -> bool:
    """The ``explore`` predicate: enumerate everything, match nothing."""
    return False


def exploration_setup(
    kind: JobKind, kernel: Any, options: JobOptions
) -> Tuple[Program, Any, Any, bool]:
    """(program, explorer, predicate, stop_on_first) for one job.

    Only valid for the exploration-backed kinds; ``static``/``source``
    never build an explorer.
    """
    from repro.sim.explorer import make_explorer

    program = _target_program(kind, kernel, options)
    if kind in (JobKind.CHECK, JobKind.DETECT):
        explorer = make_explorer(
            program, options.budget(kind), 5000,
            options.preemption_bound, options.workers, options.memoize,
            keep_matches=1, reduction=options.reduction,
        )
        return program, explorer, kernel.failure, True
    if kind is JobKind.EXPLORE:
        explorer = make_explorer(
            program, options.budget(kind), 5000,
            options.preemption_bound, options.workers, options.memoize,
            reduction=options.reduction,
        )
        return program, explorer, _never, False
    raise JobError(f"job kind {kind.value!r} is not exploration-backed")


def check_verdict(program: Program, result: Any) -> Dict[str, Any]:
    """Verdict payload of a finished ``check`` exploration."""
    return {
        "kind": JobKind.CHECK.value,
        "clean": bool(result.complete and not result.found),
        "complete": result.complete,
        "failures_found": result.match_count,
    }


def detect_verdict(program: Program, result: Any) -> Dict[str, Any]:
    """Verdict payload of a finished ``detect`` exploration."""
    from repro.detectors import DetectorSuite

    verdict: Dict[str, Any] = {
        "kind": JobKind.DETECT.value,
        "manifested": bool(result.matching),
        "flagged_by": [],
        "kinds": [],
    }
    if result.matching:
        failing = result.matching[0]
        suite_result = DetectorSuite.for_program(program).analyse(
            failing.trace
        )
        verdict["flagged_by"] = suite_result.flagged_by()
        verdict["kinds"] = sorted(k.value for k in suite_result.kinds_found())
        verdict["schedule"] = list(failing.schedule)
    return verdict


def explore_verdict(program: Program, result: Any) -> Dict[str, Any]:
    """Verdict payload of a finished ``explore`` exploration."""
    from repro.obs.runlog import outcome_digest

    return {
        "kind": JobKind.EXPLORE.value,
        "complete": result.complete,
        "distinct_outcomes": len(result.outcomes),
        "outcome_digest": outcome_digest(result.outcomes),
        "statuses": {
            status.value: count
            for status, count in sorted(
                result.statuses.items(), key=lambda item: item[0].value
            )
        },
    }


VERDICT_BUILDERS = {
    JobKind.CHECK: check_verdict,
    JobKind.DETECT: detect_verdict,
    JobKind.EXPLORE: explore_verdict,
}


def _run_exploration(
    kind: JobKind, kernel: Any, options: JobOptions
) -> Tuple[Dict[str, Any], int]:
    """One-shot run of an exploration-backed kind."""
    program, explorer, predicate, stop_on_first = exploration_setup(
        kind, kernel, options
    )
    result = explorer.explore(predicate=predicate, stop_on_first=stop_on_first)
    return VERDICT_BUILDERS[kind](program, result), result.schedules_run


def _run_check(kernel: Any, options: JobOptions) -> Tuple[Dict[str, Any], int]:
    """Exhaustive fix verification, mirroring ``BugKernel.verify_fixed``."""
    return _run_exploration(JobKind.CHECK, kernel, options)


def _run_detect(kernel: Any, options: JobOptions) -> Tuple[Dict[str, Any], int]:
    """Find a manifesting trace and run the battery — ``repro detect``."""
    return _run_exploration(JobKind.DETECT, kernel, options)


def _run_explore(kernel: Any, options: JobOptions) -> Tuple[Dict[str, Any], int]:
    """Enumerate the buggy program's terminal outcome set."""
    return _run_exploration(JobKind.EXPLORE, kernel, options)


def _run_static(kernel: Any, options: JobOptions) -> Tuple[Dict[str, Any], int]:
    """Zero-schedule static analysis of the buggy program."""
    from repro.static import analyse

    report = analyse(_target_program(JobKind.STATIC, kernel, options))
    by_kind: Dict[str, int] = {}
    for candidate in report.active():
        by_kind[candidate.kind] = by_kind.get(candidate.kind, 0) + 1
    verdict = {
        "kind": JobKind.STATIC.value,
        "candidates": len(report.active()),
        "pairs": len(report.pairs),
        "by_kind": dict(sorted(by_kind.items())),
    }
    return verdict, 0


def _run_source(path: str, options: JobOptions) -> Tuple[Dict[str, Any], int]:
    """Real-Python frontend + lifted confirmation — ``repro lift PATH``.

    The "kernel" field of a ``source`` job carries the module path.
    Exploration of the lifted program is always serial: its thread
    bodies are exec'd functions, which cannot cross a pickle boundary.
    """
    from repro.static.lift import confirm
    from repro.static.pysource import load_source

    module = load_source(path)
    outcome = confirm(module.summary, max_schedules=options.budget(JobKind.SOURCE))
    verdict = dict(outcome.to_json())
    verdict["kind"] = JobKind.SOURCE.value
    verdict["module"] = module.name
    verdict["fixed_of"] = module.fixed_of
    verdict["annotated_bugs"] = [bug.describe() for bug in module.bugs]
    verdict["confirmed"] = len(outcome.confirmed)
    return verdict, sum(outcome.statuses.values())


_RUNNERS = {
    JobKind.CHECK: _run_check,
    JobKind.DETECT: _run_detect,
    JobKind.EXPLORE: _run_explore,
    JobKind.STATIC: _run_static,
}


def run_job(
    kind_value: str, kernel_name: str, options_dict: Dict[str, Any]
) -> Dict[str, Any]:
    """Execute one job and return its JSON-native result payload.

    Runs inside a fleet worker (forked process or inline thread); takes
    and returns only picklable primitives.  ``engine_runs`` counts the
    schedules the underlying exploration launched — the number the
    service's dedup layer proves it saved on cache hits.
    """
    kind = JobKind.parse(kind_value)
    options = JobOptions.from_dict(options_dict)
    if kind is JobKind.SOURCE:
        # ``kernel_name`` is a module path for source jobs; no kernel
        # registry lookup happens on this branch.
        start = perf_counter()
        verdict, engine_runs = _run_source(kernel_name, options)
        return {
            "verdict": verdict,
            "engine_runs": engine_runs,
            "worker_wall_seconds": perf_counter() - start,
        }
    from repro.kernels import get_kernel

    kernel = get_kernel(kernel_name)
    start = perf_counter()
    verdict, engine_runs = _RUNNERS[kind](kernel, options)
    return {
        "verdict": verdict,
        "engine_runs": engine_runs,
        "worker_wall_seconds": perf_counter() - start,
    }
