"""Job queue, dedup/admission control, and the asyncio service core.

Three layers, bottom-up:

* :class:`JobQueue` — a plain FIFO of accepted jobs with two scaling
  levers in front of the worker fleet: **coalescing** (a submission
  whose cache key matches a queued or running job attaches to it
  instead of enqueuing — one engine run answers every waiter) and
  **admission control** (a bounded backlog: past ``max_pending``
  queued jobs, submissions are refused with a retryable error instead
  of growing latency without bound).
* :class:`ReproService` — the orchestrator: consult the persistent
  :class:`~repro.service.resultcache.ResultCache` first (a hit answers
  instantly with **zero** engine runs), then the queue's dedup layer,
  then dispatch to the :class:`~repro.service.workers.WorkerFleet`
  under a slot semaphore so at most ``fleet.size`` jobs run at once
  and the QUEUED → RUNNING transition is real, not cosmetic.
* the wire layer lives in :mod:`repro.service.protocol`; the status
  rendering in :mod:`repro.service.dashboard`.

Every finished job emits one ``service.job`` runlog record and bumps
the ``service.*`` metrics (``docs/observability.md``), so a service
under load is auditable with the same tooling as one-shot CLI runs.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Union

from repro.alloc.ucb import FINDING_BONUS, ArmKey, UCBAllocator
from repro.obs import metrics as obs_metrics
from repro.obs import runlog as obs_runlog
from repro.obs.metrics import HistogramStats
from repro.service.jobs import (
    Job,
    JobError,
    JobKind,
    JobOptions,
    JobState,
    kernel_cache_key,
    source_cache_key,
)
from repro.service.resultcache import ResultCache
from repro.service.workers import WorkerFleet

__all__ = ["ALLOC_POLICIES", "AdmissionError", "JobQueue", "ReproService"]

#: Scheduling policies of ``repro serve --alloc``: ``fifo`` is the
#: classic run-to-completion queue; ``ucb`` dispatches bandit-allocated
#: exploration slices (``docs/allocator.md``).
ALLOC_POLICIES = ("fifo", "ucb")


class AdmissionError(JobError):
    """The backlog is full; the client should retry later."""


def _verdict_is_finding(verdict: Dict[str, Any]) -> bool:
    """Whether a terminal verdict counts as a bug finding for arm payout."""
    return bool(verdict.get("manifested") or verdict.get("failures_found"))


class JobQueue:
    """FIFO of accepted jobs with cache-key dedup over in-flight work."""

    def __init__(self, max_pending: int = 256):
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.max_pending = max_pending
        self._pending: Deque[Job] = deque()
        #: cache key -> in-flight (queued or running) job, the dedup index.
        self._in_flight: Dict[str, Job] = {}

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def running(self) -> int:
        return sum(
            1 for job in self._in_flight.values()
            if job.state is JobState.RUNNING
        )

    def offer(self, job: Job) -> Job:
        """Admit ``job``, coalescing onto an identical in-flight job.

        Returns the job that will carry the verdict: ``job`` itself when
        enqueued, or the earlier submission it was folded into.  Raises
        :class:`AdmissionError` when the backlog is full.
        """
        existing = self._in_flight.get(job.key)
        if existing is not None and not existing.finished:
            existing.submissions += 1
            return existing
        if len(self._pending) >= self.max_pending:
            raise AdmissionError(
                f"queue full ({self.max_pending} pending jobs); retry later"
            )
        self._pending.append(job)
        self._in_flight[job.key] = job
        return job

    def take(self) -> Optional[Job]:
        """Pop the next queued job (stays in the dedup index while running)."""
        return self._pending.popleft() if self._pending else None

    def finish(self, job: Job) -> None:
        """Drop a finished job from the dedup index."""
        if self._in_flight.get(job.key) is job:
            del self._in_flight[job.key]


class ReproService:
    """The long-running checking service behind ``repro serve``.

    Owns the queue, the fleet, the persistent cache, per-job bookkeeping,
    and the scheduler task.  Protocol handlers call :meth:`submit` /
    :meth:`wait` / :meth:`get_job`; the dashboard reads the public
    counters.  All state is touched only from the event loop, so no
    locks are needed anywhere.
    """

    def __init__(
        self,
        cache: Union[ResultCache, str],
        fleet: Optional[WorkerFleet] = None,
        max_pending: int = 256,
        alloc: str = "fifo",
        slice_budget: int = 400,
    ):
        if alloc not in ALLOC_POLICIES:
            raise ValueError(
                f"alloc must be one of {', '.join(ALLOC_POLICIES)}, got {alloc!r}"
            )
        if slice_budget < 1:
            raise ValueError(f"slice_budget must be >= 1, got {slice_budget}")
        self.cache = cache if isinstance(cache, ResultCache) else ResultCache(cache)
        self.fleet = fleet if fleet is not None else WorkerFleet()
        self.queue = JobQueue(max_pending=max_pending)
        self.alloc = alloc
        self.slice_budget = slice_budget
        self.jobs: Dict[str, Job] = {}
        self.started_ts = time.time()
        # Lifetime totals, read by the dashboard.
        self.submissions = 0
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.cache_hits = 0
        self.coalesced = 0
        self.engine_runs = 0
        #: Submit-to-first-dispatch latency of dispatched (non-cached,
        #: non-coalesced) jobs; rendered by ``repro status``.
        self.queue_wait = HistogramStats()
        #: The bandit behind ``alloc="ucb"``; arms are (job id, label).
        self.allocator = UCBAllocator()
        #: Jobs admitted to the allocator arena, by id (ucb mode only).
        self._arena: Dict[str, Job] = {}
        #: Arm key per arena job id.
        self._arms: Dict[str, ArmKey] = {}
        #: Arena job ids with a slice currently in flight.
        self._dispatched: Set[str] = set()
        self._ids = itertools.count(1)
        self._wakeup = asyncio.Event()
        self._finished: Dict[str, asyncio.Event] = {}
        self._scheduler_task: Optional[asyncio.Task] = None
        self._slots = asyncio.Semaphore(self.fleet.size)
        self._closing = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Start the fleet and the scheduler loop (idempotent)."""
        self.fleet.start()
        if self._scheduler_task is None:
            self._scheduler_task = asyncio.create_task(self._scheduler())

    async def close(self) -> None:
        """Drain nothing, stop scheduling, shut the fleet down."""
        self._closing = True
        self._wakeup.set()
        if self._scheduler_task is not None:
            self._scheduler_task.cancel()
            try:
                await self._scheduler_task
            except asyncio.CancelledError:
                pass
            self._scheduler_task = None
        self.fleet.shutdown()

    # -- submission --------------------------------------------------------

    def submit(
        self,
        kind: Union[JobKind, str],
        kernel_name: str,
        options: Optional[Union[JobOptions, Dict[str, Any]]] = None,
    ) -> Job:
        """Accept one submission; returns the job carrying its verdict.

        Resolution order (the dedup ladder, cheapest first):

        1. **persistent cache** — a stored verdict under the same cache
           key answers immediately: the returned job is born ``DONE``
           with ``cached=True`` and zero engine runs;
        2. **in-flight coalescing** — an identical queued/running job
           absorbs the submission (``submissions`` increments);
        3. **enqueue** — a fresh job enters the FIFO, subject to
           admission control (:class:`AdmissionError` when full).
        """
        from repro.kernels import get_kernel, kernel_names

        kind = JobKind.parse(kind) if isinstance(kind, str) else kind
        if not isinstance(options, JobOptions):
            options = JobOptions.from_dict(options)
        if kind is JobKind.SOURCE:
            # ``kernel_name`` is a module path; key on its content
            # digest + frontend version instead of a kernel fingerprint.
            try:
                key = source_cache_key(kernel_name, options)
            except OSError as exc:
                raise JobError(f"unreadable source module: {exc}") from None
        else:
            try:
                kernel = get_kernel(kernel_name)
            except KeyError:
                raise JobError(
                    f"unknown kernel {kernel_name!r}; available: "
                    + ", ".join(kernel_names())
                ) from None
            key = kernel_cache_key(kind, kernel, options)
        self.submissions += 1
        obs_metrics.inc("service.submissions", kind=kind.value)

        entry = self.cache.get(key)
        if entry is not None:
            job = self._new_job(kind, kernel_name, options, key)
            job.cached = True
            job.verdict = entry["verdict"]
            job.state = JobState.DONE
            job.finished_ts = time.time()
            self.cache_hits += 1
            self.jobs_completed += 1
            obs_metrics.inc("service.cache_hits", kind=kind.value)
            self._finish_event(job.id).set()
            return job

        job = self._new_job(kind, kernel_name, options, key)
        try:
            carrier = self.queue.offer(job)
        except AdmissionError:
            del self.jobs[job.id]
            obs_metrics.inc("service.admission_refusals", kind=kind.value)
            raise
        if carrier is not job:
            # Coalesced: the earlier job answers this submission too.
            del self.jobs[job.id]
            self.coalesced += 1
            obs_metrics.inc("service.coalesced", kind=kind.value)
            return carrier
        obs_metrics.set_gauge("service.queue_depth", len(self.queue))
        self._wakeup.set()
        return job

    def _new_job(
        self, kind: JobKind, kernel_name: str, options: JobOptions, key: str
    ) -> Job:
        job = Job(
            id=f"j{next(self._ids):04d}",
            kind=kind,
            kernel=kernel_name,
            options=options,
            key=key,
        )
        self.jobs[job.id] = job
        return job

    # -- results -----------------------------------------------------------

    def get_job(self, job_id: str) -> Job:
        """Look a job up by id (``JobError`` for ids never issued)."""
        try:
            return self.jobs[job_id]
        except KeyError:
            raise JobError(f"unknown job id {job_id!r}") from None

    async def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job finishes (or ``asyncio.TimeoutError``)."""
        job = self.get_job(job_id)
        if not job.finished:
            await asyncio.wait_for(
                self._finish_event(job.id).wait(), timeout=timeout
            )
        return job

    def _finish_event(self, job_id: str) -> asyncio.Event:
        event = self._finished.get(job_id)
        if event is None:
            event = self._finished[job_id] = asyncio.Event()
        return event

    # -- scheduling --------------------------------------------------------

    async def _scheduler(self) -> None:
        """Dispatch work as slots free up, per the allocation policy."""
        if self.alloc == "ucb":
            await self._scheduler_ucb()
            return
        while not self._closing:
            job = self.queue.take()
            if job is None:
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            await self._slots.acquire()
            asyncio.create_task(self._run_one(job))

    async def _run_one(self, job: Job) -> None:
        """FIFO path: run one job start-to-verdict on the fleet."""
        self._mark_started(job)
        try:
            payload = await self.fleet.run(job)
            job.slices += 1
            self._complete(job, payload)
        except Exception as exc:  # worker died, bad kernel state, ...
            self._fail(job, exc)
        finally:
            self._seal(job)
            self._slots.release()

    # -- UCB slice scheduling ----------------------------------------------

    async def _scheduler_ucb(self) -> None:
        """Bandit loop: admit queued jobs as arms, dispatch slices.

        Jobs leave the FIFO immediately and live in the *arena* until
        their terminal slice; every dispatch is one allocator pull.  A
        job has at most one slice in flight (its frontier is serial), so
        in-flight arms are masked from selection rather than retired.
        """
        from repro.service.slices import job_sliceable

        while not self._closing:
            while True:
                job = self.queue.take()
                if job is None:
                    break
                label = job.kind.value + (
                    "" if job_sliceable(job.kind, job.options) else ":whole"
                )
                key = self.allocator.add_arm(job.id, label)
                self._arena[job.id] = job
                self._arms[job.id] = key
                obs_metrics.set_gauge("service.queue_depth", len(self.queue))
            key = self.allocator.select(
                exclude=[self._arms[jid] for jid in self._dispatched]
            )
            if key is not None:
                await self._slots.acquire()
                job = self._arena[key[0]]
                self._dispatched.add(job.id)
                asyncio.create_task(self._run_slice(job, key))
                continue
            # Nothing eligible: sleep until a submission or a slice
            # completion sets the wakeup (re-check after clear to close
            # the lost-wakeup window).
            self._wakeup.clear()
            if len(self.queue) or self.allocator.select(
                exclude=[self._arms[jid] for jid in self._dispatched]
            ) is not None:
                continue
            await self._wakeup.wait()

    async def _run_slice(self, job: Job, key: ArmKey) -> None:
        """One allocator pull: a frontier slice, or a whole unsliceable job."""
        from repro.service.slices import job_sliceable

        self._mark_started(job)
        try:
            if not job_sliceable(job.kind, job.options):
                payload = await self.fleet.run(job)
                job.slices += 1
                spent = max(1, int(payload.get("engine_runs", 0)))
                verdict = payload.get("verdict") or {}
                finding = _verdict_is_finding(verdict)
                self.allocator.record(
                    key, spent,
                    FINDING_BONUS if finding else 0.0,
                    finding=finding,
                )
                self._complete(job, payload)
            else:
                payload = await self.fleet.run_slice(
                    job, job.frontier, self.slice_budget
                )
                job.slices += 1
                attempts = int(payload["attempts"])
                spent = max(1, attempts - job.attempts_done)
                job.attempts_done = attempts
                outcomes = int(payload.get("distinct_outcomes", 0))
                fresh = max(0, outcomes - job.outcomes_seen)
                job.outcomes_seen = outcomes
                verdict = payload.get("verdict")
                finding = verdict is not None and _verdict_is_finding(verdict)
                self.allocator.record(
                    key, spent,
                    float(fresh) + (FINDING_BONUS if finding else 0.0),
                    finding=finding,
                )
                if verdict is not None:
                    job.frontier = None
                    self._complete(job, payload)
                else:
                    job.frontier = payload["frontier"]
        except Exception as exc:
            self._fail(job, exc)
        finally:
            self._dispatched.discard(job.id)
            if job.finished:
                self._arena.pop(job.id, None)
                self._arms.pop(job.id, None)
                self.allocator.retire_job(job.id)
                self._seal(job)
            self._slots.release()
            self._wakeup.set()

    # -- shared job lifecycle ----------------------------------------------

    def _mark_started(self, job: Job) -> None:
        """First dispatch only: flip to RUNNING and record queue wait."""
        if job.started_ts is not None:
            return
        job.state = JobState.RUNNING
        job.started_ts = time.time()
        wait = job.started_ts - job.submitted_ts
        self.queue_wait.observe(wait)
        obs_metrics.observe(
            "service.queue_wait_seconds", wait, kind=job.kind.value
        )
        obs_metrics.set_gauge("service.queue_depth", len(self.queue))

    def _complete(self, job: Job, payload: Dict[str, Any]) -> None:
        """Store a worker verdict and persist it to the result cache."""
        job.verdict = payload["verdict"]
        job.engine_runs = int(payload["engine_runs"])
        self.engine_runs += job.engine_runs
        job.state = JobState.DONE
        self.jobs_completed += 1
        obs_metrics.inc("service.jobs_completed", kind=job.kind.value)
        obs_metrics.inc("service.engine_runs", job.engine_runs)
        self.cache.put(
            job.key,
            job.verdict,
            kind=job.kind.value,
            kernel=job.kernel,
            engine_runs=job.engine_runs,
            wall_seconds=payload.get("worker_wall_seconds", 0.0),
        )

    def _fail(self, job: Job, exc: Exception) -> None:
        job.error = f"{type(exc).__name__}: {exc}"
        job.state = JobState.FAILED
        self.jobs_failed += 1
        obs_metrics.inc("service.jobs_failed", kind=job.kind.value)

    def _seal(self, job: Job) -> None:
        """Final bookkeeping once a job leaves the scheduler for good."""
        job.finished_ts = time.time()
        self.queue.finish(job)
        self._finish_event(job.id).set()
        wall = job.wall_seconds() or 0.0
        obs_metrics.observe(
            "service.job_seconds", wall, kind=job.kind.value
        )
        obs_runlog.emit(
            "service.job",
            job=job.to_dict(),
            queue_depth=len(self.queue),
            fleet=self.fleet.describe(),
        )

    # -- status ------------------------------------------------------------

    def uptime_seconds(self) -> float:
        """Seconds since the service object was created."""
        return time.time() - self.started_ts

    def dedup_ratio(self) -> float:
        """Fraction of submissions answered without a fresh engine run."""
        saved = self.cache_hits + self.coalesced
        return saved / self.submissions if self.submissions else 0.0

    def recent_jobs(self, limit: int = 50) -> List[Job]:
        """The newest ``limit`` jobs, oldest first (insertion ordered)."""
        jobs = list(self.jobs.values())
        return jobs[-limit:]
