"""Worker-side sliced job execution for allocator-driven scheduling.

Under ``repro serve --alloc ucb`` the scheduler no longer hands a worker
a whole job; it hands it **one slice** — "advance this job's exploration
by at most N schedule attempts, then checkpoint".  :func:`run_slice` is
the worker-side entry point, the sliced counterpart of
:func:`repro.service.jobs.run_job`:

* like ``run_job`` it is a pure function of picklable primitives (kind
  value, kernel name, options dict), plus the hex-encoded
  :class:`~repro.sim.frontier.ExplorationFrontier` of the previous slice
  (empty string for the first slice) and the slice budget;
* a **provisional** slice returns ``{"frontier": hex, ...}`` progress
  counters and no verdict — the scheduler requeues the job with the new
  frontier;
* the **terminal** slice (stack drained / budget exhausted / first
  finding under ``stop_on_first``) builds the verdict *in the worker*
  with exactly the same :data:`repro.service.jobs.VERDICT_BUILDERS`
  functions the one-shot path uses, over the same cumulative
  :class:`~repro.sim.explorer.ExplorationResult` — so a sliced job's
  verdict and ``engine_runs`` are bit-identical to ``run_job``'s.

Which jobs can slice (:func:`job_sliceable`): the exploration-backed
kinds (check / detect / explore) on a serial search under no reduction
or sleep sets — exactly the combinations whose explorers accept
``slice_budget``/``frontier`` (see ``docs/allocator.md``).  DPOR,
parallel searches, ``static`` and ``source`` jobs run to completion in
a single dispatch; the allocator still schedules them, as one
whole-job pull.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Dict, Optional

from repro.service.jobs import (
    VERDICT_BUILDERS,
    JobKind,
    JobOptions,
    exploration_setup,
)
from repro.sim.frontier import ExplorationFrontier

__all__ = ["SLICEABLE_KINDS", "job_sliceable", "run_slice"]

#: Kinds whose work is an exploration that can checkpoint mid-search.
SLICEABLE_KINDS = (JobKind.CHECK, JobKind.DETECT, JobKind.EXPLORE)

#: Reductions whose explorers support frontier checkpoints.
_SLICEABLE_REDUCTIONS = (None, "none", "sleepset")


def job_sliceable(kind: JobKind, options: JobOptions) -> bool:
    """Whether this (kind, options) pair can run as frontier slices."""
    return (
        kind in SLICEABLE_KINDS
        and (options.workers or 1) <= 1
        and options.reduction in _SLICEABLE_REDUCTIONS
    )


def run_slice(
    kind_value: str,
    kernel_name: str,
    options_dict: Dict[str, Any],
    frontier_hex: str,
    slice_budget: int,
) -> Dict[str, Any]:
    """Advance one sliceable job by one slice; see the module docstring.

    Every payload carries ``attempts`` (cumulative schedule attempts
    including cache hits and sleep-set prunes — the allocator's spend
    unit) and ``distinct_outcomes`` (cumulative — the allocator's payout
    base); the scheduler charges/pays deltas against the previous slice.
    """
    from repro.kernels import get_kernel

    kind = JobKind.parse(kind_value)
    options = JobOptions.from_dict(options_dict)
    if not job_sliceable(kind, options):
        raise ValueError(
            f"job kind {kind.value!r} with options {options_dict!r} "
            "is not sliceable; dispatch it through run_job instead"
        )
    kernel = get_kernel(kernel_name)
    program, explorer, predicate, stop_on_first = exploration_setup(
        kind, kernel, options
    )
    frontier: Optional[ExplorationFrontier] = (
        ExplorationFrontier.from_bytes(bytes.fromhex(frontier_hex))
        if frontier_hex
        else None
    )
    start = perf_counter()
    result = explorer.explore(
        predicate=predicate,
        stop_on_first=stop_on_first,
        slice_budget=slice_budget,
        frontier=frontier,
    )
    attempts = (
        result.schedules_run
        + result.cache_hits
        + getattr(explorer, "pruned_runs", 0)
    )
    payload: Dict[str, Any] = {
        "attempts": attempts,
        "distinct_outcomes": len(result.outcomes),
        "engine_runs": result.schedules_run,
        "worker_wall_seconds": perf_counter() - start,
    }
    if result.frontier is not None:
        payload["frontier"] = result.frontier.to_bytes().hex()
        return payload
    payload["verdict"] = VERDICT_BUILDERS[kind](program, result)
    # Terminal: the cumulative result is the one-shot result, so its
    # wall clock (accumulated across slices by the frontier) replaces
    # this slice's.
    payload["worker_wall_seconds"] = result.wall_seconds
    return payload
