"""The studied bug records, one module per application."""

from repro.bugdb.records.apache import RECORDS as APACHE_RECORDS
from repro.bugdb.records.mozilla import RECORDS as MOZILLA_RECORDS
from repro.bugdb.records.mysql import RECORDS as MYSQL_RECORDS
from repro.bugdb.records.openoffice import RECORDS as OPENOFFICE_RECORDS

__all__ = [
    "APACHE_RECORDS",
    "MOZILLA_RECORDS",
    "MYSQL_RECORDS",
    "OPENOFFICE_RECORDS",
    "all_records",
]


def all_records():
    """Every studied record, grouped by application, stable order."""
    return (
        MYSQL_RECORDS + APACHE_RECORDS + MOZILLA_RECORDS + OPENOFFICE_RECORDS
    )
