"""The bug database: loading, filtering, and aggregating the 105 records.

:class:`BugDatabase` is an immutable collection with the query surface the
study layer needs: filter by application/category/pattern, count along any
dimension, and compute the headline fractions.  ``BugDatabase.load()``
assembles the full studied set from :mod:`repro.bugdb.records`.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import BugDatabaseError
from repro.bugdb.schema import (
    Application,
    BugCategory,
    BugPattern,
    BugRecord,
    FixStrategy,
    Impact,
)

__all__ = ["BugDatabase"]


class BugDatabase:
    """An immutable, queryable set of bug records."""

    def __init__(self, records: Iterable[BugRecord]):
        self._records: Tuple[BugRecord, ...] = tuple(records)
        self._by_id: Dict[str, BugRecord] = {}
        for record in self._records:
            if record.bug_id in self._by_id:
                raise BugDatabaseError(f"duplicate bug id {record.bug_id!r}")
            self._by_id[record.bug_id] = record

    @classmethod
    def load(cls) -> "BugDatabase":
        """The full studied set (all four applications, 105 records)."""
        from repro.bugdb import records

        return cls(records.all_records())

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[BugRecord]:
        return iter(self._records)

    def get(self, bug_id: str) -> BugRecord:
        """Record by id; raises ``KeyError`` for unknown ids."""
        return self._by_id[bug_id]

    def __contains__(self, bug_id: str) -> bool:
        return bug_id in self._by_id

    # -- filtering ------------------------------------------------------------

    def filter(self, predicate: Callable[[BugRecord], bool]) -> "BugDatabase":
        """A new database holding the records satisfying ``predicate``."""
        return BugDatabase(r for r in self._records if predicate(r))

    def by_application(self, application: Application) -> "BugDatabase":
        """Records from one application."""
        return self.filter(lambda r: r.application is application)

    def non_deadlock(self) -> "BugDatabase":
        """The non-deadlock subset."""
        return self.filter(lambda r: not r.is_deadlock)

    def deadlock(self) -> "BugDatabase":
        """The deadlock subset."""
        return self.filter(lambda r: r.is_deadlock)

    def with_pattern(self, pattern: BugPattern) -> "BugDatabase":
        """Non-deadlock records carrying ``pattern``."""
        return self.filter(lambda r: r.has_pattern(pattern))

    def with_kernel(self) -> "BugDatabase":
        """Records linked to an executable kernel."""
        return self.filter(lambda r: r.kernel is not None)

    # -- counting --------------------------------------------------------------

    def count(self, predicate: Optional[Callable[[BugRecord], bool]] = None) -> int:
        """Records satisfying ``predicate`` (all records when omitted)."""
        if predicate is None:
            return len(self._records)
        return sum(1 for r in self._records if predicate(r))

    def count_by_application(self) -> Dict[Application, int]:
        """Record count per application (zero-filled)."""
        counts = Counter(r.application for r in self._records)
        return {app: counts.get(app, 0) for app in Application}

    def count_by_category(self) -> Dict[BugCategory, int]:
        """Record count per category (zero-filled)."""
        counts = Counter(r.category for r in self._records)
        return {cat: counts.get(cat, 0) for cat in BugCategory}

    def count_by_fix_strategy(self) -> Dict[FixStrategy, int]:
        """Record count per fix strategy (only strategies present)."""
        return dict(Counter(r.fix_strategy for r in self._records))

    def count_by_impact(self) -> Dict[Impact, int]:
        """Record count per impact (only impacts present)."""
        return dict(Counter(r.impact for r in self._records))

    def thread_histogram(self) -> Dict[int, int]:
        """Distribution of minimum threads to manifest."""
        return dict(Counter(r.threads_involved for r in self._records))

    def variable_histogram(self) -> Dict[int, int]:
        """Distribution of variables involved (non-deadlock records only)."""
        return dict(
            Counter(
                r.variables_involved
                for r in self._records
                if r.variables_involved is not None
            )
        )

    def resource_histogram(self) -> Dict[int, int]:
        """Distribution of resources involved (deadlock records only)."""
        return dict(
            Counter(
                r.resources_involved
                for r in self._records
                if r.resources_involved is not None
            )
        )

    def access_histogram(self) -> Dict[int, int]:
        """Distribution of the minimal ordering-relevant access-set size."""
        return dict(Counter(r.accesses_to_manifest for r in self._records))

    # -- headline fractions -------------------------------------------------------

    def fraction(self, predicate: Callable[[BugRecord], bool]) -> float:
        """Fraction of records satisfying ``predicate`` (0.0 on empty)."""
        if not self._records:
            return 0.0
        return self.count(predicate) / len(self._records)

    def pattern_counts(self) -> Dict[BugPattern, int]:
        """Non-deadlock pattern counts (records with both count in both)."""
        counts: Dict[BugPattern, int] = {p: 0 for p in BugPattern}
        for record in self.non_deadlock():
            for pattern in record.patterns:
                counts[pattern] += 1
        return counts

    def ids(self) -> List[str]:
        """All bug ids in load order."""
        return [r.bug_id for r in self._records]
