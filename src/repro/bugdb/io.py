"""JSON import/export for the bug database.

The records ship as Python (reviewable, validated at import time), but
downstream consumers — spreadsheets, R/pandas analyses, other studies'
tooling — want plain data.  ``database_to_json`` emits a versioned,
self-describing document; ``database_from_json`` loads one back through
the full :class:`~repro.bugdb.schema.BugRecord` validation, so a hand
edited file cannot smuggle in an inconsistent record.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.errors import BugDatabaseError
from repro.bugdb.database import BugDatabase
from repro.bugdb.schema import (
    Application,
    BugCategory,
    BugPattern,
    BugRecord,
    FixStrategy,
    Impact,
)

__all__ = ["database_to_json", "database_from_json", "record_to_dict", "record_from_dict"]

_FORMAT_VERSION = 1


def record_to_dict(record: BugRecord) -> Dict[str, Any]:
    """One record as a plain JSON-ready dict (enums become their values)."""
    return {
        "bug_id": record.bug_id,
        "report_ref": record.report_ref,
        "application": record.application.value,
        "component": record.component,
        "description": record.description,
        "category": record.category.value,
        "patterns": [p.value for p in record.patterns],
        "impact": record.impact.value,
        "threads_involved": record.threads_involved,
        "variables_involved": record.variables_involved,
        "resources_involved": record.resources_involved,
        "accesses_to_manifest": record.accesses_to_manifest,
        "fix_strategy": record.fix_strategy.value,
        "first_fix_buggy": record.first_fix_buggy,
        "kernel": record.kernel,
    }


def record_from_dict(payload: Dict[str, Any]) -> BugRecord:
    """Inverse of :func:`record_to_dict`; validates through the schema."""
    try:
        return BugRecord(
            bug_id=payload["bug_id"],
            report_ref=payload["report_ref"],
            application=Application(payload["application"]),
            component=payload["component"],
            description=payload["description"],
            category=BugCategory(payload["category"]),
            patterns=tuple(BugPattern(p) for p in payload["patterns"]),
            impact=Impact(payload["impact"]),
            threads_involved=payload["threads_involved"],
            variables_involved=payload.get("variables_involved"),
            resources_involved=payload.get("resources_involved"),
            accesses_to_manifest=payload["accesses_to_manifest"],
            fix_strategy=FixStrategy(payload["fix_strategy"]),
            first_fix_buggy=payload.get("first_fix_buggy", False),
            kernel=payload.get("kernel"),
        )
    except (KeyError, ValueError) as exc:
        raise BugDatabaseError(
            f"malformed record payload "
            f"({payload.get('bug_id', '<no id>')!r}): {exc}"
        ) from exc


def database_to_json(db: BugDatabase, indent: int = 2) -> str:
    """The whole database as a versioned JSON document."""
    document = {
        "format": "repro-bugdb",
        "version": _FORMAT_VERSION,
        "records": [record_to_dict(record) for record in db],
    }
    return json.dumps(document, indent=indent)


def database_from_json(text: str) -> BugDatabase:
    """Load a database from :func:`database_to_json` output.

    Every record passes schema validation; duplicate ids are rejected by
    the :class:`BugDatabase` constructor.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise BugDatabaseError(f"not valid JSON: {exc}") from exc
    if not isinstance(document, dict) or document.get("format") != "repro-bugdb":
        raise BugDatabaseError("not a repro-bugdb document")
    if document.get("version") != _FORMAT_VERSION:
        raise BugDatabaseError(
            f"unsupported format version {document.get('version')!r}"
        )
    return BugDatabase(
        record_from_dict(payload) for payload in document.get("records", [])
    )
