"""Structural invariants of the bug database.

``validate_database`` checks everything that must hold for the study's
analysis to be meaningful — well-formed records (already enforced by the
schema), unique ids, per-application presence, category/fix consistency,
and the coupling rules between dimensions (deadlock records carry
resources not variables, single-resource deadlocks are the self-acquire
shape, kernel links point at registered kernel classes).  It returns the
list of problems so tooling can show them all at once; ``assert_valid``
raises on the first call with a non-empty result.
"""

from __future__ import annotations

from typing import List

from repro.errors import BugDatabaseError
from repro.bugdb.database import BugDatabase
from repro.bugdb.schema import (
    Application,
    BugCategory,
    BugPattern,
    DEADLOCK_FIXES,
    NON_DEADLOCK_FIXES,
)

__all__ = ["validate_database", "assert_valid"]


def validate_database(db: BugDatabase) -> List[str]:
    """All invariant violations in ``db`` (empty list means valid)."""
    problems: List[str] = []

    per_app = db.count_by_application()
    for app in Application:
        if per_app[app] == 0:
            problems.append(f"no records for application {app.value}")

    for record in db:
        rid = record.bug_id
        if record.category is BugCategory.DEADLOCK:
            if record.fix_strategy not in DEADLOCK_FIXES:
                problems.append(f"{rid}: deadlock record with non-deadlock fix")
            if record.resources_involved == 1 and record.threads_involved > 2:
                problems.append(
                    f"{rid}: single-resource deadlock cannot need "
                    f"{record.threads_involved} threads"
                )
            if (
                record.resources_involved is not None
                and record.threads_involved > record.resources_involved
                and record.resources_involved > 1
            ):
                problems.append(
                    f"{rid}: a circular wait over "
                    f"{record.resources_involved} resources involves at "
                    f"most that many threads"
                )
        else:
            if record.fix_strategy not in NON_DEADLOCK_FIXES:
                problems.append(f"{rid}: non-deadlock record with deadlock fix")
            if record.threads_involved < 2:
                problems.append(
                    f"{rid}: a non-deadlock concurrency bug needs >= 2 threads"
                )
            if (
                record.has_pattern(BugPattern.ORDER)
                and not record.has_pattern(BugPattern.ATOMICITY)
                and record.variables_involved == 1
                and record.accesses_to_manifest > 4
            ):
                problems.append(
                    f"{rid}: single-variable pure order violation should "
                    f"manifest within 4 ordered accesses"
                )
        if record.accesses_to_manifest < record.threads_involved - 1:
            problems.append(
                f"{rid}: {record.threads_involved} threads cannot all "
                f"matter with only {record.accesses_to_manifest} "
                f"ordering-relevant accesses"
            )

    kernel_links = [r.kernel for r in db if r.kernel is not None]
    if kernel_links:
        try:
            from repro.kernels import registry
        except ImportError:  # kernels package optional during bring-up
            registry = None
        if registry is not None:
            known = set(registry.kernel_names())
            for record in db:
                if record.kernel is not None and record.kernel not in known:
                    problems.append(
                        f"{record.bug_id}: unknown kernel {record.kernel!r}"
                    )
    return problems


def assert_valid(db: BugDatabase) -> None:
    """Raise :class:`BugDatabaseError` listing every violation, if any."""
    problems = validate_database(db)
    if problems:
        raise BugDatabaseError(
            f"{len(problems)} database invariant violation(s):\n  "
            + "\n  ".join(problems)
        )
