"""The studied bug database: 105 real-world concurrency bug records.

``BugDatabase.load()`` returns the full studied set — 74 non-deadlock and
31 deadlock bugs across MySQL, Apache, Mozilla, and OpenOffice — encoded
with the characteristic dimensions the ASPLOS'08 study coded from the
applications' bug trackers.  See DESIGN.md for how this machine-readable
encoding substitutes for the (unreleased) original coding sheet.
"""

from repro.bugdb.database import BugDatabase
from repro.bugdb.io import (
    database_from_json,
    database_to_json,
    record_from_dict,
    record_to_dict,
)
from repro.bugdb.schema import (
    APPLICATION_INFO,
    Application,
    ApplicationInfo,
    BugCategory,
    BugPattern,
    BugRecord,
    DEADLOCK_FIXES,
    FixStrategy,
    Impact,
    NON_DEADLOCK_FIXES,
)
from repro.bugdb.validate import assert_valid, validate_database

__all__ = [
    "BugDatabase",
    "BugRecord",
    "Application",
    "ApplicationInfo",
    "APPLICATION_INFO",
    "BugCategory",
    "BugPattern",
    "Impact",
    "FixStrategy",
    "NON_DEADLOCK_FIXES",
    "DEADLOCK_FIXES",
    "validate_database",
    "assert_valid",
    "database_to_json",
    "database_from_json",
    "record_to_dict",
    "record_from_dict",
]
