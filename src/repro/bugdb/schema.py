"""Schema for the concurrency-bug characteristics database.

Each of the study's 105 bugs is one :class:`BugRecord` carrying exactly
the dimensions the authors coded from the four applications' bug
databases: pattern, manifestation conditions (threads / variables or
resources / ordering-relevant accesses), impact, and fix strategy.  The
study's tables are pure aggregations over these records
(:mod:`repro.study.tables`), and its findings are predicates over the
aggregates (:mod:`repro.study.findings`).

Field semantics follow the paper's definitions:

* ``threads_involved`` — the *minimum* number of threads whose
  interleaving can manifest the bug, not how many the application runs.
* ``variables_involved`` — for non-deadlock bugs, how many shared
  variables' accesses participate in the buggy interleaving.
* ``resources_involved`` — for deadlock bugs, how many distinct resources
  (almost always locks) form the circular wait; one means re-acquiring a
  held non-recursive resource.
* ``accesses_to_manifest`` — the size of the smallest access/acquisition
  set such that enforcing a partial order among them *guarantees*
  manifestation (Finding 8's "no more than four memory accesses" metric).
* ``fix_strategy`` — what the released patch actually did, using the
  paper's taxonomy (condition check / code switch / design change /
  lock for non-deadlock; give-up / acquisition order / split / other for
  deadlock).
* ``first_fix_buggy`` — whether the first released patch was itself
  incorrect (the "mistakes during fixing" statistic).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import BugDatabaseError

__all__ = [
    "Application",
    "APPLICATION_INFO",
    "ApplicationInfo",
    "BugCategory",
    "BugPattern",
    "Impact",
    "FixStrategy",
    "NON_DEADLOCK_FIXES",
    "DEADLOCK_FIXES",
    "BugRecord",
]


class Application(enum.Enum):
    """The four applications whose bug databases the study examined."""

    MYSQL = "MySQL"
    APACHE = "Apache"
    MOZILLA = "Mozilla"
    OPENOFFICE = "OpenOffice"


@dataclass(frozen=True)
class ApplicationInfo:
    """Table-1 style metadata about one studied application."""

    application: Application
    software_type: str
    approx_loc: str
    languages: str


#: Application metadata for Table 1.  Sizes are the era-appropriate
#: magnitudes (approximate; see EXPERIMENTS.md).
APPLICATION_INFO = {
    Application.MYSQL: ApplicationInfo(
        Application.MYSQL, "Database server", "~1.9M", "C/C++"
    ),
    Application.APACHE: ApplicationInfo(
        Application.APACHE, "Web server (HTTPD)", "~0.35M", "C"
    ),
    Application.MOZILLA: ApplicationInfo(
        Application.MOZILLA, "Browser suite", "~3.4M", "C/C++"
    ),
    Application.OPENOFFICE: ApplicationInfo(
        Application.OPENOFFICE, "Office suite", "~6.1M", "C/C++"
    ),
}


class BugCategory(enum.Enum):
    """The study's top-level split."""

    NON_DEADLOCK = "non-deadlock"
    DEADLOCK = "deadlock"


class BugPattern(enum.Enum):
    """Non-deadlock bug patterns (a record may carry several)."""

    ATOMICITY = "atomicity-violation"
    ORDER = "order-violation"
    OTHER = "other"


class Impact(enum.Enum):
    """Observable consequence of the bug manifesting."""

    CRASH = "crash"
    HANG = "hang"
    WRONG_OUTPUT = "wrong-output"
    CORRUPTION = "data-corruption"


class FixStrategy(enum.Enum):
    """The paper's fix-strategy taxonomy."""

    # Non-deadlock strategies.
    COND_CHECK = "condition-check"        # add/repair a condition check (COND)
    CODE_SWITCH = "code-switch"           # reorder/move code (Switch)
    DESIGN_CHANGE = "design-change"       # algorithm/data-structure change (Design)
    ADD_LOCK = "add-lock"                 # add or change locks (Lock)
    OTHER_NON_DEADLOCK = "other-nd"
    # Deadlock strategies.
    GIVE_UP_RESOURCE = "give-up-resource"  # back off / try-lock / release & retry
    ACQUIRE_ORDER = "acquire-order"        # enforce a global acquisition order
    SPLIT_RESOURCE = "split-resource"      # split/merge the contended resource
    OTHER_DEADLOCK = "other-dl"


#: Strategies legal for each category.
NON_DEADLOCK_FIXES = frozenset(
    {
        FixStrategy.COND_CHECK,
        FixStrategy.CODE_SWITCH,
        FixStrategy.DESIGN_CHANGE,
        FixStrategy.ADD_LOCK,
        FixStrategy.OTHER_NON_DEADLOCK,
    }
)
DEADLOCK_FIXES = frozenset(
    {
        FixStrategy.GIVE_UP_RESOURCE,
        FixStrategy.ACQUIRE_ORDER,
        FixStrategy.SPLIT_RESOURCE,
        FixStrategy.OTHER_DEADLOCK,
    }
)


@dataclass(frozen=True)
class BugRecord:
    """One studied concurrency bug and its coded characteristics."""

    bug_id: str
    report_ref: str
    application: Application
    component: str
    description: str
    category: BugCategory
    patterns: Tuple[BugPattern, ...]
    impact: Impact
    threads_involved: int
    accesses_to_manifest: int
    fix_strategy: FixStrategy
    variables_involved: Optional[int] = None
    resources_involved: Optional[int] = None
    first_fix_buggy: bool = False
    kernel: Optional[str] = None

    def __post_init__(self) -> None:
        problems = []
        if self.category is BugCategory.NON_DEADLOCK:
            if not self.patterns:
                problems.append("non-deadlock record needs at least one pattern")
            if self.variables_involved is None or self.variables_involved < 1:
                problems.append("non-deadlock record needs variables_involved >= 1")
            if self.resources_involved is not None:
                problems.append("non-deadlock record must not set resources_involved")
            if self.fix_strategy not in NON_DEADLOCK_FIXES:
                problems.append(
                    f"fix {self.fix_strategy.value} is not a non-deadlock strategy"
                )
            if (
                BugPattern.OTHER in self.patterns
                and len(self.patterns) > 1
            ):
                problems.append("'other' pattern cannot combine with others")
        else:
            if self.patterns:
                problems.append("deadlock records carry no non-deadlock patterns")
            if self.resources_involved is None or self.resources_involved < 1:
                problems.append("deadlock record needs resources_involved >= 1")
            if self.variables_involved is not None:
                problems.append("deadlock record must not set variables_involved")
            if self.fix_strategy not in DEADLOCK_FIXES:
                problems.append(
                    f"fix {self.fix_strategy.value} is not a deadlock strategy"
                )
        if self.threads_involved < 1:
            problems.append("threads_involved must be >= 1")
        if self.accesses_to_manifest < 1:
            problems.append("accesses_to_manifest must be >= 1")
        if len(set(self.patterns)) != len(self.patterns):
            problems.append("duplicate patterns")
        if problems:
            raise BugDatabaseError(
                f"invalid bug record {self.bug_id!r}: " + "; ".join(problems)
            )

    # -- convenience predicates used by the aggregation layer ------------

    @property
    def is_deadlock(self) -> bool:
        """Whether this is a deadlock bug."""
        return self.category is BugCategory.DEADLOCK

    def has_pattern(self, pattern: BugPattern) -> bool:
        """Whether ``pattern`` is among this record's patterns."""
        return pattern in self.patterns

    @property
    def involves_single_variable(self) -> bool:
        """Non-deadlock: exactly one variable participates."""
        return self.variables_involved == 1

    @property
    def small_access_set(self) -> bool:
        """Manifestation guaranteed by ordering at most four accesses."""
        return self.accesses_to_manifest <= 4

    @property
    def few_threads(self) -> bool:
        """Manifestation needs at most two threads."""
        return self.threads_involved <= 2
