"""Generators for every table of the study.

Each function aggregates the bug database into one of the paper's tables
(T1-T8 in DESIGN.md's experiment index).  The benchmarks in
``benchmarks/`` call these and print the result; the tests in
``tests/study`` pin every headline cell to the published value.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.bugdb import (
    APPLICATION_INFO,
    Application,
    BugDatabase,
    BugPattern,
    FixStrategy,
)
from repro.study.render import Table

__all__ = [
    "table1_applications",
    "table2_bug_sources",
    "table3_patterns",
    "table3b_patterns_by_application",
    "table4_threads",
    "table4b_impacts",
    "table5_variables",
    "table6_accesses",
    "table7_fixes",
    "table8_patch_quality",
    "all_tables",
]


def _pct(part: int, whole: int) -> str:
    return f"{100.0 * part / whole:.0f}%" if whole else "-"


def table1_applications(db: BugDatabase) -> Table:
    """T1: the studied application suite."""
    table = Table(
        "T1",
        "Applications and bug sets examined",
        ["Application", "Type", "Approx. size", "Languages", "Bugs examined"],
        notes=["sizes are era-approximate magnitudes; see EXPERIMENTS.md"],
    )
    for app in Application:
        info = APPLICATION_INFO[app]
        table.add_row(
            app.value,
            info.software_type,
            info.approx_loc,
            info.languages,
            len(db.by_application(app)),
        )
    table.add_row("Total", "", "", "", len(db))
    return table


def table2_bug_sources(db: BugDatabase) -> Table:
    """T2: non-deadlock / deadlock split per application."""
    table = Table(
        "T2",
        "Examined concurrency bugs by application and category",
        ["Application", "Non-deadlock", "Deadlock", "Total"],
    )
    for app in Application:
        sub = db.by_application(app)
        table.add_row(
            app.value,
            len(sub.non_deadlock()),
            len(sub.deadlock()),
            len(sub),
        )
    table.add_row(
        "Total", len(db.non_deadlock()), len(db.deadlock()), len(db)
    )
    return table


def table3_patterns(db: BugDatabase) -> Table:
    """T3: non-deadlock bug pattern distribution (Findings 1-3)."""
    nd = db.non_deadlock()
    total = len(nd)
    atomicity = len(nd.with_pattern(BugPattern.ATOMICITY))
    order = len(nd.with_pattern(BugPattern.ORDER))
    both = nd.count(
        lambda r: r.has_pattern(BugPattern.ATOMICITY)
        and r.has_pattern(BugPattern.ORDER)
    )
    union = atomicity + order - both
    other = nd.count(lambda r: r.has_pattern(BugPattern.OTHER))
    table = Table(
        "T3",
        "Bug patterns among the 74 non-deadlock bugs",
        ["Pattern", "Bugs", "% of non-deadlock"],
        notes=[
            f"{both} bugs exhibit both patterns; union = {union} "
            f"({_pct(union, total)}) of non-deadlock bugs"
        ],
    )
    table.add_row("Atomicity violation", atomicity, _pct(atomicity, total))
    table.add_row("Order violation", order, _pct(order, total))
    table.add_row("Atomicity or order", union, _pct(union, total))
    table.add_row("Other", other, _pct(other, total))
    return table


def table3b_patterns_by_application(db: BugDatabase) -> Table:
    """T3b (supplementary): non-deadlock pattern split per application."""
    table = Table(
        "T3b",
        "Non-deadlock bug patterns per application",
        ["Application", "Atomicity", "Order", "Both", "Other", "Non-deadlock"],
        notes=["'Atomicity'/'Order' columns count records carrying the "
               "pattern, so a 'Both' record appears in each"],
    )
    for app in Application:
        nd = db.by_application(app).non_deadlock()
        atomicity = len(nd.with_pattern(BugPattern.ATOMICITY))
        order = len(nd.with_pattern(BugPattern.ORDER))
        both = nd.count(
            lambda r: r.has_pattern(BugPattern.ATOMICITY)
            and r.has_pattern(BugPattern.ORDER)
        )
        other = len(nd.with_pattern(BugPattern.OTHER))
        table.add_row(app.value, atomicity, order, both, other, len(nd))
    nd = db.non_deadlock()
    table.add_row(
        "Total",
        len(nd.with_pattern(BugPattern.ATOMICITY)),
        len(nd.with_pattern(BugPattern.ORDER)),
        nd.count(
            lambda r: r.has_pattern(BugPattern.ATOMICITY)
            and r.has_pattern(BugPattern.ORDER)
        ),
        len(nd.with_pattern(BugPattern.OTHER)),
        len(nd),
    )
    return table


def table4b_impacts(db: BugDatabase) -> Table:
    """T4b (supplementary): observable impact of the studied bugs."""
    from repro.bugdb import Impact

    table = Table(
        "T4b",
        "Failure impact of the studied bugs",
        ["Impact", "Non-deadlock", "Deadlock", "Total"],
        notes=["every deadlock manifests as a hang by definition"],
    )
    nd_impacts = db.non_deadlock().count_by_impact()
    dl_impacts = db.deadlock().count_by_impact()
    for impact in Impact:
        nd_count = nd_impacts.get(impact, 0)
        dl_count = dl_impacts.get(impact, 0)
        if nd_count or dl_count:
            table.add_row(impact.value, nd_count, dl_count, nd_count + dl_count)
    table.add_row("Total", len(db.non_deadlock()), len(db.deadlock()), len(db))
    return table


def table4_threads(db: BugDatabase) -> Table:
    """T4: minimum threads required to manifest (Finding 4)."""
    histogram = db.thread_histogram()
    total = len(db)
    table = Table(
        "T4",
        "Number of threads whose interleaving manifests the bug",
        ["Threads", "Bugs", "% of all"],
        notes=[
            f"{db.count(lambda r: r.few_threads)} of {total} "
            f"({_pct(db.count(lambda r: r.few_threads), total)}) need "
            f"no more than two threads"
        ],
    )
    for threads in sorted(histogram):
        table.add_row(threads, histogram[threads], _pct(histogram[threads], total))
    return table


def table5_variables(db: BugDatabase) -> Table:
    """T5: variables (non-deadlock) / resources (deadlock) involved."""
    nd = db.non_deadlock()
    dl = db.deadlock()
    table = Table(
        "T5",
        "Shared variables / resources involved in manifestation",
        ["Category", "Involved", "Bugs", "% of category"],
        notes=[
            f"single-variable: {nd.count(lambda r: r.involves_single_variable)}"
            f"/{len(nd)} of non-deadlock; <=2 resources: "
            f"{dl.count(lambda r: r.resources_involved <= 2)}/{len(dl)} of deadlock"
        ],
    )
    var_hist = nd.variable_histogram()
    for count in sorted(var_hist):
        label = "1 variable" if count == 1 else f"{count} variables"
        table.add_row(
            "non-deadlock", label, var_hist[count], _pct(var_hist[count], len(nd))
        )
    res_hist = dl.resource_histogram()
    for count in sorted(res_hist):
        label = "1 resource" if count == 1 else f"{count} resources"
        table.add_row(
            "deadlock", label, res_hist[count], _pct(res_hist[count], len(dl))
        )
    return table


def table6_accesses(db: BugDatabase) -> Table:
    """T6: size of the order-enforcement access set (Finding 8)."""
    histogram = db.access_histogram()
    total = len(db)
    small = db.count(lambda r: r.small_access_set)
    table = Table(
        "T6",
        "Accesses/acquisitions whose enforced order guarantees manifestation",
        ["Accesses", "Bugs", "% of all"],
        notes=[
            f"{small}/{total} ({_pct(small, total)}) manifest deterministically "
            f"by ordering no more than 4 accesses — validated executably on "
            f"the bug kernels (bench_figures)"
        ],
    )
    for accesses in sorted(histogram):
        table.add_row(
            accesses, histogram[accesses], _pct(histogram[accesses], total)
        )
    return table


_ND_FIX_LABELS = {
    FixStrategy.COND_CHECK: "Condition check (COND)",
    FixStrategy.CODE_SWITCH: "Code switch (Switch)",
    FixStrategy.DESIGN_CHANGE: "Design change (Design)",
    FixStrategy.ADD_LOCK: "Add/change lock (Lock)",
    FixStrategy.OTHER_NON_DEADLOCK: "Other",
}
_DL_FIX_LABELS = {
    FixStrategy.GIVE_UP_RESOURCE: "Give up resource",
    FixStrategy.ACQUIRE_ORDER: "Change acquisition order",
    FixStrategy.SPLIT_RESOURCE: "Split resource",
    FixStrategy.OTHER_DEADLOCK: "Other",
}


def table7_fixes(db: BugDatabase) -> Table:
    """T7: fix strategies actually used (Findings 9-10)."""
    nd = db.non_deadlock()
    dl = db.deadlock()
    nd_fixes = nd.count_by_fix_strategy()
    dl_fixes = dl.count_by_fix_strategy()
    lockless = len(nd) - nd_fixes.get(FixStrategy.ADD_LOCK, 0)
    table = Table(
        "T7",
        "Fix strategies of the released patches",
        ["Category", "Strategy", "Bugs", "% of category"],
        notes=[
            f"{lockless}/{len(nd)} ({_pct(lockless, len(nd))}) non-deadlock "
            f"fixes add or change no lock",
            f"giving up the resource fixes "
            f"{dl_fixes.get(FixStrategy.GIVE_UP_RESOURCE, 0)}/{len(dl)} "
            f"deadlocks",
        ],
    )
    for strategy, label in _ND_FIX_LABELS.items():
        count = nd_fixes.get(strategy, 0)
        table.add_row("non-deadlock", label, count, _pct(count, len(nd)))
    for strategy, label in _DL_FIX_LABELS.items():
        count = dl_fixes.get(strategy, 0)
        table.add_row("deadlock", label, count, _pct(count, len(dl)))
    return table


def table8_patch_quality(db: BugDatabase) -> Table:
    """T8: mistakes during fixing (buggy first patches)."""
    total = len(db)
    buggy = db.count(lambda r: r.first_fix_buggy)
    table = Table(
        "T8",
        "First-patch quality",
        ["Application", "Buggy first patches", "Bugs examined", "%"],
        notes=[
            f"{buggy}/{total} ({_pct(buggy, total)}) of first patches were "
            f"themselves incorrect; bench_table8 also audits two modelled "
            f"bad patches with the exhaustive verifier"
        ],
    )
    for app in Application:
        sub = db.by_application(app)
        app_buggy = sub.count(lambda r: r.first_fix_buggy)
        table.add_row(app.value, app_buggy, len(sub), _pct(app_buggy, len(sub)))
    table.add_row("Total", buggy, total, _pct(buggy, total))
    return table


def all_tables(db: Optional[BugDatabase] = None) -> Dict[str, Table]:
    """Every table keyed by its id."""
    database = db if db is not None else BugDatabase.load()
    generators = [
        table1_applications,
        table2_bug_sources,
        table3_patterns,
        table3b_patterns_by_application,
        table4_threads,
        table4b_impacts,
        table5_variables,
        table6_accesses,
        table7_fixes,
        table8_patch_quality,
    ]
    tables = [generator(database) for generator in generators]
    return {table.table_id: table for table in tables}
