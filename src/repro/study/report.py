"""The full study report: tables, findings, and executable evidence.

``generate_report`` is the one-call reproduction of the study: it renders
every table from the database, re-derives every numbered finding, and —
unless ``quick`` — runs the kernel evidence (each figure example
manifests, its fix verifies clean, and its ≤4-access order guarantees
manifestation).  ``examples/reproduce_study.py`` prints it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bugdb import BugDatabase
from repro.study.findings import FindingResult, FINDINGS, check_all
from repro.study.render import Table
from repro.study.tables import all_tables

__all__ = ["StudyReport", "generate_report"]


@dataclass
class StudyReport:
    """Everything the reproduction derives, ready to render."""

    tables: Dict[str, Table]
    findings: List[FindingResult]
    kernel_evidence: List[str] = field(default_factory=list)

    @property
    def all_findings_pass(self) -> bool:
        """Whether every re-derived finding matches the published value."""
        return all(result.passed for result in self.findings)

    def format(self) -> str:
        """Full console rendering."""
        parts: List[str] = []
        parts.append("=" * 72)
        parts.append(
            "Learning from Mistakes — concurrency bug characteristics study"
        )
        parts.append("=" * 72)
        for table_id in sorted(self.tables):
            parts.append("")
            parts.append(self.tables[table_id].format())
        parts.append("")
        parts.append("Findings")
        parts.append("-" * 72)
        for finding, result in zip(FINDINGS, self.findings):
            parts.append(result.summary())
            parts.append(f"    {finding.statement}")
            parts.append(f"    implication: {finding.implication}")
        if self.kernel_evidence:
            parts.append("")
            parts.append("Executable kernel evidence")
            parts.append("-" * 72)
            parts.extend(self.kernel_evidence)
        parts.append("")
        verdict = "ALL FINDINGS REPRODUCED" if self.all_findings_pass else "MISMATCH"
        parts.append(f"Verdict: {verdict}")
        return "\n".join(parts)


def _kernel_evidence() -> List[str]:
    from repro.kernels import all_kernels
    from repro.manifest import order_guarantees

    lines: List[str] = []
    for kernel in all_kernels():
        manifested = kernel.find_manifestation() is not None
        fixed_clean = kernel.verify_fixed()
        guaranteed = order_guarantees(
            kernel.buggy, kernel.manifest_order, kernel.failure, attempts=10
        )
        lines.append(
            f"{kernel.name:25s} manifests={'yes' if manifested else 'NO'} "
            f"fix-verified={'yes' if fixed_clean else 'NO'} "
            f"order-guarantees={'yes' if guaranteed else 'NO'}"
        )
    return lines


def generate_report(
    db: Optional[BugDatabase] = None, quick: bool = False
) -> StudyReport:
    """Build the full report.

    :param quick: skip the kernel evidence (exploration-heavy) section.
    """
    database = db if db is not None else BugDatabase.load()
    return StudyReport(
        tables=all_tables(database),
        findings=check_all(database),
        kernel_evidence=[] if quick else _kernel_evidence(),
    )
