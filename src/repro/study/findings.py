"""The study's numbered findings as executable checks.

Each :class:`Finding` carries the published claim and a ``check`` that
recomputes it from the bug database (and, where marked, cross-validates it
on the executable kernels).  ``check_all`` is what the report and the
study tests run; every finding must PASS against the shipped database.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.bugdb import BugDatabase, BugPattern, FixStrategy

__all__ = ["Finding", "FindingResult", "FINDINGS", "check_all"]


@dataclass(frozen=True)
class FindingResult:
    """Outcome of re-deriving one finding from the data."""

    finding_id: str
    passed: bool
    observed: str
    expected: str

    def summary(self) -> str:
        """One-line PASS/FAIL rendering."""
        verdict = "PASS" if self.passed else "FAIL"
        return f"[{verdict}] {self.finding_id}: observed {self.observed} (expected {self.expected})"


@dataclass(frozen=True)
class Finding:
    """One published finding with its re-derivation."""

    finding_id: str
    statement: str
    implication: str
    check: Callable[[BugDatabase], FindingResult]


def _ratio_result(fid: str, part: int, whole: int, expected: Tuple[int, int]) -> FindingResult:
    return FindingResult(
        finding_id=fid,
        passed=(part, whole) == expected,
        observed=f"{part}/{whole}",
        expected=f"{expected[0]}/{expected[1]}",
    )


def _f1(db: BugDatabase) -> FindingResult:
    nd = db.non_deadlock()
    union = nd.count(
        lambda r: r.has_pattern(BugPattern.ATOMICITY) or r.has_pattern(BugPattern.ORDER)
    )
    return _ratio_result("F1", union, len(nd), (72, 74))


def _f2(db: BugDatabase) -> FindingResult:
    nd = db.non_deadlock()
    atomicity = len(nd.with_pattern(BugPattern.ATOMICITY))
    return _ratio_result("F2", atomicity, len(nd), (51, 74))


def _f3(db: BugDatabase) -> FindingResult:
    nd = db.non_deadlock()
    order = len(nd.with_pattern(BugPattern.ORDER))
    return _ratio_result("F3", order, len(nd), (24, 74))


def _f4(db: BugDatabase) -> FindingResult:
    few = db.count(lambda r: r.few_threads)
    return _ratio_result("F4", few, len(db), (101, 105))


def _f5(db: BugDatabase) -> FindingResult:
    nd = db.non_deadlock()
    single = nd.count(lambda r: r.involves_single_variable)
    return _ratio_result("F5", single, len(nd), (49, 74))


def _f6(db: BugDatabase) -> FindingResult:
    dl = db.deadlock()
    small = dl.count(lambda r: r.resources_involved <= 2)
    return _ratio_result("F6", small, len(dl), (30, 31))


def _f7(db: BugDatabase) -> FindingResult:
    small = db.count(lambda r: r.small_access_set)
    return _ratio_result("F7", small, len(db), (97, 105))


def _f8(db: BugDatabase) -> FindingResult:
    nd = db.non_deadlock()
    lockless = nd.count(lambda r: r.fix_strategy is not FixStrategy.ADD_LOCK)
    return _ratio_result("F8", lockless, len(nd), (54, 74))


def _f9(db: BugDatabase) -> FindingResult:
    dl = db.deadlock()
    give_up = dl.count(lambda r: r.fix_strategy is FixStrategy.GIVE_UP_RESOURCE)
    return _ratio_result("F9", give_up, len(dl), (19, 31))


def _f10(db: BugDatabase) -> FindingResult:
    buggy = db.count(lambda r: r.first_fix_buggy)
    return _ratio_result("F10", buggy, len(db), (17, 105))


FINDINGS: List[Finding] = [
    Finding(
        "F1",
        "97% (72/74) of the non-deadlock bugs are atomicity or order violations.",
        "Detecting these two patterns covers nearly all non-deadlock bugs.",
        _f1,
    ),
    Finding(
        "F2",
        "69% (51/74) of the non-deadlock bugs are atomicity violations.",
        "Atomicity-violation detection deserves first-class tools (AVIO-style).",
        _f2,
    ),
    Finding(
        "F3",
        "32% (24/74) of the non-deadlock bugs are order violations.",
        "Order violations are under-served by race/atomicity detectors and "
        "need dedicated techniques.",
        _f3,
    ),
    Finding(
        "F4",
        "96% (101/105) of the bugs manifest with no more than two threads.",
        "Pairwise-thread testing is nearly complete; no need to scale "
        "interleaving search across many threads.",
        _f4,
    ),
    Finding(
        "F5",
        "66% (49/74) of the non-deadlock bugs involve a single variable.",
        "Single-variable analyses are a sound first target; the remaining "
        "third motivates multi-variable detection.",
        _f5,
    ),
    Finding(
        "F6",
        "97% (30/31) of the deadlock bugs involve at most two resources "
        "(and 7/31 involve just one).",
        "Pairwise lock-order analysis covers almost all deadlocks.",
        _f6,
    ),
    Finding(
        "F7",
        "92% (97/105) of the bugs manifest deterministically once a "
        "partial order among at most 4 accesses/acquisitions is enforced.",
        "Testing should enforce small access orders rather than rely on "
        "timing; validated executably on every kernel (order_guarantees).",
        _f7,
    ),
    Finding(
        "F8",
        "73% (54/74) of the non-deadlock fixes add or change no lock.",
        "Patches remove the harm, not necessarily the race: tools must not "
        "assume fix == add-lock, and benign races persist after fixes.",
        _f8,
    ),
    Finding(
        "F9",
        "61% (19/31) of the deadlock fixes give up resource acquisition "
        "rather than impose an order.",
        "Deadlock-fix tooling should support back-off/try-lock rewrites.",
        _f9,
    ),
    Finding(
        "F10",
        "16% (17/105) of the first patches were themselves incorrect.",
        "Concurrency patches need schedule-space verification, not stress "
        "testing (see repro.fixes.verify).",
        _f10,
    ),
]


def check_all(db: Optional[BugDatabase] = None) -> List[FindingResult]:
    """Re-derive every finding; returns results in finding order."""
    database = db if db is not None else BugDatabase.load()
    return [finding.check(database) for finding in FINDINGS]
