"""The analysis pipeline: tables T1-T8, findings F1-F10, full report."""

from repro.study.findings import FINDINGS, Finding, FindingResult, check_all
from repro.study.render import Table
from repro.study.report import StudyReport, generate_report
from repro.study.tables import (
    all_tables,
    table1_applications,
    table2_bug_sources,
    table3_patterns,
    table3b_patterns_by_application,
    table4_threads,
    table4b_impacts,
    table5_variables,
    table6_accesses,
    table7_fixes,
    table8_patch_quality,
)

__all__ = [
    "Table",
    "all_tables",
    "table1_applications",
    "table2_bug_sources",
    "table3_patterns",
    "table3b_patterns_by_application",
    "table4_threads",
    "table4b_impacts",
    "table5_variables",
    "table6_accesses",
    "table7_fixes",
    "table8_patch_quality",
    "Finding",
    "FindingResult",
    "FINDINGS",
    "check_all",
    "StudyReport",
    "generate_report",
]
