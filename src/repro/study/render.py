"""ASCII table rendering for the study's outputs.

Every table generator in :mod:`repro.study.tables` returns a
:class:`Table`; benchmarks and the report print ``table.format()`` so the
regenerated artifacts read like the paper's tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence

__all__ = ["Table"]


@dataclass
class Table:
    """A titled grid with optional footer notes."""

    table_id: str
    title: str
    columns: List[str]
    rows: List[List[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *cells: Any) -> None:
        """Append one row; must match the column count."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"table {self.table_id}: row has {len(cells)} cells, "
                f"expected {len(self.columns)}"
            )
        self.rows.append(list(cells))

    def column(self, name: str) -> List[Any]:
        """All values of one column."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def cell(self, row_key: Any, column: str) -> Any:
        """Value at (first column == row_key, column)."""
        col_index = self.columns.index(column)
        for row in self.rows:
            if row[0] == row_key:
                return row[col_index]
        raise KeyError(f"table {self.table_id}: no row keyed {row_key!r}")

    def format(self) -> str:
        """Monospace rendering with header rule and notes."""
        cells = [[str(c) for c in row] for row in self.rows]
        widths = [len(col) for col in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(parts: Sequence[str]) -> str:
            return "  ".join(part.ljust(width) for part, width in zip(parts, widths)).rstrip()

        out = [f"{self.table_id}: {self.title}"]
        out.append(line(self.columns))
        out.append("-" * len(out[-1]))
        out.extend(line(row) for row in cells)
        for note in self.notes:
            out.append(f"  note: {note}")
        return "\n".join(out)

    def to_csv(self) -> str:
        """RFC-4180-ish CSV of the table (header + rows, no notes).

        For loading regenerated tables into spreadsheets or pandas when
        comparing against the paper's cells.
        """
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(row)
        return buffer.getvalue()

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.format()
