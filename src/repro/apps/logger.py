"""A miniature rotating log subsystem (the MySQL binlog shape).

Writers append events to the active log; a rotator periodically closes
the active segment and opens a fresh one.  Correct code holds ``loglock``
across both the rotation pair and each writer's check-and-append, so no
writer ever observes the half-rotated state.

Injectable bugs:

* ``unlocked_rotation`` — the rotator's close/reopen pair runs outside
  the lock: a writer between the two steps sees "closed" and silently
  drops its event (atomicity violation, wrong output — MySQL#791's
  shape, scaled to several writers and rotations);
* ``stale_segment_cache`` — writers cache the segment id before the
  lock: an append lands in the *previous* segment after rotation (order
  violation flavour, wrong output).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.sim import (
    Acquire,
    Program,
    Read,
    Release,
    RunResult,
    RunStatus,
    Write,
)

__all__ = ["LoggerConfig", "build_logger", "no_events_lost", "logger_bugs"]


@dataclass(frozen=True)
class LoggerConfig:
    """Workload shape and injectable bugs."""

    writers: int = 2
    events_per_writer: int = 2
    rotations: int = 1
    unlocked_rotation: bool = False
    stale_segment_cache: bool = False

    @property
    def buggy(self) -> bool:
        return self.unlocked_rotation or self.stale_segment_cache


def build_logger(config: LoggerConfig = LoggerConfig()) -> Program:
    """The logger as a Program; threads: Rotator, Writer1..n."""

    def rotator():
        for _ in range(config.rotations):
            if config.unlocked_rotation:
                # BUG: the two-step transition is exposed.
                yield Write("log_open", False, label="rotator.close")
                segment = yield Read("segment")
                yield Write("segment", segment + 1)
                yield Write("log_open", True, label="rotator.reopen")
            else:
                yield Acquire("loglock")
                yield Write("log_open", False, label="rotator.close")
                segment = yield Read("segment")
                yield Write("segment", segment + 1)
                yield Write("log_open", True, label="rotator.reopen")
                yield Release("loglock")

    def writer():
        def body():
            for _ in range(config.events_per_writer):
                if config.stale_segment_cache:
                    # BUG: segment id read before entering the lock.
                    segment = yield Read("segment", label="writer.stale_segment")
                    yield Acquire("loglock")
                else:
                    yield Acquire("loglock")
                    segment = yield Read("segment")
                is_open = yield Read("log_open", label="writer.check")
                if is_open:
                    appended = yield Read("appended")
                    yield Write("appended", appended + [segment])
                else:
                    lost = yield Read("lost")
                    yield Write("lost", lost + 1)
                yield Release("loglock")

        return body

    threads = {"Rotator": rotator}
    for index in range(config.writers):
        threads[f"Writer{index + 1}"] = writer()
    return Program(
        f"logger(writers={config.writers},events={config.events_per_writer}"
        + (",buggy" if config.buggy else "")
        + ")",
        threads=threads,
        initial={"log_open": True, "segment": 0, "appended": [], "lost": 0},
        locks=["loglock"],
    )


def no_events_lost(config: LoggerConfig):
    """Oracle factory: every event reached the log it was aimed at."""

    def oracle(run: RunResult) -> bool:
        total = config.writers * config.events_per_writer
        return (
            run.status is RunStatus.OK
            and run.memory["lost"] == 0
            and len(run.memory["appended"]) == total
        )

    return oracle


def logger_bugs() -> List[Tuple[str, str, str, Program, object]]:
    """Injected-bug catalogue entries for this app."""
    entries = []
    drop = LoggerConfig(writers=1, events_per_writer=1, unlocked_rotation=True)
    entries.append(
        (
            "logger",
            "unlocked_rotation",
            "atomicity-violation",
            build_logger(drop),
            lambda run: run.status is RunStatus.OK and run.memory["lost"] > 0,
        )
    )
    stale = LoggerConfig(writers=1, events_per_writer=1, stale_segment_cache=True)
    entries.append(
        (
            "logger",
            "stale_segment_cache",
            "atomicity-violation",
            build_logger(stale),
            stale_append,
        )
    )
    return entries


def stale_append(run: RunResult) -> bool:
    """Trace oracle: an append landed after rotation but with the old id.

    Final memory cannot distinguish 'appended to segment 0 before the
    rotation' (correct) from 'appended a cached segment-0 id after the
    rotation' (the bug), so the oracle checks event ordering: a write to
    ``appended`` carrying a stale id *after* the segment counter moved.
    """
    from repro.sim import events as ev

    if run.status is not RunStatus.OK:
        return False
    rotation_seq = None
    for event in run.trace:
        if isinstance(event, ev.WriteEvent) and event.var == "segment":
            rotation_seq = event.seq
    if rotation_seq is None:
        return False
    final_segment = run.memory["segment"]
    for event in run.trace:
        if (
            isinstance(event, ev.WriteEvent)
            and event.var == "appended"
            and event.seq > rotation_seq
            and event.value
            and event.value[-1] < final_segment
        ):
            return True
    return False
