"""Miniature applications: realistic workloads on the simulator.

The study's subjects are servers and suites; these modules are their
miniature analogues, built on the operation DSL so every studied bug
class can be *injected* into otherwise-correct application code and
hunted with the library's own tools:

* :mod:`repro.apps.webserver` — a worker-pool request server
  (queue + condition variable + shared statistics + shutdown path);
* :mod:`repro.apps.logger` — a rotating log subsystem (the MySQL shape);
* :mod:`repro.apps.cache` — a reference-counted object cache with
  eviction (the Apache shape) and a two-lock layout.

Each module exposes a config dataclass whose flags inject one bug class,
a ``build()`` returning the Program, and oracles.  ``bug_catalogue()``
lists every injectable bug with its expected class — the integration
surface for detector and exploration tests at application scale.
"""

from repro.apps.cache import CacheConfig, build_cache, cache_bugs
from repro.apps.logger import LoggerConfig, build_logger, logger_bugs
from repro.apps.webserver import WebServerConfig, build_webserver, webserver_bugs

__all__ = [
    "WebServerConfig",
    "build_webserver",
    "webserver_bugs",
    "LoggerConfig",
    "build_logger",
    "logger_bugs",
    "CacheConfig",
    "build_cache",
    "cache_bugs",
    "bug_catalogue",
]


def bug_catalogue():
    """Every injectable application bug: (app, flag, kind, program, oracle)."""
    return [*webserver_bugs(), *logger_bugs(), *cache_bugs()]
