"""A miniature reference-counted object cache (the Apache shape).

Clients look an object up (bumping its refcount under the cache lock),
use it, and release it; the releaser that drops the count to zero frees
the object.  An evictor thread concurrently unlinks the object from the
cache and drops the cache's own reference.

Injectable bugs:

* ``nonatomic_refcount`` — the decrement and the zero-check run in
  separate critical sections: two releasers both observe zero and free
  twice (the Apache#21287 double free, race-free atomicity violation);
* ``abba_locks`` — clients take ``cachelock`` then ``objlock`` while the
  evictor takes ``objlock`` then ``cachelock``: the two-resource
  deadlock of Table 5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.sim import (
    Acquire,
    AtomicUpdate,
    Program,
    Read,
    Release,
    RunResult,
    RunStatus,
    Write,
)

__all__ = ["CacheConfig", "build_cache", "single_free", "cache_bugs"]


@dataclass(frozen=True)
class CacheConfig:
    """Workload shape and injectable bugs."""

    clients: int = 2
    nonatomic_refcount: bool = False
    abba_locks: bool = False

    @property
    def buggy(self) -> bool:
        return self.nonatomic_refcount or self.abba_locks


def build_cache(config: CacheConfig = CacheConfig()) -> Program:
    """The cache as a Program; threads: C1..Cn (clients), Evictor."""

    def releaser(tid):
        def body():
            if config.abba_locks:
                # BUG: clients take cachelock -> objlock...
                yield Acquire("cachelock", label=f"{tid}.cache_first")
                yield Acquire("objlock", label=f"{tid}.obj_second")
                count = yield Read("refcnt")
                yield Write("refcnt", count - 1)
                yield Release("objlock")
                yield Release("cachelock")
                return
            if config.nonatomic_refcount:
                # BUG: decrement and zero-check in separate sections.
                yield Acquire("objlock")
                count = yield Read("refcnt")
                yield Write("refcnt", count - 1, label=f"{tid}.dec")
                yield Release("objlock")
                yield Acquire("objlock")
                now = yield Read("refcnt", label=f"{tid}.check")
                yield Release("objlock")
            else:
                now = yield AtomicUpdate("refcnt", lambda v: v - 1)
            if now == 0:
                yield Write(f"freed_by_{tid}", True)

        return body

    def evictor():
        if config.abba_locks:
            # ...while the evictor takes objlock -> cachelock.
            yield Acquire("objlock", label="evictor.obj_first")
            yield Acquire("cachelock", label="evictor.cache_second")
            entries = yield Read("entries")
            yield Write("entries", max(entries - 1, 0))
            yield Release("cachelock")
            yield Release("objlock")
        else:
            yield Acquire("cachelock")
            entries = yield Read("entries")
            yield Write("entries", max(entries - 1, 0))
            yield Release("cachelock")

    threads = {}
    for index in range(config.clients):
        threads[f"C{index + 1}"] = releaser(f"c{index + 1}")
    threads["Evictor"] = evictor
    initial = {"refcnt": config.clients, "entries": 1}
    for index in range(config.clients):
        initial[f"freed_by_c{index + 1}"] = False
    return Program(
        f"cache(clients={config.clients}"
        + (",buggy" if config.buggy else "")
        + ")",
        threads=threads,
        initial=initial,
        locks=["cachelock", "objlock"],
    )


def single_free(config: CacheConfig):
    """Oracle factory: the object was freed exactly once, by someone."""

    def oracle(run: RunResult) -> bool:
        if run.status is not RunStatus.OK:
            return False
        frees = sum(
            1
            for index in range(config.clients)
            if run.memory[f"freed_by_c{index + 1}"]
        )
        return frees == 1

    return oracle


def cache_bugs() -> List[Tuple[str, str, str, Program, object]]:
    """Injected-bug catalogue entries for this app."""
    entries = []
    double = CacheConfig(clients=2, nonatomic_refcount=True)
    entries.append(
        (
            "cache",
            "nonatomic_refcount",
            "atomicity-violation",
            build_cache(double),
            lambda run: run.status is RunStatus.OK
            and run.memory["freed_by_c1"]
            and run.memory["freed_by_c2"],
        )
    )
    abba = CacheConfig(clients=1, abba_locks=True)
    entries.append(
        (
            "cache",
            "abba_locks",
            "deadlock",
            build_cache(abba),
            lambda run: run.status is RunStatus.DEADLOCK,
        )
    )
    return entries
