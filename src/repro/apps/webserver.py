"""A miniature worker-pool request server.

Structure (all correct by default):

* a **producer** enqueues requests under the queue lock and notifies the
  condition variable per enqueue, then enqueues one STOP pill per worker;
* **workers** loop: take the queue lock, wait on the condvar while the
  queue is empty (re-checking under the lock — the correct protocol),
  pop one item FIFO, and process it: read the connection object and bump
  the served counter under the stats lock;
* a **shutdown** thread joins the producer and every worker, then tears
  the connection object down.

Three study bug classes inject into this code:

* ``unlocked_stats`` — the counter bump happens outside the stats lock:
  a lost update (atomicity violation, wrong output);
* ``unlocked_queue_check`` — workers check the queue *before* taking the
  lock, the lost-wakeup order violation: the producer's notify can land
  between check and wait, hanging a worker forever;
* ``teardown_race`` — shutdown joins only the producer, so teardown can
  overtake a worker still holding the connection (order violation,
  crash).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import SimCrash
from repro.sim import (
    Acquire,
    Join,
    Notify,
    Program,
    Read,
    Release,
    RunResult,
    RunStatus,
    Wait,
    Write,
)

__all__ = ["WebServerConfig", "build_webserver", "served_everything", "webserver_bugs"]


@dataclass(frozen=True)
class WebServerConfig:
    """Workload shape and injectable bugs."""

    workers: int = 2
    requests: int = 3
    unlocked_stats: bool = False
    unlocked_queue_check: bool = False
    teardown_race: bool = False

    @property
    def buggy(self) -> bool:
        return self.unlocked_stats or self.unlocked_queue_check or self.teardown_race


def build_webserver(config: WebServerConfig = WebServerConfig()) -> Program:
    """The server as a Program; thread names: Producer, W1..Wn, Shutdown."""

    def producer():
        for index in range(config.requests):
            yield Acquire("qlock")
            queue = yield Read("queue")
            yield Write("queue", queue + [f"req-{index}"])
            yield Notify("qcv")
            yield Release("qlock")
        for _ in range(config.workers):
            yield Acquire("qlock")
            queue = yield Read("queue")
            yield Write("queue", queue + ["STOP"])
            yield Notify("qcv")
            yield Release("qlock")

    def worker():
        def body():
            while True:
                if config.unlocked_queue_check:
                    # BUG: check outside the lock; the notify can be lost.
                    queue = yield Read("queue", label="worker.unlocked_check")
                    yield Acquire("qlock")
                    if not queue:
                        yield Wait("qcv")
                else:
                    yield Acquire("qlock")
                    while True:
                        queue = yield Read("queue")
                        if queue:
                            break
                        yield Wait("qcv")
                queue = yield Read("queue")
                if not queue:
                    # Spurious resume under the buggy check: loop again.
                    yield Release("qlock")
                    continue
                item = queue[0]
                yield Write("queue", queue[1:])
                yield Release("qlock")
                if item == "STOP":
                    return
                connection = yield Read("conn", label="worker.use_conn")
                if connection is None:
                    raise SimCrash("request processed on a torn-down connection")
                if config.unlocked_stats:
                    # BUG: read-modify-write outside the stats lock.
                    served = yield Read("served", label="worker.stats_read")
                    yield Write("served", served + 1, label="worker.stats_write")
                else:
                    yield Acquire("slock")
                    served = yield Read("served")
                    yield Write("served", served + 1)
                    yield Release("slock")

        return body

    def shutdown():
        yield Join("Producer")
        if not config.teardown_race:
            for index in range(config.workers):
                yield Join(f"W{index + 1}")
        # BUG (teardown_race): workers may still be processing.
        yield Write("conn", None, label="shutdown.teardown")

    threads = {"Producer": producer, "Shutdown": shutdown}
    for index in range(config.workers):
        threads[f"W{index + 1}"] = worker()
    return Program(
        f"webserver(workers={config.workers},requests={config.requests}"
        + (",buggy" if config.buggy else "")
        + ")",
        threads=threads,
        initial={"queue": [], "served": 0, "conn": "listener-socket"},
        locks=["qlock", "slock"],
        conditions={"qcv": "qlock"},
    )


def served_everything(config: WebServerConfig):
    """Oracle factory: the run finished and every request was counted."""

    def oracle(run: RunResult) -> bool:
        return run.status is RunStatus.OK and run.memory["served"] == config.requests

    return oracle


def webserver_bugs() -> List[Tuple[str, str, str, Program, object]]:
    """Injected-bug catalogue entries for this app."""
    entries = []
    lost = WebServerConfig(workers=2, requests=2, unlocked_stats=True)
    entries.append(
        (
            "webserver",
            "unlocked_stats",
            "atomicity-violation",
            build_webserver(lost),
            lambda run: run.status is RunStatus.OK
            and run.memory["served"] < lost.requests,
        )
    )
    hang = WebServerConfig(workers=1, requests=1, unlocked_queue_check=True)
    entries.append(
        (
            "webserver",
            "unlocked_queue_check",
            "order-violation",
            build_webserver(hang),
            lambda run: run.status is RunStatus.HANG,
        )
    )
    crash = WebServerConfig(workers=1, requests=2, teardown_race=True)
    entries.append(
        (
            "webserver",
            "teardown_race",
            "order-violation",
            build_webserver(crash),
            lambda run: run.status is RunStatus.CRASH,
        )
    )
    return entries
