"""repro.obs — the observability layer: metrics, run telemetry, profiling.

Three zero-dependency submodules, all **off by default and free when
off** (a single ``None`` check on the instrumented paths):

* :mod:`repro.obs.metrics` — a labelled counter/gauge/histogram
  registry incremented by the explorers, the state cache, the engine,
  the detector suite, and the manifestation estimator;
* :mod:`repro.obs.runlog` — structured JSONL run records (one per
  ``find_schedule`` / ``enumerate_outcomes`` / estimator / CLI
  invocation) so every reported number is traceable to the searches
  that produced it;
* :mod:`repro.obs.profile` — named span timers around the hot phases
  (engine op execution, state fingerprinting, shard dispatch/merge)
  with a sorted hot-path table.

``obs`` sits *below* every other layer: it imports nothing from
``repro`` outside :mod:`repro.errors`-free stdlib code, so any module
may instrument itself without creating cycles.  The CLI exposes the
whole layer as ``--metrics-out PATH`` (JSONL export) and ``--profile``
(hot-path table) on every subcommand; see ``docs/observability.md``.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import Profiler
from repro.obs.runlog import RunLog, read_records

__all__ = [
    "MetricsRegistry",
    "Profiler",
    "RunLog",
    "read_records",
]
