"""Structured run telemetry: one JSONL record per instrumented invocation.

Every number in EXPERIMENTS.md and every table cell a bench prints comes
out of some exploration or estimator sweep.  The run log makes those
runs *auditable*: when a sink is installed, each call to
:func:`repro.sim.explorer.find_schedule` /
:func:`~repro.sim.explorer.enumerate_outcomes`, each estimator sweep,
each bug-report build, and the CLI itself appends one JSON object — the
arguments, the result counters, an outcome-set digest, wall-clock, and
(for the CLI summary record) the full metrics snapshot.  A figure can
then be traced back to the exact searches that produced it, and an
"instrumented re-run" can be diffed against the record field by field.

The sink is either a file path (records are appended, one per line —
JSONL) or a callable receiving each record dict (for tests and embedded
consumers).  Like :mod:`repro.obs.metrics`, the module-level
:func:`emit` is a no-op until :func:`set_runlog` installs a sink, so
un-instrumented workloads pay one ``None`` check per entry-point call.

Record schema (``docs/observability.md`` has the worked example)::

    {
      "schema": "repro.runlog/v1",
      "event": "<entry point: enumerate_outcomes | find_schedule |
                 estimate_manifestation | bug_report | cli | bench>",
      "ts": <unix seconds, float>,
      ... event-specific fields, all JSON-native ...
    }

Exploration events carry ``program``, ``args`` (the bounds:
``max_schedules``/``max_steps``/``preemption_bound``/``workers``/
``memoize``), ``result`` (``schedules_run``, ``cache_hits``,
``states_expanded``, ``preemptions_spent``, ``complete``,
``match_count``, ``shards``, ``statuses``, ``distinct_outcomes``),
``outcome_digest`` and ``wall_seconds``.
"""

from __future__ import annotations

import hashlib
import json
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Union

__all__ = [
    "RunLog",
    "SCHEMA",
    "active_runlog",
    "clear_runlog",
    "emit",
    "exploration_record",
    "outcome_digest",
    "read_records",
    "set_runlog",
]

SCHEMA = "repro.runlog/v1"

Sink = Union[str, Path, Callable[[Dict[str, Any]], None]]


class RunLog:
    """A telemetry sink: appends JSONL to a file or forwards to a callback."""

    def __init__(self, sink: Sink):
        self._callback: Optional[Callable[[Dict[str, Any]], None]]
        self._path: Optional[Path]
        if callable(sink):
            self._callback = sink
            self._path = None
        else:
            self._callback = None
            self._path = Path(sink)
        self.records_emitted = 0

    @property
    def path(self) -> Optional[Path]:
        """The output file, or ``None`` for callback sinks."""
        return self._path

    def emit(self, event: str, **fields: Any) -> Dict[str, Any]:
        """Build, deliver, and return one record."""
        record: Dict[str, Any] = {"schema": SCHEMA, "event": event, "ts": time.time()}
        record.update(fields)
        if self._callback is not None:
            self._callback(record)
        else:
            assert self._path is not None
            with self._path.open("a", encoding="utf-8") as fh:
                fh.write(json.dumps(record, default=_jsonable) + "\n")
        self.records_emitted += 1
        return record


def _jsonable(value: Any) -> Any:
    """Last-resort JSON coercion for enum members and odd leaf values."""
    if hasattr(value, "value"):
        return value.value
    return repr(value)


#: The process-global sink; ``None`` disables telemetry.
_RUNLOG: Optional[RunLog] = None


def set_runlog(sink: Sink) -> RunLog:
    """Install (and return) the global run log."""
    global _RUNLOG
    _RUNLOG = RunLog(sink)
    return _RUNLOG


def clear_runlog() -> None:
    """Remove the global run log; :func:`emit` becomes a no-op again."""
    global _RUNLOG
    _RUNLOG = None


def active_runlog() -> Optional[RunLog]:
    """The installed run log, or ``None``."""
    return _RUNLOG


def emit(event: str, **fields: Any) -> Optional[Dict[str, Any]]:
    """Emit through the global run log; no-op (returns ``None``) if unset."""
    log = _RUNLOG
    if log is None:
        return None
    return log.emit(event, **fields)


def outcome_digest(outcomes: Iterable[Any]) -> str:
    """Stable hex digest of a terminal outcome *set*.

    Keys are hashed by their ``repr`` in sorted order, so the digest is
    identical across serial / parallel / memoized explorations of the
    same program (memoization preserves the outcome set, not counts).
    """
    blob = "\n".join(sorted(repr(key) for key in outcomes))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def exploration_record(result: Any, args: Dict[str, Any], wall_seconds: float) -> Dict[str, Any]:
    """The shared body of a ``find_schedule``/``enumerate_outcomes`` record.

    ``result`` is an :class:`~repro.sim.explorer.ExplorationResult`;
    typed as ``Any`` to keep :mod:`repro.obs` import-free of the
    simulator (obs sits below every other layer).
    """
    return {
        "program": result.program,
        "args": dict(args),
        "result": {
            "schedules_run": result.schedules_run,
            "cache_hits": result.cache_hits,
            "states_expanded": result.states_expanded,
            "preemptions_spent": result.preemptions_spent,
            "complete": result.complete,
            "match_count": result.match_count,
            "shards": result.shards,
            "statuses": {
                status.value: count for status, count in sorted(
                    result.statuses.items(), key=lambda item: item[0].value
                )
            },
            "distinct_outcomes": len(result.outcomes),
            "schedules_to_first_finding": result.schedules_to_first_finding,
            "steal_donations": result.steal_donations,
            "stolen_prefixes": result.stolen_prefixes,
            "idle_seconds": result.idle_seconds,
            "donate_seconds": result.donate_seconds,
        },
        "outcome_digest": outcome_digest(result.outcomes),
        "wall_seconds": wall_seconds,
    }


def read_records(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse a JSONL run log back into record dicts (blank lines skipped)."""
    records = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
