"""Zero-dependency metrics registry: counters, gauges, histograms.

The registry is the measurement substrate under every exploration,
detector run, and estimator sweep: instrumented code reports *what it
did* (schedules run, states expanded, cache hits, shard wall-clock,
detector verdicts) and callers read it back as a plain-dict snapshot
suitable for JSONL export (:mod:`repro.obs.runlog`) or assertion in
tests and benchmarks.

Design constraints, in order:

1. **Off by default, free when off.**  Nothing in the hot paths may pay
   for observability the user did not ask for.  The module-level helpers
   (:func:`inc`, :func:`set_gauge`, :func:`observe`) are no-ops — one
   global read and a ``None`` check — until :func:`enable` installs a
   registry.  Instrumented code either calls the helpers at *run*
   granularity (never per engine step) or hoists ``active()`` out of its
   loop.
2. **Labels, not name mangling.**  A metric is identified by
   ``(name, sorted label items)``; the same counter name aggregates
   across programs/explorers/shards and slices by label.
3. **No dependencies, no threads, no locks.**  Exploration worker
   *processes* each see their own (forked) registry; cross-process
   merging happens at the :class:`~repro.sim.explorer.ExplorationResult`
   level, where shard results already travel back to the parent (see
   ``docs/observability.md``).

Metric types:

* **counter** — monotonically increasing float (``inc``);
* **gauge** — last-write-wins float (``set_gauge``);
* **histogram** — running count/sum/min/max of observations
  (``observe``) — enough for balance and latency evidence without
  bucket configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional, Tuple

__all__ = [
    "HistogramStats",
    "MetricsRegistry",
    "active",
    "disable",
    "enable",
    "enabled",
    "inc",
    "observe",
    "set_gauge",
    "snapshot",
]

#: A metric key: name plus its label set, canonically ordered.
MetricKey = Tuple[str, Tuple[Tuple[str, str], ...]]


def _key(name: str, labels: Dict[str, object]) -> MetricKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


@dataclass
class HistogramStats:
    """Running summary of one histogram series."""

    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else 0.0,
            "max": self.maximum if self.count else 0.0,
            "mean": self.mean,
        }


class MetricsRegistry:
    """An isolated set of named, labelled metric series."""

    def __init__(self) -> None:
        self._counters: Dict[MetricKey, float] = {}
        self._gauges: Dict[MetricKey, float] = {}
        self._histograms: Dict[MetricKey, HistogramStats] = {}

    # -- writing -----------------------------------------------------------

    def inc(self, name: str, value: float = 1, **labels: object) -> None:
        """Add ``value`` to the counter ``name`` with ``labels``."""
        key = _key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge ``name`` with ``labels`` (last write wins)."""
        self._gauges[_key(name, labels)] = value

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record one observation in the histogram ``name`` with ``labels``."""
        key = _key(name, labels)
        stats = self._histograms.get(key)
        if stats is None:
            stats = self._histograms[key] = HistogramStats()
        stats.observe(value)

    # -- reading -----------------------------------------------------------

    def counter(self, name: str, **labels: object) -> float:
        """The counter's current value (0 if never incremented)."""
        return self._counters.get(_key(name, labels), 0)

    def counter_total(self, name: str) -> float:
        """Sum of the counter across every label combination."""
        return sum(v for (n, _), v in self._counters.items() if n == name)

    def gauge(self, name: str, **labels: object) -> Optional[float]:
        """The gauge's current value, or ``None`` if never set."""
        return self._gauges.get(_key(name, labels))

    def histogram(self, name: str, **labels: object) -> Optional[HistogramStats]:
        """The histogram's running stats, or ``None`` if never observed."""
        return self._histograms.get(_key(name, labels))

    def series(self, name: str) -> Iterator[Tuple[Dict[str, str], object]]:
        """Every (labels, value-or-stats) series recorded under ``name``."""
        for store in (self._counters, self._gauges, self._histograms):
            for (n, labels), value in store.items():
                if n == name:
                    yield dict(labels), value

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def snapshot(self) -> Dict[str, Dict]:
        """JSON-ready dump of every series, keyed ``name{k=v,...}``."""

        def render(key: MetricKey) -> str:
            name, labels = key
            if not labels:
                return name
            inner = ",".join(f"{k}={v}" for k, v in labels)
            return f"{name}{{{inner}}}"

        return {
            "counters": {
                render(k): v for k, v in sorted(self._counters.items())
            },
            "gauges": {render(k): v for k, v in sorted(self._gauges.items())},
            "histograms": {
                render(k): stats.as_dict()
                for k, stats in sorted(self._histograms.items())
            },
        }


#: The process-global registry; ``None`` means metrics are disabled and
#: every module-level helper below returns immediately.
_REGISTRY: Optional[MetricsRegistry] = None


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Install (and return) the global registry; starts empty by default."""
    global _REGISTRY
    _REGISTRY = registry if registry is not None else MetricsRegistry()
    return _REGISTRY


def disable() -> None:
    """Remove the global registry; helpers become no-ops again."""
    global _REGISTRY
    _REGISTRY = None


def active() -> Optional[MetricsRegistry]:
    """The global registry, or ``None`` when metrics are disabled."""
    return _REGISTRY


def enabled() -> bool:
    """Whether a global registry is installed."""
    return _REGISTRY is not None


def inc(name: str, value: float = 1, **labels: object) -> None:
    """Increment on the global registry; no-op when disabled."""
    registry = _REGISTRY
    if registry is not None:
        registry.inc(name, value, **labels)


def set_gauge(name: str, value: float, **labels: object) -> None:
    """Set a gauge on the global registry; no-op when disabled."""
    registry = _REGISTRY
    if registry is not None:
        registry.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels: object) -> None:
    """Observe into a histogram on the global registry; no-op when disabled."""
    registry = _REGISTRY
    if registry is not None:
        registry.observe(name, value, **labels)


def snapshot() -> Optional[Dict[str, Dict]]:
    """Snapshot of the global registry, or ``None`` when disabled."""
    registry = _REGISTRY
    return registry.snapshot() if registry is not None else None
