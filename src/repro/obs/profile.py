"""Lightweight profiling hooks: named span timers and a hot-path table.

``cProfile`` on the exploration hot path distorts exactly what it
measures (every generator resume and scheduler call gets traced).  These
spans are the opposite trade-off: a handful of hand-placed timers around
the phases that matter — engine op execution, state fingerprinting,
shard dispatch, shard merge — with near-zero cost when profiling is off
and two ``perf_counter`` calls per span when it is on.

Usage::

    from repro.obs import profile

    profiler = profile.enable()
    ... run the workload ...
    print(profiler.report())       # sorted hot-path table
    profile.disable()

Instrumented code uses either the context manager::

    with profile.span("parallel.dispatch"):
        ...

(which is a shared no-op singleton while disabled), or — in per-step
loops — hoists :func:`active` out of the loop, accumulates locally, and
calls :meth:`Profiler.add` once (see ``Engine.run``), so the disabled
path costs a single ``None`` check per loop iteration at most.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Dict, Iterator, Optional

__all__ = ["Profiler", "SpanStats", "active", "disable", "enable", "enabled", "span"]


class SpanStats:
    """Accumulated time of one named span."""

    __slots__ = ("count", "total")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Profiler:
    """Named wall-clock accumulators with a sorted report."""

    def __init__(self) -> None:
        self.spans: Dict[str, SpanStats] = {}

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Credit ``seconds`` (over ``count`` occurrences) to span ``name``."""
        stats = self.spans.get(name)
        if stats is None:
            stats = self.spans[name] = SpanStats()
        stats.count += count
        stats.total += seconds

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a ``with`` block into span ``name``."""
        start = perf_counter()
        try:
            yield
        finally:
            self.add(name, perf_counter() - start)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready dump: name -> {count, total_seconds, mean_seconds}."""
        return {
            name: {
                "count": stats.count,
                "total_seconds": stats.total,
                "mean_seconds": stats.mean,
            }
            for name, stats in sorted(self.spans.items())
        }

    def report(self) -> str:
        """The hot-path table: spans sorted by total time, descending."""
        if not self.spans:
            return "profile: no spans recorded"
        rows = sorted(
            self.spans.items(), key=lambda item: item[1].total, reverse=True
        )
        name_width = max(len("span"), max(len(name) for name, _ in rows))
        lines = [
            f"{'span':<{name_width}}  {'calls':>10}  {'total (s)':>10}  {'mean (us)':>10}",
            f"{'-' * name_width}  {'-' * 10}  {'-' * 10}  {'-' * 10}",
        ]
        for name, stats in rows:
            lines.append(
                f"{name:<{name_width}}  {stats.count:>10}  "
                f"{stats.total:>10.4f}  {stats.mean * 1e6:>10.2f}"
            )
        return "\n".join(lines)


class _NoopSpan:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None


_NOOP = _NoopSpan()

#: The process-global profiler; ``None`` means profiling is disabled.
_PROFILER: Optional[Profiler] = None


def enable(profiler: Optional[Profiler] = None) -> Profiler:
    """Install (and return) the global profiler."""
    global _PROFILER
    _PROFILER = profiler if profiler is not None else Profiler()
    return _PROFILER


def disable() -> None:
    """Remove the global profiler; spans become no-ops again."""
    global _PROFILER
    _PROFILER = None


def active() -> Optional[Profiler]:
    """The global profiler, or ``None`` when profiling is disabled."""
    return _PROFILER


def enabled() -> bool:
    """Whether a global profiler is installed."""
    return _PROFILER is not None


def span(name: str):
    """A context manager timing into the global profiler (no-op if unset)."""
    profiler = _PROFILER
    if profiler is None:
        return _NOOP
    return profiler.span(name)
