"""Exception hierarchy for the ``repro`` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.  The
simulator additionally distinguishes *modelled* failures (a simulated thread
crashing, a simulated deadlock) from *usage* errors (a program referencing an
undeclared lock): the former are reported as data on the run result, the
latter raise eagerly.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ProgramError(ReproError):
    """A simulated program is malformed.

    Raised eagerly when a program references an undeclared variable or
    synchronisation object, re-declares a name, or a thread body violates
    the operation protocol (e.g. yields a non-operation).
    """


class SchedulerError(ReproError):
    """A scheduler violated its contract (e.g. chose a disabled thread)."""


class ReplayError(ReproError):
    """A recorded schedule could not be replayed against a program.

    This typically means the program is not the one the schedule was
    recorded from, or the schedule ends before the program does.
    """


class ExplorationError(ReproError):
    """Systematic exploration was asked to do something impossible.

    For example, exceeding the configured schedule budget when the caller
    demanded exhaustive coverage.
    """


class SimCrash(ReproError):
    """Raised *inside a simulated thread body* to model a program crash.

    The engine catches it, marks the thread as crashed, and records a
    :class:`~repro.sim.events.ThreadCrashed` event; it never propagates to
    the caller of the simulator.  Kernels use this to model the
    segfault/abort consequences of a concurrency bug.
    """

    def __init__(self, reason: str = "simulated crash"):
        super().__init__(reason)
        self.reason = reason


class EnforcementError(ReproError):
    """An access-order enforcement request is unsatisfiable.

    Raised by :mod:`repro.manifest.enforce` when the requested partial order
    references labels the program never executes, or cycles.
    """


class BugDatabaseError(ReproError):
    """The bug database failed a structural invariant check."""


class FixError(ReproError):
    """A fix strategy could not be applied to a kernel."""
