"""Fix strategies (Table 7) and exhaustive fix verification."""

from repro.fixes.strategies import (
    FIX_DESCRIPTIONS,
    apply_strategy,
    bad_patch_partial_lock,
    bad_patch_sleep,
    bad_patches,
    fixes_for,
)
from repro.fixes.verify import (
    FixVerification,
    audit_bad_patches,
    verify_all_fixes,
    verify_fix,
)

__all__ = [
    "FIX_DESCRIPTIONS",
    "fixes_for",
    "apply_strategy",
    "bad_patch_sleep",
    "bad_patch_partial_lock",
    "bad_patches",
    "FixVerification",
    "verify_fix",
    "verify_all_fixes",
    "audit_bad_patches",
]
