"""Fix verification by exhaustive schedule exploration.

The study's patch-quality observation (17 of 105 first fixes were wrong)
is an argument for *verifying* concurrency patches rather than stress-
testing them.  ``verify_fix`` explores every schedule of a patched program
against the kernel's failure oracle and returns either a clean bill or a
replayable counterexample schedule — the workflow a maintainer would
actually want.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bugdb.schema import FixStrategy
from repro.fixes.strategies import bad_patches, fixes_for
from repro.kernels.base import BugKernel
from repro.sim import Program
from repro.sim.explorer import make_explorer

__all__ = ["FixVerification", "verify_fix", "verify_all_fixes", "audit_bad_patches"]


@dataclass(frozen=True)
class FixVerification:
    """Outcome of exhaustively checking one patched program."""

    program: str
    clean: bool
    complete: bool
    schedules_explored: int
    counterexample: Optional[List[str]] = None

    def summary(self) -> str:
        """One-line rendering."""
        if self.clean:
            extent = "exhaustive" if self.complete else "bounded"
            return (
                f"{self.program}: clean over {self.schedules_explored} "
                f"schedules ({extent})"
            )
        return (
            f"{self.program}: STILL BUGGY — counterexample of "
            f"{len(self.counterexample or [])} steps found after "
            f"{self.schedules_explored} schedules"
        )


def verify_fix(
    kernel: BugKernel,
    patched: Program,
    max_schedules: int = 50000,
    workers: Optional[int] = None,
) -> FixVerification:
    """Explore every schedule of ``patched`` against the kernel's oracle.

    ``workers > 1`` shards the exploration across a process pool; the
    verdict and counterexample are identical to the serial search.
    """
    explorer = make_explorer(
        patched, max_schedules, 5000, None, workers, False, keep_matches=1,
    )
    result = explorer.explore(predicate=kernel.failure, stop_on_first=True)
    if result.found:
        return FixVerification(
            program=patched.name,
            clean=False,
            complete=False,
            schedules_explored=result.schedules_run,
            counterexample=result.first_match_schedule,
        )
    return FixVerification(
        program=patched.name,
        clean=True,
        complete=result.complete,
        schedules_explored=result.schedules_run,
    )


def verify_all_fixes(
    kernel: BugKernel,
    max_schedules: int = 50000,
    workers: Optional[int] = None,
) -> Dict[FixStrategy, FixVerification]:
    """Verify every patched variant the kernel ships."""
    return {
        strategy: verify_fix(
            kernel, program, max_schedules=max_schedules, workers=workers
        )
        for strategy, program in fixes_for(kernel)
    }


def audit_bad_patches(
    max_schedules: int = 50000, workers: Optional[int] = None
) -> List[FixVerification]:
    """Run the modelled incorrect first patches through verification.

    Every returned verification must be non-clean — the point of the
    exercise is that exploration finds the surviving bug along with a
    replayable counterexample, where stress testing usually reports
    success.
    """
    return [
        verify_fix(kernel, patched, max_schedules=max_schedules, workers=workers)
        for kernel, patched, _why in bad_patches()
    ]
