"""The study's fix-strategy taxonomy, made programmatic.

Table 7 of the study classifies how developers actually fixed the bugs —
and its headline is that 73% of non-deadlock fixes add *no* locks.  This
module exposes the taxonomy with the paper's definitions and maps kernels
to every patched variant they provide, so benchmarks and examples can
apply "the COND fix" or "the give-up fix" by name.

It also ships two **deliberately bad patches** modelled on the study's
"mistakes during fixing" observation (17 of the 105 first patches were
themselves incorrect): the infamous add-a-sleep non-fix and a
partial-locking patch.  :mod:`repro.fixes.verify` demonstrates that
exhaustive schedule verification rejects both.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.bugdb.schema import FixStrategy
from repro.errors import FixError, SimCrash
from repro.kernels import get_kernel
from repro.kernels.base import BugKernel
from repro.sim import Acquire, Program, Read, Release, Sleep, Write

__all__ = [
    "FIX_DESCRIPTIONS",
    "fixes_for",
    "apply_strategy",
    "bad_patch_sleep",
    "bad_patch_partial_lock",
    "bad_patches",
]

#: The paper's definition of each strategy.
FIX_DESCRIPTIONS: Dict[FixStrategy, str] = {
    FixStrategy.COND_CHECK: (
        "Condition check (COND): add or repair a check so the harmful case "
        "is handled; the race itself may remain, now benign."
    ),
    FixStrategy.CODE_SWITCH: (
        "Code switch (Switch): move code so the required order holds by "
        "construction (e.g. publish before spawn)."
    ),
    FixStrategy.DESIGN_CHANGE: (
        "Design change (Design): restructure the algorithm or data "
        "structure (e.g. one atomic operation instead of two sections)."
    ),
    FixStrategy.ADD_LOCK: (
        "Lock (Lock): add or adjust locks so the involved accesses form "
        "one atomic region — only 27% of the studied non-deadlock fixes."
    ),
    FixStrategy.OTHER_NON_DEADLOCK: (
        "Other: fixes outside the four recurring non-deadlock strategies."
    ),
    FixStrategy.GIVE_UP_RESOURCE: (
        "Give up the resource: back off (try-lock, release-and-retry) "
        "instead of blocking — the most common deadlock fix."
    ),
    FixStrategy.ACQUIRE_ORDER: (
        "Acquisition order: impose one global order on the involved locks."
    ),
    FixStrategy.SPLIT_RESOURCE: (
        "Split the resource: break the contended lock/object apart so the "
        "circular wait cannot form."
    ),
    FixStrategy.OTHER_DEADLOCK: (
        "Other: deadlock fixes outside the recurring strategies."
    ),
}


def fixes_for(kernel: BugKernel) -> List[Tuple[FixStrategy, Program]]:
    """Every patched variant a kernel provides: primary first, then others."""
    return [(kernel.fix_strategy, kernel.fixed), *kernel.alternative_fixes]


def apply_strategy(kernel: BugKernel, strategy: FixStrategy) -> Program:
    """The kernel's patched program for ``strategy``.

    Raises :class:`~repro.errors.FixError` when the kernel ships no patch
    of that strategy — mirroring reality: not every strategy applies to
    every bug (you cannot 'give up a resource' in a pure order violation).
    """
    for available, program in fixes_for(kernel):
        if available is strategy:
            return program
    raise FixError(
        f"kernel {kernel.name!r} has no {strategy.value} fix; available: "
        f"{[s.value for s, _ in fixes_for(kernel)]}"
    )


def bad_patch_sleep() -> Tuple[BugKernel, Program, str]:
    """The add-a-sleep non-fix for the check-then-use kernel.

    Sleeping between check and use narrows the window in wall-clock terms
    but constrains nothing; under an adversarial schedule the remote reset
    still lands inside the window.  The most common shape of an incorrect
    first concurrency patch.
    """
    kernel = get_kernel("atomicity_single_var")

    def user_patched():
        pointer = yield Read("proc_info", label="user.check")
        if pointer is not None:
            yield Sleep(2)  # "give the other thread time" — not a fix
            value = yield Read("proc_info", label="user.use")
            if value is None:
                raise SimCrash("null dereference: checked value vanished")
            yield Write("sink", len(value))

    def resetter():
        yield Write("proc_info", None, label="resetter.reset")

    patched = Program(
        "atomicity-single-var(bad-patch:sleep)",
        threads={"User": user_patched, "Resetter": resetter},
        initial={"proc_info": "query-text", "sink": 0},
    )
    return kernel, patched, "timing-based non-fix: sleep instead of synchronisation"


def bad_patch_partial_lock() -> Tuple[BugKernel, Program, str]:
    """Locking only the writer of the multi-variable kernel.

    A classic incomplete patch: the clearer's two writes become atomic,
    but the reader still loads flag and table without the lock, so the
    stale pair remains observable.
    """
    kernel = get_kernel("multivar_buffer_flag")

    def clearer_patched():
        yield Acquire("L")
        yield Write("table", None, label="clearer.clear")
        yield Write("empty", True, label="clearer.flag")
        yield Release("L")

    def reader_unpatched():
        empty = yield Read("empty", label="reader.checkflag")
        if not empty:
            entry = yield Read("table", label="reader.load")
            if entry is None:
                raise SimCrash("dereferenced cleared cache entry")
            yield Write("hits", entry)

    patched = Program(
        "multivar-buffer-flag(bad-patch:partial-lock)",
        threads={"Clearer": clearer_patched, "Reader": reader_unpatched},
        initial={"table": "entries", "empty": False, "hits": None},
        locks=["L"],
    )
    return kernel, patched, "incomplete patch: only one side of the race locked"


def bad_patches() -> List[Tuple[BugKernel, Program, str]]:
    """All modelled incorrect first patches."""
    return [bad_patch_sleep(), bad_patch_partial_lock()]
