"""Canonical state fingerprinting and outcome memoization for exploration.

Stateless exploration re-executes the program for every schedule, so the
same *simulator state* — memory contents, sync-object state, and every
thread's continuation — is reached again and again along different
interleavings of independent operations.  The subtree of schedules below
a state depends only on that state, so once one node with a given state
has been expanded, every later node with an identical state explores a
subtree whose terminal outcomes are already guaranteed to be enumerated.
:class:`StateCache` records fingerprints of expanded states; the
explorers abort a run the moment it reaches a cached state
(:class:`MemoHit`), skipping the redundant subtree.

What a fingerprint must capture is exactly "everything that determines
future behaviour":

* shared memory values (canonicalised, value-based — identity is useless
  because every run rebuilds all objects from scratch);
* mutex owners, rwlock reader sets and writers, semaphore counts,
  condition-variable wait queues **in FIFO order** (``notify_one`` wakes
  the head), and barrier arrival lists;
* per-thread lifecycle state, the pending operation **including its
  payload** (an ``AtomicUpdate`` is fingerprinted down to its closure
  cells, so two in-flight atomic blocks with different captured values
  never collide), sleep ticks, park reasons, and the generator
  continuation (bytecode offset + canonicalised locals);
* the step count, so ``max_steps`` truncation behaves identically.

Soundness contract: memoized exploration preserves the *reachable
terminal outcome set* (status + final memory) and therefore any verdict
derived from terminal states — but not schedule counts, match counts, or
rates, because pruned paths are simply never run.  Predicates that
inspect the *path* (``run.schedule``, ``run.trace``) are unsound under
memoization; see ``docs/simulator.md``.

Canonicalisation is value-based and best-effort: primitives and
containers recurse structurally, functions canonicalise to code location
plus closure/default values, anything else falls back to ``pickle`` and
finally ``repr``.  A ``repr`` containing an object address degrades to a
cache *miss* (safe, just ineffective); a custom ``repr`` that hides
behavioural state could in principle cause a false hit — the same
caveat every value-equality cache carries.

Two layers of stability, two entry points:

* :func:`state_fingerprint` keys the **in-process** memoization cache.
  Its fingerprints are deterministic within one interpreter (no ``id()``
  or hash-seed dependence — containers are sorted by value, never
  iterated in hash order), but an address-bearing ``repr`` fallback is
  deliberately kept distinct per object so unknown values degrade to
  misses, never false hits.
* :func:`program_fingerprint` keys the **persistent, cross-process**
  service result cache (:mod:`repro.service.resultcache`).  It is
  content-addressed — thread bodies canonicalise to their bytecode,
  constants, names, closure values and defaults, never to a code
  *location* — so the same program text produces the same digest in
  every interpreter run regardless of ``PYTHONHASHSEED``, and editing a
  thread body (not merely re-running or moving it) changes the digest.
  ``stable=True`` canonicalisation additionally scrubs memory addresses
  out of ``repr`` fallbacks so exotic leaf values cannot leak per-run
  identity into a persisted key.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import pickle
import re
import types
from typing import Any, Optional, Tuple

from repro.obs import metrics as obs_metrics

__all__ = [
    "MemoHit",
    "StateCache",
    "canonical_value",
    "fingerprint_digest",
    "program_fingerprint",
    "state_fingerprint",
]

_ATOMS = (int, float, complex, bool, str, bytes, type(None))

#: CPython's default ``object.__repr__`` embeds the instance address;
#: ``stable=True`` canonicalisation masks it so cross-run keys never
#: depend on where the allocator happened to place an object.
_ADDRESS_RE = re.compile(r"0x[0-9a-fA-F]+")


class MemoHit(Exception):
    """Internal control flow: the run reached an already-expanded state."""


def canonical_value(
    value: Any, _seen: Optional[set] = None, stable: bool = False
) -> Any:
    """A hashable, identity-free representation of ``value``.

    Equal values canonicalise equally across independent re-executions;
    unequal values are kept distinct wherever the structure allows.

    ``stable=True`` trades the safe-miss property of address-bearing
    ``repr`` fallbacks for cross-interpreter reproducibility (addresses
    are scrubbed, so two state-free instances of a class canonicalise
    equally).  In-process memoization uses the default; only persisted
    keys (:func:`program_fingerprint`) opt in.
    """
    if isinstance(value, _ATOMS):
        return value
    if isinstance(value, enum.Enum):
        return ("enum", type(value).__qualname__, value.name)
    if _seen is None:
        _seen = set()
    oid = id(value)
    if oid in _seen:
        return ("<cycle>",)
    _seen.add(oid)
    try:
        if isinstance(value, (list, tuple)):
            return (
                type(value).__name__,
                tuple(canonical_value(v, _seen, stable) for v in value),
            )
        if isinstance(value, (set, frozenset)):
            items = sorted(
                (canonical_value(v, _seen, stable) for v in value), key=repr
            )
            return ("set", tuple(items))
        if isinstance(value, dict):
            items = sorted(
                (
                    (canonical_value(k, _seen, stable),
                     canonical_value(v, _seen, stable))
                    for k, v in value.items()
                ),
                key=repr,
            )
            return ("dict", tuple(items))
        if isinstance(value, types.FunctionType):
            if stable:
                return _canonical_body(value, _seen)
            return _canonical_function(value, _seen)
        if isinstance(value, types.GeneratorType):
            frame = value.gi_frame
            if frame is None:
                return ("gen", value.__qualname__, "done")
            return (
                "gen",
                value.__qualname__,
                frame.f_lasti,
                canonical_value(dict(frame.f_locals), _seen, stable),
            )
        try:
            return ("pickle", pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            text = repr(value)
            if stable:
                text = _ADDRESS_RE.sub("0x", text)
            return ("repr", type(value).__qualname__, text)
    finally:
        _seen.discard(oid)


def _canonical_function(fn: types.FunctionType, _seen: set) -> Tuple:
    """Code location + captured values: distinguishes closures, merges runs."""
    code = fn.__code__
    cells = []
    for cell in fn.__closure__ or ():
        try:
            cells.append(canonical_value(cell.cell_contents, _seen))
        except ValueError:  # empty cell
            cells.append(("<empty-cell>",))
    defaults = (
        canonical_value(fn.__defaults__, _seen) if fn.__defaults__ else None
    )
    return (
        "fn",
        fn.__qualname__,
        code.co_filename,
        code.co_firstlineno,
        defaults,
        tuple(cells),
    )


def _canonical_code(code: types.CodeType, _seen: set) -> Tuple:
    """Content of a code object: bytecode, consts, names — no locations.

    File paths and line numbers are exactly what must *not* key a
    persistent cache (a checkout at a different path, or an unrelated
    edit above the function, would spuriously invalidate everything;
    an in-place edit of the body would spuriously *hit*).  Nested code
    objects (inner ``def``/``lambda``) recurse.
    """
    consts = tuple(
        _canonical_code(const, _seen)
        if isinstance(const, types.CodeType)
        else canonical_value(const, _seen, stable=True)
        for const in code.co_consts
    )
    return (
        "code",
        code.co_name,
        code.co_argcount,
        code.co_kwonlyargcount,
        code.co_flags,
        code.co_code,
        consts,
        code.co_names,
        code.co_varnames,
        code.co_freevars,
        code.co_cellvars,
    )


def _canonical_body(fn: types.FunctionType, _seen: set) -> Tuple:
    """Content-addressed function canonicalisation for persisted keys."""
    cells = []
    for cell in fn.__closure__ or ():
        try:
            cells.append(canonical_value(cell.cell_contents, _seen, stable=True))
        except ValueError:  # empty cell
            cells.append(("<empty-cell>",))
    defaults = (
        canonical_value(fn.__defaults__, _seen, stable=True)
        if fn.__defaults__ else None
    )
    return (
        "body",
        fn.__qualname__,
        _canonical_code(fn.__code__, _seen),
        defaults,
        tuple(cells),
    )


def fingerprint_digest(fingerprint: Any) -> str:
    """SHA-256 hex digest of a canonical fingerprint.

    Canonical fingerprints are nested tuples of atoms whose ``repr`` is
    deterministic, so the digest is a stable, storage-friendly key.
    """
    return hashlib.sha256(repr(fingerprint).encode("utf-8")).hexdigest()


#: Version tag baked into every program digest: bump it when the
#: canonicalisation scheme changes so persisted caches invalidate
#: wholesale instead of serving keys computed under the old scheme.
_PROGRAM_FINGERPRINT_SCHEMA = "repro.program-fingerprint/v2"


def program_fingerprint(program: Any) -> str:
    """Stable, content-addressed digest of a :class:`~repro.sim.program.Program`.

    Equal across interpreter runs and ``PYTHONHASHSEED`` values for the
    same program *content* (declarations + thread-body bytecode and
    captured values); different whenever anything that could change an
    exploration verdict changes — a thread body edit, an initial value,
    a sync-object declaration, the start set.  This is the key the
    persistent service result cache dedupes on
    (``docs/service.md`` documents the invalidation semantics).
    """
    seen: set = set()
    canonical = (
        _PROGRAM_FINGERPRINT_SCHEMA,
        program.name,
        tuple(sorted(
            (name, canonical_value(value, seen, stable=True))
            for name, value in program.initial.items()
        )),
        tuple(sorted(program.locks)),
        tuple(sorted(program.rwlocks)),
        tuple(sorted(program.semaphores.items())),
        tuple(sorted(program.conditions.items())),
        tuple(sorted(program.barriers.items())),
        tuple(sorted(getattr(program, "channels", {}).items())),
        getattr(program, "memory", "sc"),
        tuple(program.start),
        tuple(sorted(
            (name, _canonical_body(body, seen))
            for name, body in program.threads.items()
        )),
    )
    return fingerprint_digest(canonical)


def _canonical_op(op: Any) -> Any:
    """Pending-operation fingerprint including payloads (fn, value, ...)."""
    if op is None:
        return None
    return (type(op).__name__,) + tuple(
        (f.name, canonical_value(getattr(op, f.name)))
        for f in dataclasses.fields(op)
    )


def _continuation(vt: Any) -> Any:
    """Where a thread's generator is suspended: bytecode offset + locals."""
    frame = vt.frame
    if frame is None:
        return None
    locs = tuple(
        sorted(
            ((name, canonical_value(value)) for name, value in frame.f_locals.items()),
            key=lambda item: item[0],
        )
    )
    return (frame.f_lasti, locs)


def state_fingerprint(engine: Any) -> Tuple:
    """Canonical fingerprint of an engine's full pre-decision state.

    Two engines with equal fingerprints behave identically under every
    future schedule (up to the canonicalisation caveats above).
    """
    memory = engine.memory
    sync = engine.sync
    # Globally visible values only (``thread=None``); a TSO thread's
    # forwarded view is implied by the buffers component below.
    mem = tuple(
        (var, canonical_value(memory.read(var)))
        for var in sorted(memory.variables())
    )
    buffers = tuple(
        (
            owner,
            tuple(
                (var, canonical_value(value)) for var, value, _label in entries
            ),
        )
        for owner, entries in sorted(memory.buffers().items())
    )
    mutexes = tuple(
        (name, mutex.owner) for name, mutex in sorted(sync.mutexes.items())
    )
    rwlocks = tuple(
        (name, rw.writer, tuple(sorted(rw.readers)))
        for name, rw in sorted(sync.rwlocks.items())
    )
    semaphores = tuple(
        (name, sem.value) for name, sem in sorted(sync.semaphores.items())
    )
    conditions = tuple(
        (name, tuple(cond.waiters))
        for name, cond in sorted(sync.conditions.items())
    )
    barriers = tuple(
        (name, tuple(barrier.arrived))
        for name, barrier in sorted(sync.barriers.items())
    )
    channels = tuple(
        (name, tuple(canonical_value(value) for value in chan.queue))
        for name, chan in sorted(sync.channels.items())
    )
    threads = tuple(
        (
            name,
            vt.state.value,
            _canonical_op(vt.pending),
            vt.sleep_remaining,
            vt.park_reason,
            _continuation(vt),
        )
        for name, vt in sorted(engine.threads.items())
    )
    return (
        mem,
        buffers,
        mutexes,
        rwlocks,
        semaphores,
        conditions,
        barriers,
        channels,
        threads,
        engine.steps,
    )


class StateCache:
    """The set of already-expanded state fingerprints, with hit counters."""

    __slots__ = ("_seen", "hits", "lookups")

    def __init__(self) -> None:
        self._seen: set = set()
        self.hits = 0
        self.lookups = 0

    def seen(self, fingerprint: Any) -> bool:
        """Check-and-mark: ``True`` iff the fingerprint was already cached."""
        self.lookups += 1
        if fingerprint in self._seen:
            self.hits += 1
            return True
        self._seen.add(fingerprint)
        return False

    def __len__(self) -> int:
        return len(self._seen)

    def export_state(self) -> Tuple[set, int, int]:
        """Snapshot for a frontier checkpoint: ``(seen, hits, lookups)``.

        Fingerprints are nested tuples of atoms, so the snapshot pickles
        cleanly; :meth:`repro.sim.frontier.ExplorationFrontier.
        restore_cache` rebuilds an equivalent cache from it.
        """
        return (set(self._seen), self.hits, self.lookups)

    def hit_rate(self) -> float:
        """Fraction of lookups that hit the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        """One-line rendering for benchmarks and reports."""
        return (
            f"{len(self._seen)} states cached, {self.hits}/{self.lookups} "
            f"lookups hit ({self.hit_rate():.1%})"
        )

    def record_metrics(self, **labels: object) -> None:
        """Publish this cache's totals to :mod:`repro.obs.metrics`.

        Called once per exploration (not per lookup — ``seen`` is the
        hot path); a no-op while metrics are disabled.  Worker-process
        caches never reach the parent registry: their *effects* travel
        back inside ``ExplorationResult.cache_lookups``/``cache_states``
        instead (see ``docs/observability.md``).
        """
        registry = obs_metrics.active()
        if registry is None:
            return
        registry.inc("statecache.lookups", self.lookups, **labels)
        registry.inc("statecache.hits", self.hits, **labels)
        registry.set_gauge("statecache.size", len(self._seen), **labels)
