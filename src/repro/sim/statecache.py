"""Canonical state fingerprinting and outcome memoization for exploration.

Stateless exploration re-executes the program for every schedule, so the
same *simulator state* — memory contents, sync-object state, and every
thread's continuation — is reached again and again along different
interleavings of independent operations.  The subtree of schedules below
a state depends only on that state, so once one node with a given state
has been expanded, every later node with an identical state explores a
subtree whose terminal outcomes are already guaranteed to be enumerated.
:class:`StateCache` records fingerprints of expanded states; the
explorers abort a run the moment it reaches a cached state
(:class:`MemoHit`), skipping the redundant subtree.

What a fingerprint must capture is exactly "everything that determines
future behaviour":

* shared memory values (canonicalised, value-based — identity is useless
  because every run rebuilds all objects from scratch);
* mutex owners, rwlock reader sets and writers, semaphore counts,
  condition-variable wait queues **in FIFO order** (``notify_one`` wakes
  the head), and barrier arrival lists;
* per-thread lifecycle state, the pending operation **including its
  payload** (an ``AtomicUpdate`` is fingerprinted down to its closure
  cells, so two in-flight atomic blocks with different captured values
  never collide), sleep ticks, park reasons, and the generator
  continuation (bytecode offset + canonicalised locals);
* the step count, so ``max_steps`` truncation behaves identically.

Soundness contract: memoized exploration preserves the *reachable
terminal outcome set* (status + final memory) and therefore any verdict
derived from terminal states — but not schedule counts, match counts, or
rates, because pruned paths are simply never run.  Predicates that
inspect the *path* (``run.schedule``, ``run.trace``) are unsound under
memoization; see ``docs/simulator.md``.

Canonicalisation is value-based and best-effort: primitives and
containers recurse structurally, functions canonicalise to code location
plus closure/default values, anything else falls back to ``pickle`` and
finally ``repr``.  A ``repr`` containing an object address degrades to a
cache *miss* (safe, just ineffective); a custom ``repr`` that hides
behavioural state could in principle cause a false hit — the same
caveat every value-equality cache carries.
"""

from __future__ import annotations

import dataclasses
import enum
import pickle
import types
from typing import Any, Optional, Tuple

from repro.obs import metrics as obs_metrics

__all__ = ["MemoHit", "StateCache", "canonical_value", "state_fingerprint"]

_ATOMS = (int, float, complex, bool, str, bytes, type(None))


class MemoHit(Exception):
    """Internal control flow: the run reached an already-expanded state."""


def canonical_value(value: Any, _seen: Optional[set] = None) -> Any:
    """A hashable, identity-free representation of ``value``.

    Equal values canonicalise equally across independent re-executions;
    unequal values are kept distinct wherever the structure allows.
    """
    if isinstance(value, _ATOMS):
        return value
    if isinstance(value, enum.Enum):
        return ("enum", type(value).__qualname__, value.name)
    if _seen is None:
        _seen = set()
    oid = id(value)
    if oid in _seen:
        return ("<cycle>",)
    _seen.add(oid)
    try:
        if isinstance(value, (list, tuple)):
            return (
                type(value).__name__,
                tuple(canonical_value(v, _seen) for v in value),
            )
        if isinstance(value, (set, frozenset)):
            items = sorted((canonical_value(v, _seen) for v in value), key=repr)
            return ("set", tuple(items))
        if isinstance(value, dict):
            items = sorted(
                (
                    (canonical_value(k, _seen), canonical_value(v, _seen))
                    for k, v in value.items()
                ),
                key=repr,
            )
            return ("dict", tuple(items))
        if isinstance(value, types.FunctionType):
            return _canonical_function(value, _seen)
        if isinstance(value, types.GeneratorType):
            frame = value.gi_frame
            if frame is None:
                return ("gen", value.__qualname__, "done")
            return (
                "gen",
                value.__qualname__,
                frame.f_lasti,
                canonical_value(dict(frame.f_locals), _seen),
            )
        try:
            return ("pickle", pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            return ("repr", type(value).__qualname__, repr(value))
    finally:
        _seen.discard(oid)


def _canonical_function(fn: types.FunctionType, _seen: set) -> Tuple:
    """Code location + captured values: distinguishes closures, merges runs."""
    code = fn.__code__
    cells = []
    for cell in fn.__closure__ or ():
        try:
            cells.append(canonical_value(cell.cell_contents, _seen))
        except ValueError:  # empty cell
            cells.append(("<empty-cell>",))
    defaults = (
        canonical_value(fn.__defaults__, _seen) if fn.__defaults__ else None
    )
    return (
        "fn",
        fn.__qualname__,
        code.co_filename,
        code.co_firstlineno,
        defaults,
        tuple(cells),
    )


def _canonical_op(op: Any) -> Any:
    """Pending-operation fingerprint including payloads (fn, value, ...)."""
    if op is None:
        return None
    return (type(op).__name__,) + tuple(
        (f.name, canonical_value(getattr(op, f.name)))
        for f in dataclasses.fields(op)
    )


def _continuation(vt: Any) -> Any:
    """Where a thread's generator is suspended: bytecode offset + locals."""
    frame = vt.frame
    if frame is None:
        return None
    locs = tuple(
        sorted(
            ((name, canonical_value(value)) for name, value in frame.f_locals.items()),
            key=lambda item: item[0],
        )
    )
    return (frame.f_lasti, locs)


def state_fingerprint(engine: Any) -> Tuple:
    """Canonical fingerprint of an engine's full pre-decision state.

    Two engines with equal fingerprints behave identically under every
    future schedule (up to the canonicalisation caveats above).
    """
    memory = engine.memory
    sync = engine.sync
    mem = tuple(
        (var, canonical_value(memory.read(var)))
        for var in sorted(memory.variables())
    )
    mutexes = tuple(
        (name, mutex.owner) for name, mutex in sorted(sync.mutexes.items())
    )
    rwlocks = tuple(
        (name, rw.writer, tuple(sorted(rw.readers)))
        for name, rw in sorted(sync.rwlocks.items())
    )
    semaphores = tuple(
        (name, sem.value) for name, sem in sorted(sync.semaphores.items())
    )
    conditions = tuple(
        (name, tuple(cond.waiters))
        for name, cond in sorted(sync.conditions.items())
    )
    barriers = tuple(
        (name, tuple(barrier.arrived))
        for name, barrier in sorted(sync.barriers.items())
    )
    threads = tuple(
        (
            name,
            vt.state.value,
            _canonical_op(vt.pending),
            vt.sleep_remaining,
            vt.park_reason,
            _continuation(vt),
        )
        for name, vt in sorted(engine.threads.items())
    )
    return (
        mem,
        mutexes,
        rwlocks,
        semaphores,
        conditions,
        barriers,
        threads,
        engine.steps,
    )


class StateCache:
    """The set of already-expanded state fingerprints, with hit counters."""

    __slots__ = ("_seen", "hits", "lookups")

    def __init__(self) -> None:
        self._seen: set = set()
        self.hits = 0
        self.lookups = 0

    def seen(self, fingerprint: Any) -> bool:
        """Check-and-mark: ``True`` iff the fingerprint was already cached."""
        self.lookups += 1
        if fingerprint in self._seen:
            self.hits += 1
            return True
        self._seen.add(fingerprint)
        return False

    def __len__(self) -> int:
        return len(self._seen)

    def hit_rate(self) -> float:
        """Fraction of lookups that hit the cache."""
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        """One-line rendering for benchmarks and reports."""
        return (
            f"{len(self._seen)} states cached, {self.hits}/{self.lookups} "
            f"lookups hit ({self.hit_rate():.1%})"
        )

    def record_metrics(self, **labels: object) -> None:
        """Publish this cache's totals to :mod:`repro.obs.metrics`.

        Called once per exploration (not per lookup — ``seen`` is the
        hot path); a no-op while metrics are disabled.  Worker-process
        caches never reach the parent registry: their *effects* travel
        back inside ``ExplorationResult.cache_lookups``/``cache_states``
        instead (see ``docs/observability.md``).
        """
        registry = obs_metrics.active()
        if registry is None:
            return
        registry.inc("statecache.lookups", self.lookups, **labels)
        registry.inc("statecache.hits", self.hits, **labels)
        registry.set_gauge("statecache.size", len(self._seen), **labels)
