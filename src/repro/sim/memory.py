"""Pluggable memory models for simulated programs.

All shared state lives in a single :class:`MemoryModel` keyed by variable
name.  Variables must be declared up front (with their initial values) in
the :class:`~repro.sim.program.Program`; touching an undeclared variable is
a :class:`~repro.errors.ProgramError`.  Declaring variables explicitly keeps
kernels honest about *which* shared locations participate in a bug — the
study's "how many variables are involved" dimension (Findings 4-6) is
measured against exactly this set.

Two models are provided:

* :class:`SCMemory` — sequential consistency, the default everywhere.  A
  write becomes globally visible the moment it executes; this is exactly
  the historical ``SharedMemory`` behaviour (which remains as an alias).
* :class:`TSOMemory` — total store order, the x86 memory model.  Each
  thread's writes enter a private FIFO *store buffer*; the writing thread
  forwards its own newest buffered value on read, but other threads keep
  seeing the old global value until the entry *flushes*.  Flushes are
  explicit scheduler transitions: the engine exposes one pseudo-thread
  per non-empty buffer (named :data:`FLUSH_PREFIX` + owner) whose single
  step drains the oldest entry.  That makes store-visibility reorderings
  first-class schedule choices — explorable, replayable, and reducible
  like any other interleaving — instead of hidden hardware behaviour.

A ``Fence`` (and every operation with an implicit fence: all sync
operations, atomic updates, spawn/join, and channel sends/receives) is
simply *disabled* while the issuing thread's buffer is non-empty, so the
only way forward is to schedule the flush steps first.  Draining is
therefore always visible in the schedule and in DPOR's dependence
relation.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ProgramError

__all__ = [
    "FLUSH_PREFIX",
    "MemoryModel",
    "SCMemory",
    "SharedMemory",
    "TSOMemory",
    "flush_label",
    "make_memory_model",
    "MEMORY_MODELS",
]

#: Prefix of the engine's flush pseudo-thread names: scheduling
#: ``FLUSH_PREFIX + owner`` drains the oldest entry of ``owner``'s store
#: buffer.  Real thread names may not start with this character
#: (:class:`~repro.sim.program.Program` rejects them).
FLUSH_PREFIX = "~"

#: The registered model names, as spelled by ``Program(memory=...)`` and
#: the CLI ``--memory`` flag.
MEMORY_MODELS = ("sc", "tso")


def flush_label(label: Optional[str]) -> Optional[str]:
    """The derived site label of the flush step of a labelled write.

    A buffered store's eventual flush executes as its own scheduler
    transition; naming it ``FLUSH_PREFIX + label`` lets manifestation
    orders (:mod:`repro.manifest.enforce`) and directed exploration pin
    store-*visibility* points the way plain labels pin operation sites.
    Unlabelled writes flush unlabelled.
    """
    return FLUSH_PREFIX + label if label is not None else None


class MemoryModel:
    """A declared set of named shared variables under one consistency model.

    Values may be any Python object; they are deep-copied at construction
    so a program's ``initial`` mapping is never aliased by a run.  The
    ``thread`` argument on the access methods identifies the issuing
    thread; models with per-thread state (store buffers) use it, SC
    ignores it.  ``thread=None`` always means "the globally visible
    value" — that is what fingerprints and terminal-state oracles read.
    """

    #: The registry spelling of this model (``"sc"`` / ``"tso"``).
    model = "sc"

    def __init__(self, initial: Mapping[str, Any]):
        self._values: Dict[str, Any] = {
            name: copy.deepcopy(value) for name, value in initial.items()
        }

    # -- accesses ----------------------------------------------------------

    def read(self, var: str, thread: Optional[str] = None) -> Any:
        """Return the value of ``var`` as seen by ``thread``."""
        self._check(var)
        return self._values[var]

    def write(
        self,
        var: str,
        value: Any,
        thread: Optional[str] = None,
        label: Optional[str] = None,
    ) -> Any:
        """Set ``var`` to ``value``; returns the overwritten value.

        ``label`` is the originating operation's site label; models that
        buffer stores keep it so the eventual flush step can be addressed
        by label (as :data:`FLUSH_PREFIX` + label) in manifestation
        orders and directed exploration.  SC applies writes immediately,
        so it ignores it.
        """
        self._check(var)
        old = self._values[var]
        self._values[var] = value
        return old

    def update(self, var: str, fn, thread: Optional[str] = None) -> tuple:
        """Atomically replace ``var`` with ``fn(current)``.

        Returns ``(old, new)``.  Used by the ``AtomicUpdate`` operation;
        atomics act on the *global* value, which is why the engine fences
        them (their issuing thread's buffer must be empty first).
        """
        self._check(var)
        old = self._values[var]
        new = fn(old)
        self._values[var] = new
        return old, new

    # -- global views ------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A deep copy of the full variable map (for run results/oracles).

        Models with buffered stores apply them first (deterministically:
        owners in sorted order, each buffer FIFO), so a crash-terminated
        run still yields one well-defined terminal state.
        """
        return copy.deepcopy(self._values)

    def variables(self) -> Iterable[str]:
        """The declared variable names."""
        return self._values.keys()

    def __contains__(self, var: str) -> bool:
        return var in self._values

    # -- store-buffer protocol ---------------------------------------------
    #
    # SC has no buffers; these defaults let every caller (engine
    # enabledness, fingerprints, DPOR) treat both models uniformly.

    def buffers(self) -> Dict[str, Tuple[Tuple[str, Any, Optional[str]], ...]]:
        """Owner -> FIFO tuple of buffered ``(var, value, label)`` entries."""
        return {}

    def has_buffered(self, thread: Optional[str] = None) -> bool:
        """Whether any (or ``thread``'s) store buffer is non-empty."""
        return False

    def flushable(self) -> Tuple[str, ...]:
        """Owners with non-empty buffers, sorted (each is one flush step)."""
        return ()

    def peek(self, owner: str) -> Tuple[str, Any, Optional[str]]:
        """The oldest buffered ``(var, value, label)`` entry of ``owner``."""
        raise ProgramError(f"no buffered store to peek for thread {owner!r}")

    def flush_one(self, owner: str) -> Tuple[str, Any, Any, Optional[str]]:
        """Apply ``owner``'s oldest buffered store to the global state.

        Returns ``(var, value, old_global, label)``.
        """
        raise ProgramError(f"no buffered store to flush for thread {owner!r}")

    # -- helpers -----------------------------------------------------------

    def _check(self, var: str) -> None:
        if var not in self._values:
            raise ProgramError(
                f"access to undeclared shared variable {var!r}; declare it in "
                f"Program(initial={{...}}) — declared: {sorted(self._values)}"
            )


class SCMemory(MemoryModel):
    """Sequential consistency: writes are globally visible immediately.

    This is the base :class:`MemoryModel` behaviour unchanged; the class
    exists so ``Program(memory="sc")`` names it explicitly.
    """

    model = "sc"


#: Backwards-compatible alias: ``SharedMemory`` was the memory layer's
#: only class before the model became pluggable.
SharedMemory = SCMemory


class TSOMemory(MemoryModel):
    """Total store order: per-thread FIFO store buffers with forwarding.

    * ``write`` appends to the issuing thread's buffer — nothing is
      globally visible yet;
    * ``read`` forwards the thread's own *newest* buffered value for the
      variable (x86 store-to-load forwarding), falling back to the
      global value;
    * ``flush_one`` pops the *oldest* buffered entry into the global
      state — the engine schedules these as explicit pseudo-thread steps.

    ``thread=None`` accesses (fingerprints, oracles) bypass buffers and
    see only the global state; buffer contents are separately part of the
    state fingerprint via :meth:`buffers`.
    """

    model = "tso"

    def __init__(self, initial: Mapping[str, Any]):
        super().__init__(initial)
        self._buffers: Dict[str, List[Tuple[str, Any, Optional[str]]]] = {}

    def read(self, var: str, thread: Optional[str] = None) -> Any:
        self._check(var)
        if thread is not None:
            for entry_var, entry_value, _label in reversed(
                self._buffers.get(thread, [])
            ):
                if entry_var == var:
                    return entry_value
        return self._values[var]

    def write(
        self,
        var: str,
        value: Any,
        thread: Optional[str] = None,
        label: Optional[str] = None,
    ) -> Any:
        self._check(var)
        if thread is None:
            return super().write(var, value)
        old = self.read(var, thread)
        self._buffers.setdefault(thread, []).append((var, value, label))
        return old

    def snapshot(self) -> Dict[str, Any]:
        merged = dict(self._values)
        for owner in sorted(self._buffers):
            for var, value, _label in self._buffers[owner]:
                merged[var] = value
        return copy.deepcopy(merged)

    def buffers(self) -> Dict[str, Tuple[Tuple[str, Any, Optional[str]], ...]]:
        return {
            owner: tuple(entries)
            for owner, entries in self._buffers.items()
            if entries
        }

    def has_buffered(self, thread: Optional[str] = None) -> bool:
        if thread is not None:
            return bool(self._buffers.get(thread))
        return any(self._buffers.values())

    def flushable(self) -> Tuple[str, ...]:
        return tuple(sorted(o for o, entries in self._buffers.items() if entries))

    def peek(self, owner: str) -> Tuple[str, Any, Optional[str]]:
        entries = self._buffers.get(owner)
        if not entries:
            return super().peek(owner)
        return entries[0]

    def flush_one(self, owner: str) -> Tuple[str, Any, Any, Optional[str]]:
        entries = self._buffers.get(owner)
        if not entries:
            return super().flush_one(owner)
        var, value, label = entries.pop(0)
        old = self._values[var]
        self._values[var] = value
        return var, value, old, label


#: Model-name -> class, the registry ``Program(memory=...)`` dispatches on.
_MODEL_CLASSES = {"sc": SCMemory, "tso": TSOMemory}


def make_memory_model(model: str, initial: Mapping[str, Any]) -> MemoryModel:
    """Instantiate the memory model registered under ``model``."""
    if model not in _MODEL_CLASSES:
        raise ProgramError(
            f"unknown memory model {model!r}; one of {', '.join(MEMORY_MODELS)}"
        )
    return _MODEL_CLASSES[model](initial)
