"""Shared memory for simulated programs.

All shared state lives in a single :class:`SharedMemory` keyed by variable
name.  Variables must be declared up front (with their initial values) in
the :class:`~repro.sim.program.Program`; touching an undeclared variable is
a :class:`~repro.errors.ProgramError`.  Declaring variables explicitly keeps
kernels honest about *which* shared locations participate in a bug — the
study's "how many variables are involved" dimension (Findings 4-6) is
measured against exactly this set.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterable, Mapping

from repro.errors import ProgramError

__all__ = ["SharedMemory"]


class SharedMemory:
    """A declared set of named shared variables.

    Values may be any Python object; they are deep-copied at construction
    so a program's ``initial`` mapping is never aliased by a run.
    """

    def __init__(self, initial: Mapping[str, Any]):
        self._values: Dict[str, Any] = {
            name: copy.deepcopy(value) for name, value in initial.items()
        }

    def read(self, var: str) -> Any:
        """Return the current value of ``var``."""
        self._check(var)
        return self._values[var]

    def write(self, var: str, value: Any) -> Any:
        """Set ``var`` to ``value``; returns the overwritten value."""
        self._check(var)
        old = self._values[var]
        self._values[var] = value
        return old

    def update(self, var: str, fn) -> tuple:
        """Atomically replace ``var`` with ``fn(current)``.

        Returns ``(old, new)``.  Used by the ``AtomicUpdate`` operation.
        """
        self._check(var)
        old = self._values[var]
        new = fn(old)
        self._values[var] = new
        return old, new

    def snapshot(self) -> Dict[str, Any]:
        """A deep copy of the full variable map (for run results/oracles)."""
        return copy.deepcopy(self._values)

    def variables(self) -> Iterable[str]:
        """The declared variable names."""
        return self._values.keys()

    def __contains__(self, var: str) -> bool:
        return var in self._values

    def _check(self, var: str) -> None:
        if var not in self._values:
            raise ProgramError(
                f"access to undeclared shared variable {var!r}; declare it in "
                f"Program(initial={{...}}) — declared: {sorted(self._values)}"
            )
