"""The simulation engine: executes a program under a scheduling policy.

The engine owns one run's mutable state (memory, sync objects, virtual
threads) and drives the step loop:

1. compute the set of *enabled* threads (those whose pending operation can
   execute right now);
2. let the scheduler pick one (optionally pre-filtered by an
   ``enabled_filter`` hook — this is how access-order enforcement is
   layered on without touching the engine);
3. execute the chosen thread's pending operation, emit trace events, and
   advance its generator.

The run ends when every thread has finished (``OK``), a thread crashes
(``CRASH`` — modelling process death), no thread is enabled while some are
alive (``DEADLOCK`` if the wait-for graph has a cycle, ``HANG`` otherwise),
or the step budget is exhausted (``ABORTED``).

A key property: *one scheduler decision per shared-state operation*.  This
is the granularity at which the ASPLOS'08 study reasons about bugs, and it
is what CPython's real threads cannot give you — the GIL plus opaque OS
scheduling makes the interleavings of interest effectively unreachable,
which is why this substrate exists at all.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ProgramError, SchedulerError
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.sim import events as ev
from repro.sim import ops
from repro.sim.memory import FLUSH_PREFIX, flush_label
from repro.sim.program import Program
from repro.sim.scheduler import Scheduler
from repro.sim.thread import ThreadState, VirtualThread
from repro.sim.trace import Trace

__all__ = ["RunStatus", "RunResult", "Engine", "run_program"]

#: Operations that may execute while the issuing thread has unflushed
#: buffered stores.  Everything else carries an *implicit fence* under
#: TSO: synchronisation, atomics, spawn/join, and channel operations are
#: disabled until the thread's store buffer drains — which forces the
#: explicit flush pseudo-steps into the schedule first, keeping every
#: visibility transition a first-class scheduling decision.
_UNFENCED_OPS = (ops.Read, ops.Write, ops.Yield, ops.Sleep)

EnabledFilter = Callable[["Engine", List[str]], List[str]]


class RunStatus(enum.Enum):
    """Terminal status of one simulated run."""

    OK = "ok"
    CRASH = "crash"
    DEADLOCK = "deadlock"
    HANG = "hang"
    ABORTED = "aborted"


@dataclass
class RunResult:
    """Everything observable about one finished run."""

    program: str
    status: RunStatus
    trace: Trace
    memory: Dict[str, Any]
    schedule: List[str]
    steps: int
    crash_reasons: List[str] = field(default_factory=list)
    blocked: Tuple[Tuple[str, str], ...] = ()
    stop_reason: str = ""

    @property
    def ok(self) -> bool:
        """Whether the run completed without any modelled failure."""
        return self.status is RunStatus.OK

    @property
    def failed(self) -> bool:
        """Whether the run crashed, deadlocked, or hung."""
        return self.status in (RunStatus.CRASH, RunStatus.DEADLOCK, RunStatus.HANG)

    def summary(self) -> str:
        """One-line human-readable outcome."""
        extra = ""
        if self.crash_reasons:
            extra = f" ({'; '.join(self.crash_reasons)})"
        elif self.blocked:
            extra = " (" + ", ".join(f"{t} on {w}" for t, w in self.blocked) + ")"
        return f"{self.program}: {self.status.value}{extra} after {self.steps} steps"


class Engine:
    """Executes one run of ``program`` under ``scheduler``."""

    def __init__(
        self,
        program: Program,
        scheduler: Scheduler,
        max_steps: int = 20000,
        enabled_filter: Optional[EnabledFilter] = None,
        event_hook: Optional[Callable[[ev.Event], None]] = None,
    ):
        self.program = program
        self.scheduler = scheduler
        self.max_steps = max_steps
        self.enabled_filter = enabled_filter
        # Called with each event right after it is appended to the trace;
        # this is how streaming detector pipelines observe a run live.
        self._event_hook = event_hook
        self.memory = program.make_memory()
        self.sync = program.make_sync()
        self.threads: Dict[str, VirtualThread] = program.make_threads()
        self.trace = Trace()
        self.schedule: List[str] = []
        self.steps = 0
        self._seq = 0
        self._crashes: List[str] = []
        # Labels already executed, visible to enabled_filter implementations.
        self.executed_labels: List[str] = []

    # -- public API -------------------------------------------------------

    def run(self) -> RunResult:
        """Drive the program to a terminal state and return the result."""
        self.scheduler.reset()
        for name in self.program.start:
            self._start_thread(name)
        status = RunStatus.OK
        blocked: Tuple[Tuple[str, str], ...] = ()
        stop_reason = "all threads finished"
        # Observability is hoisted out of the step loop: the disabled
        # path pays one None check per step, the enabled path two
        # perf_counter calls around op execution.
        profiler = obs_profile.active()
        execute_seconds = 0.0
        while True:
            if self._crashes:
                status = RunStatus.CRASH
                stop_reason = "simulated crash terminated the process"
                break
            alive = [t for t in self.threads.values() if t.alive]
            if not alive and not self.memory.has_buffered():
                break
            enabled = self._enabled_threads()
            if not enabled:
                blocked = self._blocked_summary()
                status = self._classify_stall()
                stop_reason = "no enabled threads"
                self._emit(ev.DeadlockEvent, thread="<engine>", blocked=blocked)
                break
            if self.steps >= self.max_steps:
                status = RunStatus.ABORTED
                stop_reason = f"step budget of {self.max_steps} exhausted"
                break
            allowed = enabled
            if self.enabled_filter is not None:
                filtered = self.enabled_filter(self, list(enabled))
                if filtered:
                    allowed = filtered
            chosen = self.scheduler.choose(allowed, self.steps)
            if chosen not in allowed:
                raise SchedulerError(
                    f"scheduler chose {chosen!r}, not in enabled set "
                    f"{sorted(allowed)}"
                )
            self.schedule.append(chosen)
            self.steps += 1
            if profiler is None:
                self._execute_choice(chosen)
            else:
                started = perf_counter()
                self._execute_choice(chosen)
                execute_seconds += perf_counter() - started
        if profiler is not None and self.steps:
            profiler.add("engine.execute", execute_seconds, count=self.steps)
        registry = obs_metrics.active()
        if registry is not None:
            registry.inc(
                "engine.runs", 1,
                program=self.program.name, status=status.value,
            )
            registry.inc("engine.steps", self.steps, program=self.program.name)
        return RunResult(
            program=self.program.name,
            status=status,
            trace=self.trace,
            memory=self.memory.snapshot(),
            schedule=self.schedule,
            steps=self.steps,
            crash_reasons=list(self._crashes),
            blocked=blocked,
            stop_reason=stop_reason,
        )

    # -- enabledness ------------------------------------------------------

    def _enabled_threads(self) -> List[str]:
        enabled = [
            vt.name
            for vt in self.threads.values()
            if vt.state is ThreadState.RUNNABLE and self._op_enabled(vt)
        ]
        # One flush pseudo-thread per non-empty store buffer: scheduling
        # it makes the owner's oldest buffered store globally visible.
        for owner in self.memory.flushable():
            enabled.append(FLUSH_PREFIX + owner)
        return enabled

    def _op_enabled(self, vt: VirtualThread) -> bool:
        op = vt.pending
        if op is None:
            raise ProgramError(f"runnable thread {vt.name!r} has no pending op")
        if not isinstance(op, _UNFENCED_OPS) and self.memory.has_buffered(vt.name):
            # Implicit fence: the op waits for the thread's own buffered
            # stores to flush.  Never a deadlock — a non-empty buffer
            # always has its flush step enabled.
            return False
        if isinstance(op, ops.Acquire):
            return self.sync.mutex(op.lock).can_acquire(vt.name)
        if isinstance(op, ops._ReacquireAfterWait):
            return self.sync.mutex(op.lock).can_acquire(vt.name)
        if isinstance(op, ops.AcquireRead):
            return self.sync.rwlock(op.rwlock).can_acquire_read(vt.name)
        if isinstance(op, ops.AcquireWrite):
            return self.sync.rwlock(op.rwlock).can_acquire_write(vt.name)
        if isinstance(op, ops.SemAcquire):
            return self.sync.semaphore(op.sem).can_acquire(vt.name)
        if isinstance(op, ops.Join):
            return self._target(op.thread).done
        if isinstance(op, ops.Send):
            return self.sync.channel(op.chan).can_send(vt.name)
        if isinstance(op, ops.Recv):
            return self.sync.channel(op.chan).can_recv(vt.name)
        if isinstance(op, ops.Select):
            return any(
                self.sync.channel(c).can_recv(vt.name) for c in op.chans
            )
        return True

    def pending_op(self, name: str) -> Optional[ops.Op]:
        """The operation that scheduling ``name`` would execute.

        For a real thread this is its pending op; for a flush
        pseudo-thread (``FLUSH_PREFIX + owner``) a synthesised
        :class:`~repro.sim.ops._FlushStore` naming the owner and the
        variable at the head of its buffer.  This is the one accessor
        reduction/DPOR/directed policies should use — indexing
        ``engine.threads`` directly breaks on flush names.
        """
        if name in self.threads:
            return self.threads[name].pending
        owner = name[len(FLUSH_PREFIX):]
        var, _value, label = self.memory.peek(owner)
        return ops._FlushStore(thread=owner, var=var, label=flush_label(label))

    # -- execution --------------------------------------------------------

    def _execute_choice(self, chosen: str) -> None:
        if chosen in self.threads:
            self._execute(self.threads[chosen])
        else:
            self._execute_flush(chosen)

    def _execute_flush(self, chosen: str) -> None:
        owner = chosen[len(FLUSH_PREFIX):]
        var, value, old, label = self.memory.flush_one(owner)
        derived = flush_label(label)
        if derived is not None:
            self.executed_labels.append(derived)
        self._emit(
            ev.FlushEvent, thread=owner, label=derived, var=var, value=value,
            old=old,
        )

    def _execute(self, vt: VirtualThread) -> None:
        op = vt.pending
        assert op is not None
        label = getattr(op, "label", None)
        if label is not None:
            self.executed_labels.append(label)
        handler = self._HANDLERS[type(op)]
        handler(self, vt, op)

    def _exec_read(self, vt: VirtualThread, op: ops.Read) -> None:
        value = self.memory.read(op.var, vt.name)
        self._emit(ev.ReadEvent, thread=vt.name, label=op.label, var=op.var, value=value)
        self._advance(vt, value)

    def _exec_write(self, vt: VirtualThread, op: ops.Write) -> None:
        old = self.memory.write(op.var, op.value, vt.name, label=op.label)
        self._emit(
            ev.WriteEvent, thread=vt.name, label=op.label, var=op.var,
            value=op.value, old=old,
        )
        self._advance(vt, None)

    def _exec_atomic(self, vt: VirtualThread, op: ops.AtomicUpdate) -> None:
        # Enabledness guarantees the thread's buffer is empty here, so
        # the RMW acts directly on the globally visible value.
        old, new = self.memory.update(op.var, op.fn, vt.name)
        self._emit(
            ev.AtomicUpdateEvent, thread=vt.name, label=op.label, var=op.var,
            value=new, old=old,
        )
        self._advance(vt, new)

    def _exec_acquire(self, vt: VirtualThread, op: ops.Acquire) -> None:
        self.sync.mutex(op.lock).acquire(vt.name)
        self._emit(ev.AcquireEvent, thread=vt.name, label=op.label, lock=op.lock)
        self._advance(vt, None)

    def _exec_release(self, vt: VirtualThread, op: ops.Release) -> None:
        self.sync.mutex(op.lock).release(vt.name)
        self._emit(ev.ReleaseEvent, thread=vt.name, label=op.label, lock=op.lock)
        self._advance(vt, None)

    def _exec_try_acquire(self, vt: VirtualThread, op: ops.TryAcquire) -> None:
        success = self.sync.mutex(op.lock).try_acquire(vt.name)
        self._emit(
            ev.TryAcquireEvent, thread=vt.name, label=op.label, lock=op.lock,
            success=success,
        )
        self._advance(vt, success)

    def _exec_acquire_read(self, vt: VirtualThread, op: ops.AcquireRead) -> None:
        self.sync.rwlock(op.rwlock).acquire_read(vt.name)
        self._emit(ev.RWAcquireEvent, thread=vt.name, label=op.label, rwlock=op.rwlock, mode="r")
        self._advance(vt, None)

    def _exec_acquire_write(self, vt: VirtualThread, op: ops.AcquireWrite) -> None:
        self.sync.rwlock(op.rwlock).acquire_write(vt.name)
        self._emit(ev.RWAcquireEvent, thread=vt.name, label=op.label, rwlock=op.rwlock, mode="w")
        self._advance(vt, None)

    def _exec_release_read(self, vt: VirtualThread, op: ops.ReleaseRead) -> None:
        self.sync.rwlock(op.rwlock).release_read(vt.name)
        self._emit(ev.RWReleaseEvent, thread=vt.name, label=op.label, rwlock=op.rwlock, mode="r")
        self._advance(vt, None)

    def _exec_release_write(self, vt: VirtualThread, op: ops.ReleaseWrite) -> None:
        self.sync.rwlock(op.rwlock).release_write(vt.name)
        self._emit(ev.RWReleaseEvent, thread=vt.name, label=op.label, rwlock=op.rwlock, mode="w")
        self._advance(vt, None)

    def _exec_wait(self, vt: VirtualThread, op: ops.Wait) -> None:
        cond = self.sync.condition(op.cond)
        mutex = self.sync.mutex(cond.lock)
        if mutex.owner != vt.name:
            raise ProgramError(
                f"thread {vt.name!r} waits on {op.cond!r} without holding "
                f"its lock {cond.lock!r}"
            )
        mutex.release(vt.name)
        cond.park(vt.name)
        self._emit(
            ev.WaitParkEvent, thread=vt.name, label=op.label, cond=op.cond,
            lock=cond.lock,
        )
        vt.park(f"cond:{op.cond}")

    def _exec_notify(self, vt: VirtualThread, op: ops.Notify) -> None:
        self._do_notify(vt, op.cond, op.label, all_waiters=False)

    def _exec_notify_all(self, vt: VirtualThread, op: ops.NotifyAll) -> None:
        self._do_notify(vt, op.cond, op.label, all_waiters=True)

    def _do_notify(self, vt: VirtualThread, cond_name: str, label, all_waiters: bool) -> None:
        cond = self.sync.condition(cond_name)
        woken = cond.notify_all() if all_waiters else cond.notify_one()
        for name in woken:
            self.threads[name].unpark(
                ops._ReacquireAfterWait(cond=cond_name, lock=cond.lock)
            )
        self._emit(
            ev.NotifyEvent, thread=vt.name, label=label, cond=cond_name,
            woken=tuple(woken), all=all_waiters,
        )
        self._advance(vt, None)

    def _exec_reacquire(self, vt: VirtualThread, op: ops._ReacquireAfterWait) -> None:
        self.sync.mutex(op.lock).acquire(vt.name)
        self._emit(
            ev.WaitResumeEvent, thread=vt.name, label=op.label, cond=op.cond,
            lock=op.lock,
        )
        self._advance(vt, None)

    def _exec_sem_acquire(self, vt: VirtualThread, op: ops.SemAcquire) -> None:
        value = self.sync.semaphore(op.sem).acquire(vt.name)
        self._emit(ev.SemAcquireEvent, thread=vt.name, label=op.label, sem=op.sem, value=value)
        self._advance(vt, None)

    def _exec_sem_release(self, vt: VirtualThread, op: ops.SemRelease) -> None:
        value = self.sync.semaphore(op.sem).release(vt.name)
        self._emit(ev.SemReleaseEvent, thread=vt.name, label=op.label, sem=op.sem, value=value)
        self._advance(vt, None)

    def _exec_barrier(self, vt: VirtualThread, op: ops.BarrierWait) -> None:
        barrier = self.sync.barrier(op.barrier)
        if barrier.can_pass(vt.name):
            released = barrier.trip()
            party = tuple(released) + (vt.name,)
            self._emit(
                ev.BarrierEvent, thread=vt.name, label=op.label,
                barrier=op.barrier, released=party,
            )
            for name in released:
                waiter = self.threads[name]
                waiter.state = ThreadState.RUNNABLE
                waiter.park_reason = None
                self._advance(waiter, None)
            self._advance(vt, None)
        else:
            barrier.arrive(vt.name)
            self._emit(
                ev.BarrierEvent, thread=vt.name, label=op.label,
                barrier=op.barrier, released=(),
            )
            vt.park(f"barrier:{op.barrier}")

    def _exec_spawn(self, vt: VirtualThread, op: ops.Spawn) -> None:
        target = self._target(op.thread)
        if target.state is not ThreadState.NEW:
            raise ProgramError(
                f"thread {vt.name!r} spawned {op.thread!r} which is already "
                f"{target.state.value}"
            )
        self._emit(ev.SpawnEvent, thread=vt.name, label=op.label, target=op.thread)
        self._start_thread(op.thread)
        self._advance(vt, None)

    def _exec_join(self, vt: VirtualThread, op: ops.Join) -> None:
        self._emit(ev.JoinEvent, thread=vt.name, label=op.label, target=op.thread)
        self._advance(vt, None)

    def _exec_yield(self, vt: VirtualThread, op: ops.Yield) -> None:
        self._emit(ev.YieldEvent, thread=vt.name, label=op.label)
        self._advance(vt, None)

    def _exec_sleep(self, vt: VirtualThread, op: ops.Sleep) -> None:
        if vt.sleep_remaining == 0:
            vt.sleep_remaining = max(1, op.ticks)
        vt.sleep_remaining -= 1
        self._emit(ev.YieldEvent, thread=vt.name, label=op.label)
        if vt.sleep_remaining == 0:
            self._advance(vt, None)

    def _exec_send(self, vt: VirtualThread, op: ops.Send) -> None:
        depth = self.sync.channel(op.chan).send(vt.name, op.value)
        self._emit(
            ev.SendEvent, thread=vt.name, label=op.label, chan=op.chan,
            value=op.value, depth=depth,
        )
        self._advance(vt, None)

    def _exec_recv(self, vt: VirtualThread, op: ops.Recv) -> None:
        value = self.sync.channel(op.chan).recv(vt.name)
        self._emit(
            ev.RecvEvent, thread=vt.name, label=op.label, chan=op.chan,
            value=value,
        )
        self._advance(vt, value)

    def _exec_select(self, vt: VirtualThread, op: ops.Select) -> None:
        for chan in op.chans:
            channel = self.sync.channel(chan)
            if channel.can_recv(vt.name):
                value = channel.recv(vt.name)
                self._emit(
                    ev.SelectEvent, thread=vt.name, label=op.label, chan=chan,
                    value=value, chans=tuple(op.chans),
                )
                self._advance(vt, (chan, value))
                return
        raise ProgramError(
            f"engine bug: select on all-empty channels {op.chans!r} was "
            f"scheduled"
        )

    def _exec_fence(self, vt: VirtualThread, op: ops.Fence) -> None:
        # Enabledness guarantees the buffer already drained.
        self._emit(ev.FenceEvent, thread=vt.name, label=op.label)
        self._advance(vt, None)

    _HANDLERS = {
        ops.Read: _exec_read,
        ops.Write: _exec_write,
        ops.AtomicUpdate: _exec_atomic,
        ops.Acquire: _exec_acquire,
        ops.Release: _exec_release,
        ops.TryAcquire: _exec_try_acquire,
        ops.AcquireRead: _exec_acquire_read,
        ops.AcquireWrite: _exec_acquire_write,
        ops.ReleaseRead: _exec_release_read,
        ops.ReleaseWrite: _exec_release_write,
        ops.Wait: _exec_wait,
        ops.Notify: _exec_notify,
        ops.NotifyAll: _exec_notify_all,
        ops._ReacquireAfterWait: _exec_reacquire,
        ops.SemAcquire: _exec_sem_acquire,
        ops.SemRelease: _exec_sem_release,
        ops.BarrierWait: _exec_barrier,
        ops.Spawn: _exec_spawn,
        ops.Join: _exec_join,
        ops.Yield: _exec_yield,
        ops.Sleep: _exec_sleep,
        ops.Send: _exec_send,
        ops.Recv: _exec_recv,
        ops.Select: _exec_select,
        ops.Fence: _exec_fence,
    }

    # -- thread lifecycle ---------------------------------------------------

    def _start_thread(self, name: str) -> None:
        vt = self._target(name)
        vt.start()
        self._emit(ev.ThreadStartEvent, thread=name)
        self._note_termination(vt)

    def _advance(self, vt: VirtualThread, result: Any) -> None:
        vt.advance(result)
        self._note_termination(vt)

    def _note_termination(self, vt: VirtualThread) -> None:
        if vt.state is ThreadState.FINISHED:
            self._emit(ev.ThreadFinishEvent, thread=vt.name)
        elif vt.state is ThreadState.CRASHED:
            reason = vt.crash_reason or "crash"
            self._emit(ev.ThreadCrashEvent, thread=vt.name, reason=reason)
            self._crashes.append(f"{vt.name}: {reason}")

    def _target(self, name: str) -> VirtualThread:
        if name not in self.threads:
            raise ProgramError(
                f"reference to undeclared thread {name!r}; declared: "
                f"{sorted(self.threads)}"
            )
        return self.threads[name]

    # -- stall analysis -------------------------------------------------------

    def _blocked_summary(self) -> Tuple[Tuple[str, str], ...]:
        out = []
        for vt in self.threads.values():
            if vt.state is ThreadState.PARKED:
                out.append((vt.name, vt.park_reason or "parked"))
            elif vt.state is ThreadState.RUNNABLE:
                out.append((vt.name, self._wait_description(vt)))
        return tuple(out)

    def _wait_description(self, vt: VirtualThread) -> str:
        op = vt.pending
        if isinstance(op, (ops.Acquire, ops._ReacquireAfterWait)):
            lock = op.lock
            owner = self.sync.mutex(lock).owner
            return f"lock:{lock}(held by {owner})"
        if isinstance(op, (ops.AcquireRead, ops.AcquireWrite)):
            return f"rwlock:{op.rwlock}"
        if isinstance(op, ops.SemAcquire):
            return f"sem:{op.sem}"
        if isinstance(op, ops.Join):
            return f"join:{op.thread}"
        if isinstance(op, ops.Send):
            return f"chan:{op.chan}(full)"
        if isinstance(op, ops.Recv):
            return f"chan:{op.chan}(empty)"
        if isinstance(op, ops.Select):
            return f"chan:{'|'.join(op.chans)}(all empty)"
        return f"op:{op.describe() if op else '?'}"

    def _classify_stall(self) -> RunStatus:
        """DEADLOCK when the thread wait-for graph has a cycle, else HANG."""
        edges: Dict[str, List[str]] = {}
        for vt in self.threads.values():
            if vt.state is not ThreadState.RUNNABLE:
                continue
            op = vt.pending
            holders: List[str] = []
            if isinstance(op, (ops.Acquire, ops._ReacquireAfterWait)):
                owner = self.sync.mutex(op.lock).owner
                if owner is not None:
                    holders = [owner]
            elif isinstance(op, ops.AcquireRead):
                rw = self.sync.rwlock(op.rwlock)
                holders = [rw.writer] if rw.writer else []
            elif isinstance(op, ops.AcquireWrite):
                rw = self.sync.rwlock(op.rwlock)
                # An upgrader's own read hold does not block it; only the
                # *other* readers are wait-for edges.
                holders = ([rw.writer] if rw.writer else []) + sorted(
                    r for r in rw.readers if r != vt.name
                )
            elif isinstance(op, ops.Join):
                target = self._target(op.thread)
                if target.alive:
                    holders = [op.thread]
            if holders:
                edges[vt.name] = holders
        return RunStatus.DEADLOCK if _has_cycle(edges) else RunStatus.HANG

    # -- event emission ---------------------------------------------------------

    def _emit(self, klass, thread: str, label: Optional[str] = None, **payload) -> None:
        event = klass(seq=self._seq, thread=thread, label=label, **payload)
        self._seq += 1
        self.trace.append(event)
        if self._event_hook is not None:
            self._event_hook(event)


def _has_cycle(edges: Dict[str, List[str]]) -> bool:
    """Cycle detection over a small adjacency map (self-loops count)."""
    visiting: set = set()
    done: set = set()

    def visit(node: str) -> bool:
        if node in done:
            return False
        if node in visiting:
            return True
        visiting.add(node)
        for nxt in edges.get(node, ()):
            if visit(nxt):
                return True
        visiting.discard(node)
        done.add(node)
        return False

    return any(visit(n) for n in list(edges))


def run_program(
    program: Program,
    scheduler: Scheduler,
    max_steps: int = 20000,
    enabled_filter: Optional[EnabledFilter] = None,
) -> RunResult:
    """Convenience wrapper: build an :class:`Engine` and run it once."""
    return Engine(
        program, scheduler, max_steps=max_steps, enabled_filter=enabled_filter
    ).run()
