"""Sharded parallel interleaving exploration.

:class:`ParallelExplorer` splits the schedule tree of
:class:`~repro.sim.explorer.Explorer` by *prefix*: a short serial phase
expands the DFS stack until it holds enough pending prefixes
(``workers * shard_factor``, for load balancing), then each leftover
prefix becomes an independent shard explored to completion in a worker
process.  Shards share nothing at runtime, so the pure-python engine
escapes the GIL via ``multiprocessing`` with the ``fork`` start method —
the program's thread bodies are generator closures, which ``fork``
inherits for free where pickling would fail.  Only schedule prefixes
travel to the workers and only :class:`ExplorationResult`\\ s travel back.

**Merge semantics.**  The DFS stack is LIFO, so the serial exploration
order is exactly: the root-phase runs, then the subtree of the topmost
leftover prefix, then the next one down, and so on.  Shards are merged in
that order, which makes a *complete* parallel exploration reproduce the
serial result exactly — same outcome tallies, same match count, same
``matching`` list, same first match.  With ``stop_on_first`` the merge
discards every shard after the first matching one, again reproducing the
serial result (the later shards' work is wasted, not wrong).  The one
intentional deviation: the ``max_schedules`` budget is enforced
*per shard* (each shard gets the budget left after the root phase), so a
budget-exhausted parallel search may run more total schedules than a
serial one — but deterministically so for a fixed worker count.

``memoize=True`` composes: each shard prunes revisited states with its
own :class:`~repro.sim.statecache.StateCache`.  Caches are per-process,
so states revisited *across* shards are re-explored (lost hits, never
false ones); the outcome-set guarantee is unaffected.

Falls back to in-process sequential shard execution when ``fork`` is
unavailable (non-POSIX platforms), ``workers=1``, or the machine has a
single CPU (forking CPU-bound work onto one core is pure overhead) —
same shards, same results, same merge path, no pool.  ``pool="fork"``
forces the pool regardless (raising :class:`ValueError` at construction
if the ``fork`` start method is unavailable, rather than silently
degrading) and ``pool="none"`` forbids it.
"""

from __future__ import annotations

import multiprocessing
import os
from time import perf_counter
from typing import Any, Dict, List, Optional

from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.sim.engine import EnabledFilter
from repro.sim.explorer import (
    ExplorationResult,
    Explorer,
    Predicate,
    Seed,
    _merge_pipeline_stats,
    _record_exploration,
    _record_pipeline_stats,
)
from repro.sim.program import Program

__all__ = ["ParallelExplorer"]

#: Worker-process state installed by the pool initializer (inherited via
#: fork, so unpicklable programs/predicates survive the crossing).
_WORKER: Dict[str, Any] = {}


def _init_worker(program: Program, predicate: Optional[Predicate], options: Dict[str, Any]) -> None:
    _WORKER["program"] = program
    _WORKER["predicate"] = predicate
    _WORKER["options"] = options


def _explore_shard(seed: Seed) -> ExplorationResult:
    """Explore one prefix subtree to completion; runs inside a worker."""
    options = _WORKER["options"]
    factory = options["pipeline_factory"]
    explorer = Explorer(
        _WORKER["program"],
        max_schedules=options["max_schedules"],
        max_steps=options["max_steps"],
        preemption_bound=options["preemption_bound"],
        enabled_filter=options["enabled_filter"],
        keep_matches=options["keep_matches"],
        memoize=options["memoize"],
        # Fresh pipeline per shard: the seed's snapshot re-seeds its
        # analysis state, and its reports travel back on the result.
        pipeline=factory() if factory is not None else None,
        targets=options["targets"],
    )
    prefix, paid, snapshot = seed
    start = perf_counter()
    result, _ = explorer._search(
        [(list(prefix), paid, snapshot)],
        _WORKER["predicate"],
        options["stop_on_first"],
        None,
    )
    result.wall_seconds = perf_counter() - start
    return result


class ParallelExplorer:
    """Work-sharded exploration across a process pool.

    Drop-in for :class:`Explorer`: same constructor bounds, same
    ``explore`` signature, same :class:`ExplorationResult`.  ``workers``
    defaults to the CPU count; ``shard_factor`` controls how many shards
    are cut per worker (more shards → better load balancing, more
    dispatch overhead).
    """

    def __init__(
        self,
        program: Program,
        workers: Optional[int] = None,
        max_schedules: int = 20000,
        max_steps: int = 5000,
        preemption_bound: Optional[int] = None,
        enabled_filter: Optional[EnabledFilter] = None,
        keep_matches: int = 16,
        memoize: bool = False,
        shard_factor: int = 4,
        pool: str = "auto",
        pipeline_factory: Optional[Any] = None,
        targets: Optional[List[Any]] = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if pool not in ("auto", "fork", "none"):
            raise ValueError(f"pool must be 'auto', 'fork', or 'none', got {pool!r}")
        if pool == "fork" and "fork" not in multiprocessing.get_all_start_methods():
            raise ValueError(
                "pool='fork' requested but the 'fork' start method is not "
                "available on this platform; use pool='auto' to fall back "
                "to in-process execution"
            )
        self.program = program
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.max_schedules = max_schedules
        self.max_steps = max_steps
        self.preemption_bound = preemption_bound
        self.enabled_filter = enabled_filter
        self.keep_matches = keep_matches
        self.memoize = memoize
        self.shard_factor = shard_factor
        self.pool = pool
        #: Zero-argument callable building a fresh streaming detector
        #: pipeline; called once for the root phase and once per shard
        #: (pipelines are stateful, so shards cannot share an instance).
        self.pipeline_factory = pipeline_factory
        #: Target pairs for race-directed exploration, shared by the
        #: root phase and every shard (pairs are immutable value objects,
        #: so one list crosses the fork safely).  Directed ordering only
        #: permutes each node's sibling pushes, so shard *contents* are
        #: unchanged — shard order on the stack is what shifts.
        self.targets = list(targets) if targets else None

    def explore(
        self,
        predicate: Optional[Predicate] = None,
        stop_on_first: bool = False,
    ) -> ExplorationResult:
        """Run the sharded search; result fields as in :class:`Explorer`."""
        start = perf_counter()
        factory = self.pipeline_factory
        serial = Explorer(
            self.program,
            max_schedules=self.max_schedules,
            max_steps=self.max_steps,
            preemption_bound=self.preemption_bound,
            enabled_filter=self.enabled_filter,
            keep_matches=self.keep_matches,
            memoize=self.memoize,
            pipeline=factory() if factory is not None else None,
            targets=self.targets,
        )
        target = max(2, self.workers * self.shard_factor)
        root, frontier = serial._search(
            [([], 0, None)], predicate, stop_on_first, target
        )
        # Root phase finished the whole tree, exhausted the budget, or
        # matched with stop_on_first: nothing left to shard.
        if not frontier or not root.complete or (stop_on_first and root.found):
            root.wall_seconds = perf_counter() - start
            self._record(root, [])
            return root
        # Top of the LIFO stack first = serial DFS subtree order.
        shards: List[Seed] = list(reversed(frontier))
        attempts_root = root.schedules_run + root.cache_hits
        shard_budget = max(1, self.max_schedules - attempts_root)
        with obs_profile.span("parallel.dispatch"):
            shard_results = self._run_shards(
                shards, predicate, stop_on_first, shard_budget
            )
        with obs_profile.span("parallel.merge"):
            merged = _merge(
                root, shard_results, self.keep_matches, stop_on_first,
                len(shards),
            )
        merged.wall_seconds = perf_counter() - start
        self._record(merged, shard_results)
        return merged

    # -- internals -----------------------------------------------------------

    def _record(
        self,
        merged: ExplorationResult,
        shard_results: List[ExplorationResult],
    ) -> None:
        """Publish the merged search plus per-shard balance metrics.

        Worker processes cannot reach the parent registry, so every
        per-shard number is taken from the ``ExplorationResult`` the
        shard sent back — including its state-cache totals, which is
        why the parallel path publishes ``statecache.*`` itself instead
        of via :meth:`StateCache.record_metrics`.
        """
        registry = obs_metrics.active()
        if registry is not None:
            program = self.program.name
            registry.inc("parallel.explorations", 1, program=program)
            registry.inc(
                "parallel.shards_run", len(shard_results), program=program
            )
            for index, shard in enumerate(shard_results):
                registry.set_gauge(
                    "parallel.shard_schedules", shard.schedules_run,
                    program=program, shard=index,
                )
                registry.set_gauge(
                    "parallel.shard_wall_seconds", shard.wall_seconds,
                    program=program, shard=index,
                )
                registry.observe(
                    "parallel.shard_schedules_balance", shard.schedules_run,
                    program=program,
                )
                registry.observe(
                    "parallel.shard_wall_seconds_balance", shard.wall_seconds,
                    program=program,
                )
            if self.memoize:
                registry.inc(
                    "statecache.lookups", merged.cache_lookups, program=program
                )
                registry.inc(
                    "statecache.hits", merged.cache_hits, program=program
                )
                registry.set_gauge(
                    "statecache.size", merged.cache_states, program=program
                )
        if merged.pipeline_stats is not None:
            _record_pipeline_stats(merged.pipeline_stats, self.program.name)
        _record_exploration(merged, "parallel")

    def _run_shards(
        self,
        shards: List[Seed],
        predicate: Optional[Predicate],
        stop_on_first: bool,
        shard_budget: int,
    ) -> List[ExplorationResult]:
        options = {
            "max_schedules": shard_budget,
            "max_steps": self.max_steps,
            "preemption_bound": self.preemption_bound,
            "enabled_filter": self.enabled_filter,
            "keep_matches": self.keep_matches,
            "memoize": self.memoize,
            "stop_on_first": stop_on_first,
            "pipeline_factory": self.pipeline_factory,
            "targets": self.targets,
        }
        if self._use_pool():
            context = multiprocessing.get_context("fork")
            with context.Pool(
                processes=min(self.workers, len(shards)),
                initializer=_init_worker,
                initargs=(self.program, predicate, options),
            ) as pool:
                return pool.map(_explore_shard, shards)
        # In-process fallback: identical results, no pool.
        _init_worker(self.program, predicate, options)
        try:
            return [_explore_shard(seed) for seed in shards]
        finally:
            _WORKER.clear()

    def _use_pool(self) -> bool:
        # pool="fork" availability is validated in __init__, so forcing
        # here cannot silently degrade.
        if self.pool == "fork":
            return True
        if self.pool == "none" or self.workers <= 1:
            return False
        if "fork" not in multiprocessing.get_all_start_methods():
            return False
        # auto: a pool only pays off with more than one core to run on.
        return (os.cpu_count() or 1) > 1


def _merge(
    merged: ExplorationResult,
    shard_results: List[ExplorationResult],
    keep_matches: int,
    stop_on_first: bool,
    shards: int,
) -> ExplorationResult:
    """Fold shard results into the root result, in serial DFS order."""
    merged.shards = shards
    for shard in shard_results:
        merged.schedules_run += shard.schedules_run
        merged.cache_hits += shard.cache_hits
        merged.states_expanded += shard.states_expanded
        merged.preemptions_spent += shard.preemptions_spent
        merged.cache_lookups += shard.cache_lookups
        merged.cache_states += shard.cache_states
        merged.statuses.update(shard.statuses)
        for outcome, count in shard.outcomes.items():
            merged.outcomes[outcome] = merged.outcomes.get(outcome, 0) + count
        merged.match_count += shard.match_count
        for run in shard.matching:
            if len(merged.matching) >= keep_matches:
                break
            merged.matching.append(run)
        if merged.first_match_schedule is None and shard.first_match_schedule:
            merged.first_match_schedule = list(shard.first_match_schedule)
        merged.complete = merged.complete and shard.complete
        if shard.detector_reports:
            # Prefix findings already live in the root result's reports
            # (reports are append-only along the serial root phase); the
            # shard contributes the findings of its subtree.  ``add``
            # de-duplicates, so overlap is harmless.
            if merged.detector_reports is None:
                merged.detector_reports = dict(shard.detector_reports)
            else:
                for name, report in shard.detector_reports.items():
                    target = merged.detector_reports.get(name)
                    if target is None:
                        merged.detector_reports[name] = report
                    else:
                        for finding in report:
                            target.add(finding)
        merged.pipeline_stats = _merge_pipeline_stats(
            merged.pipeline_stats, shard.pipeline_stats
        )
        if stop_on_first and shard.match_count:
            # Serial search would have stopped inside this shard; the
            # remaining shards' results are redundant work, not part of
            # the answer.
            merged.complete = False
            break
    return merged
