"""Parallel interleaving exploration: work-stealing over schedule prefixes.

:class:`ParallelExplorer` splits the schedule tree of
:class:`~repro.sim.explorer.Explorer` by *prefix*: a short serial phase
expands the DFS stack until it holds enough pending prefixes
(``workers * shard_factor``), then the leftover prefixes become work
items explored in worker processes.  Two strategies distribute them:

* ``strategy="steal"`` (the default) — items sit in a shared queue;
  workers pull the next item when free, and a busy worker *donates* the
  serially-last half of its DFS stack back to the queue whenever
  another worker is hungry.  Subtree sizes in this codebase vary by
  orders of magnitude (``multivar_torn_invariant`` shards span 1 to
  hundreds of schedules), so static assignment strands all but one
  worker; stealing keeps them busy to the end.  The ``donation``
  policy tunes the donor side: ``"auto"`` (default) donates only when
  workers actually run concurrently, one donation event feeds every
  hungry worker with its own chunk, and the shared hunger/queue state
  is consulted only every ``_DONATE_TICK`` schedules so the per-run
  hook stays a counter decrement.
* ``strategy="shard"`` — the legacy static split: each leftover prefix
  is one shard, mapped over a process pool.  Kept for comparison
  benchmarks and as the semantics baseline.

Workers share nothing but the queues, so the pure-python engine escapes
the GIL via ``multiprocessing`` with the ``fork`` start method — the
program's thread bodies are generator closures, which ``fork`` inherits
for free where pickling would fail.  Only schedule prefixes travel to
the workers and only :class:`ExplorationResult`\\ s travel back.

**Merge semantics.**  The DFS stack is LIFO, so the serial exploration
order is exactly: the root-phase runs, then the subtree of the topmost
leftover prefix, then the next one down, and so on.  Donations preserve
this order: a worker donates from the *bottom* of its stack — subtrees
that serially follow everything it will still run itself — and each
donated item's sort key extends its donor's, so sorting items by key
reconstructs serial DFS order no matter which worker ran what, or when.
A *complete* parallel exploration therefore reproduces the serial
result exactly — same outcome tallies, same match count, same
``matching`` list, same first match, same
``schedules_to_first_finding``.  With ``stop_on_first`` the merge
discards every item after (in serial order) the first matching one,
again reproducing the serial result; the later items' work is wasted,
not wrong.  The one intentional deviation: the ``max_schedules`` budget
is enforced *per item* (each gets the budget left after the root
phase), so a budget-exhausted parallel search may run more total
schedules than a serial one — deterministically so for a fixed worker
count under ``strategy="shard"``, but timing-dependently under
``strategy="steal"``, where the item boundaries themselves depend on
when workers went hungry.  Complete searches are deterministic under
both.

``memoize=True`` composes: each item prunes revisited states with its
own :class:`~repro.sim.statecache.StateCache`.  Caches are per-process,
so states revisited *across* items are re-explored (lost hits, never
false ones); the outcome-set guarantee is unaffected.

Falls back to in-process sequential execution when ``fork`` is
unavailable (non-POSIX platforms), ``workers=1``, or the machine has a
single CPU (forking CPU-bound work onto one core is pure overhead) —
same items, same results, same merge path, no pool and no stealing
(there is never a hungry worker to steal for).  ``pool="fork"`` forces
worker processes regardless (raising :class:`ValueError` at
construction if the ``fork`` start method is unavailable, rather than
silently degrading) and ``pool="none"`` forbids them.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_mod
from time import perf_counter
from typing import Any, Dict, List, Optional, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.sim.engine import EnabledFilter
from repro.sim.frontier import reject_slicing
from repro.sim.explorer import (
    ExplorationResult,
    Explorer,
    Predicate,
    Seed,
    _merge_pipeline_stats,
    _record_exploration,
    _record_pipeline_stats,
)
from repro.sim.program import Program

__all__ = ["ParallelExplorer"]

#: Serial-order sort key of a work item: root items are ``(i,)`` in
#: stack order; an item donated by the item with key ``K`` gets
#: ``K + (-event,)`` where ``event`` counts the donor's donation
#: batches.  Keys sort lexicographically into serial DFS order: a donor
#: precedes all its donations (prefix sorts first) and later batches
#: precede earlier ones — donations always come off the serially-last
#: bottom of the stack, so what is donated later lies earlier in serial
#: order.  Within a batch the prefixes keep their stack order and stay
#: one item, so the batch is a contiguous serial range with one result.
ItemKey = Tuple[int, ...]

#: Worker-process state installed by the pool initializer (inherited via
#: fork, so unpicklable programs/predicates survive the crossing).
_WORKER: Dict[str, Any] = {}

#: How long (seconds) the parent waits on the result queue before
#: checking for dead workers instead of blocking forever.
_RESULT_POLL_SECONDS = 5.0

#: Donation damping: never shrink the local stack below this many
#: prefixes, and run this many schedules between donations so the
#: previous batch can be consumed before granularity drops further.
_DONATE_MIN_STACK = 4
_DONATE_COOLDOWN = 16

#: How many schedules a busy worker runs between *looks* at the shared
#: hunger/queue state.  The steal hook fires after every schedule, so
#: without this gate every iteration pays two cross-process reads
#: (``hungry`` and ``work.empty()``) that almost never lead to a
#: donation — profiling the spans shows the checks, not the donations,
#: are where steal mode loses wall time to shard mode.  Worst case the
#: gate delays a donation by ``_DONATE_TICK - 1`` schedules.
_DONATE_TICK = 8


def _init_worker(program: Program, predicate: Optional[Predicate], options: Dict[str, Any]) -> None:
    _WORKER["program"] = program
    _WORKER["predicate"] = predicate
    _WORKER["options"] = options


def _build_explorer() -> Explorer:
    options = _WORKER["options"]
    factory = options["pipeline_factory"]
    return Explorer(
        _WORKER["program"],
        max_schedules=options["max_schedules"],
        max_steps=options["max_steps"],
        preemption_bound=options["preemption_bound"],
        enabled_filter=options["enabled_filter"],
        keep_matches=options["keep_matches"],
        memoize=options["memoize"],
        # Fresh pipeline per item: the seed's snapshot re-seeds its
        # analysis state, and its reports travel back on the result.
        pipeline=factory() if factory is not None else None,
        targets=options["targets"],
    )


def _explore_shard(seed: Seed) -> ExplorationResult:
    """Explore one prefix subtree to completion; legacy static shard."""
    explorer = _build_explorer()
    prefix, paid, snapshot = seed
    start = perf_counter()
    result, _ = explorer._search(
        [(list(prefix), paid, snapshot)],
        _WORKER["predicate"],
        _WORKER["options"]["stop_on_first"],
        None,
    )
    result.wall_seconds = perf_counter() - start
    return result


def _explore_item(
    key: ItemKey,
    seeds: List[Seed],
    work: Any,
    hungry: Any,
    created: Any,
) -> ExplorationResult:
    """Explore one item, donating stack bottoms to hungry workers."""
    explorer = _build_explorer()
    donations = 0
    donated = 0
    donate_seconds = 0.0
    # The hook runs after *every* schedule; keep its common path to a
    # local counter decrement.  Shared state is only consulted every
    # ``_DONATE_TICK`` schedules, and the hunger count is read through
    # the raw shared object — skipping the Value lock is safe because
    # the read is already heuristic (see below).
    countdown = _DONATE_TICK
    hungry_raw = hungry.get_obj()

    def steal_hook(stack: List[Seed]) -> None:
        nonlocal donations, donated, donate_seconds, countdown
        countdown -= 1
        if countdown > 0:
            return
        countdown = _DONATE_TICK
        # Damping: a donation must be worth its queue crossing, so keep
        # at least ``_DONATE_MIN_STACK`` prefixes and let the last
        # donation be consumed before making another.  Without this an
        # oversubscribed machine (more workers than cores) shreds the
        # stack into single prefixes — the hungry workers hold stolen
        # items but never get CPU to clear their hunger.
        # ``hungry`` and ``empty`` are heuristic reads (racy by
        # design): a false positive donates a batch that queues
        # briefly, a false negative delays donation one tick.
        # Correctness never depends on them — only load balance does.
        # Gating on an empty queue keeps the granularity adaptive: no
        # donation while undistributed work already exists.
        if len(stack) < _DONATE_MIN_STACK:
            return
        eaters = hungry_raw.value
        if eaters <= 0 or not work.empty():
            return
        begin = perf_counter()
        # The stack bottom is the serially-last subtree.  One donation
        # event cuts the bottom half into up to ``eaters`` chunks — one
        # per hungry worker — so a single look at the shared state can
        # feed the whole idle pool instead of one worker per cooldown.
        # Each chunk travels as *one* item keeping its stack order, so
        # the receiving worker explores it top-first — the same
        # contiguous serial range the donor would have — and may
        # re-split it.
        take = len(stack) // 2
        chunks = max(1, min(eaters, take // 2))
        size = take // chunks
        batches = []
        # Chunks are emitted bottom-first (serially last first); later
        # emissions get more-negative keys, matching the invariant that
        # later-donated work sorts serially earlier.
        for cut in range(chunks):
            low = cut * size
            high = take if cut == chunks - 1 else low + size
            batches.append(stack[low:high])
        del stack[:take]
        # Count the items *before* they are queued so the parent's "all
        # created items have reported" termination check can never
        # observe a result for an uncounted item.
        with created.get_lock():
            created.value += len(batches)
        for batch in batches:
            donations += 1
            work.put((key + (-donations,), batch))
            donated += len(batch)
        countdown = _DONATE_COOLDOWN
        donate_seconds += perf_counter() - begin

    options = _WORKER["options"]
    stack = [
        (list(prefix), paid, snapshot) for prefix, paid, snapshot in seeds
    ]
    start = perf_counter()
    result, _ = explorer._search(
        stack,
        _WORKER["predicate"],
        options["stop_on_first"],
        None,
        steal_hook=steal_hook if options.get("donate", True) else None,
    )
    result.wall_seconds = perf_counter() - start
    result.steal_donations = donations
    result.stolen_prefixes = donated
    result.donate_seconds = donate_seconds
    return result


def _steal_worker(
    work: Any,
    results: Any,
    hungry: Any,
    created: Any,
    program: Program,
    predicate: Optional[Predicate],
    options: Dict[str, Any],
) -> None:
    """Worker loop: pull items until the ``None`` sentinel arrives."""
    _init_worker(program, predicate, options)
    while True:
        waited_from = perf_counter()
        try:
            # Fast path: if work is already queued, take it without
            # advertising hunger — this skips two lock round-trips per
            # item and keeps busy donors from seeing phantom eaters.
            item = work.get_nowait()
        except queue_mod.Empty:
            with hungry.get_lock():
                hungry.value += 1
            try:
                item = work.get()
            finally:
                with hungry.get_lock():
                    hungry.value -= 1
        if item is None:
            break
        key, seeds = item
        result = _explore_item(key, seeds, work, hungry, created)
        # Idle time spent waiting for *this* item; the final wait for
        # the sentinel is shutdown, not load imbalance, and is excluded.
        result.idle_seconds = perf_counter() - waited_from - result.wall_seconds
        results.put((key, result))


class ParallelExplorer:
    """Work-stealing exploration across a process pool.

    Drop-in for :class:`Explorer`: same constructor bounds, same
    ``explore`` signature, same :class:`ExplorationResult`.  ``workers``
    defaults to the CPU count; ``shard_factor`` controls how many
    initial items are cut per worker; ``strategy`` selects work-stealing
    (``"steal"``, default) or the legacy static prefix sharding
    (``"shard"``).
    """

    def __init__(
        self,
        program: Program,
        workers: Optional[int] = None,
        max_schedules: int = 20000,
        max_steps: int = 5000,
        preemption_bound: Optional[int] = None,
        enabled_filter: Optional[EnabledFilter] = None,
        keep_matches: int = 16,
        memoize: bool = False,
        shard_factor: int = 4,
        pool: str = "auto",
        strategy: str = "steal",
        donation: str = "auto",
        pipeline_factory: Optional[Any] = None,
        targets: Optional[List[Any]] = None,
    ):
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if pool not in ("auto", "fork", "none"):
            raise ValueError(f"pool must be 'auto', 'fork', or 'none', got {pool!r}")
        if strategy not in ("steal", "shard"):
            raise ValueError(
                f"strategy must be 'steal' or 'shard', got {strategy!r}"
            )
        if donation not in ("auto", "always", "never"):
            raise ValueError(
                f"donation must be 'auto', 'always', or 'never', "
                f"got {donation!r}"
            )
        if pool == "fork" and "fork" not in multiprocessing.get_all_start_methods():
            raise ValueError(
                "pool='fork' requested but the 'fork' start method is not "
                "available on this platform; use pool='auto' to fall back "
                "to in-process execution"
            )
        self.program = program
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        self.max_schedules = max_schedules
        self.max_steps = max_steps
        self.preemption_bound = preemption_bound
        self.enabled_filter = enabled_filter
        self.keep_matches = keep_matches
        self.memoize = memoize
        self.shard_factor = shard_factor
        self.pool = pool
        self.strategy = strategy
        #: Stack-donation policy under ``strategy="steal"``: ``"auto"``
        #: donates only when the machine actually runs workers
        #: concurrently (more than one CPU — on a single core the donor
        #: and the eater time-share, so splitting work buys nothing and
        #: the queue crossings are pure overhead), ``"always"`` forces
        #: donation regardless (benchmarks use this to exercise the
        #: path), ``"never"`` disables it (items stay indivisible).
        self.donation = donation
        #: Zero-argument callable building a fresh streaming detector
        #: pipeline; called once for the root phase and once per item
        #: (pipelines are stateful, so items cannot share an instance).
        self.pipeline_factory = pipeline_factory
        #: Target pairs for race-directed exploration, shared by the
        #: root phase and every item (pairs are immutable value objects,
        #: so one list crosses the fork safely).  Directed ordering only
        #: permutes each node's sibling pushes, so item *contents* are
        #: unchanged — item order on the stack is what shifts.
        self.targets = list(targets) if targets else None

    def explore(
        self,
        predicate: Optional[Predicate] = None,
        stop_on_first: bool = False,
        *,
        slice_budget: Optional[int] = None,
        frontier: Optional[Any] = None,
    ) -> ExplorationResult:
        """Run the parallel search; result fields as in :class:`Explorer`.

        Refuses ``slice_budget``/``frontier`` (``ValueError``): the
        in-flight worker stacks are not serially meaningful mid-round.
        Slice a serial search instead, or run the parallel one to
        completion.
        """
        reject_slicing(
            "workers > 1",
            "the in-flight worker stacks of a sharded/work-stealing search "
            "are not serially meaningful mid-round; slice the serial "
            "explorer or run the parallel search to completion",
            slice_budget, frontier,
        )
        start = perf_counter()
        factory = self.pipeline_factory
        serial = Explorer(
            self.program,
            max_schedules=self.max_schedules,
            max_steps=self.max_steps,
            preemption_bound=self.preemption_bound,
            enabled_filter=self.enabled_filter,
            keep_matches=self.keep_matches,
            memoize=self.memoize,
            pipeline=factory() if factory is not None else None,
            targets=self.targets,
        )
        target = max(2, self.workers * self.shard_factor)
        root, frontier = serial._search(
            [([], 0, None)], predicate, stop_on_first, target
        )
        # Root phase finished the whole tree, exhausted the budget, or
        # matched with stop_on_first: nothing left to distribute.
        if not frontier or not root.complete or (stop_on_first and root.found):
            root.wall_seconds = perf_counter() - start
            self._record(root, [])
            return root
        # Top of the LIFO stack first = serial DFS subtree order.
        shards: List[Seed] = list(reversed(frontier))
        attempts_root = root.schedules_run + root.cache_hits
        shard_budget = max(1, self.max_schedules - attempts_root)
        with obs_profile.span("parallel.dispatch"):
            shard_results = self._run_items(
                shards, predicate, stop_on_first, shard_budget
            )
        with obs_profile.span("parallel.merge"):
            merged = _merge(
                root, shard_results, self.keep_matches, stop_on_first,
                len(shard_results),
            )
        merged.wall_seconds = perf_counter() - start
        self._record(merged, shard_results)
        return merged

    # -- internals -----------------------------------------------------------

    def _record(
        self,
        merged: ExplorationResult,
        shard_results: List[ExplorationResult],
    ) -> None:
        """Publish the merged search plus per-item balance metrics.

        Worker processes cannot reach the parent registry, so every
        per-item number is taken from the ``ExplorationResult`` the
        item sent back — including its state-cache totals, which is
        why the parallel path publishes ``statecache.*`` itself instead
        of via :meth:`StateCache.record_metrics`.
        """
        registry = obs_metrics.active()
        if registry is not None:
            program = self.program.name
            registry.inc("parallel.explorations", 1, program=program)
            registry.inc(
                "parallel.shards_run", len(shard_results), program=program
            )
            for index, shard in enumerate(shard_results):
                registry.set_gauge(
                    "parallel.shard_schedules", shard.schedules_run,
                    program=program, shard=index,
                )
                registry.set_gauge(
                    "parallel.shard_wall_seconds", shard.wall_seconds,
                    program=program, shard=index,
                )
                registry.observe(
                    "parallel.shard_schedules_balance", shard.schedules_run,
                    program=program,
                )
                registry.observe(
                    "parallel.shard_wall_seconds_balance", shard.wall_seconds,
                    program=program,
                )
            if self.strategy == "steal" and shard_results:
                registry.inc(
                    "parallel.steal_donations", merged.steal_donations,
                    program=program,
                )
                registry.inc(
                    "parallel.steal_prefixes", merged.stolen_prefixes,
                    program=program,
                )
                registry.observe(
                    "parallel.steal_idle_seconds", merged.idle_seconds,
                    program=program,
                )
                registry.observe(
                    "parallel.steal_donate_seconds", merged.donate_seconds,
                    program=program,
                )
            if self.memoize:
                registry.inc(
                    "statecache.lookups", merged.cache_lookups, program=program
                )
                registry.inc(
                    "statecache.hits", merged.cache_hits, program=program
                )
                registry.set_gauge(
                    "statecache.size", merged.cache_states, program=program
                )
        if merged.pipeline_stats is not None:
            _record_pipeline_stats(merged.pipeline_stats, self.program.name)
        _record_exploration(merged, "parallel")

    def _run_items(
        self,
        shards: List[Seed],
        predicate: Optional[Predicate],
        stop_on_first: bool,
        shard_budget: int,
    ) -> List[ExplorationResult]:
        """Explore the frontier items; results in serial DFS order."""
        options = {
            "max_schedules": shard_budget,
            "max_steps": self.max_steps,
            "preemption_bound": self.preemption_bound,
            "enabled_filter": self.enabled_filter,
            "keep_matches": self.keep_matches,
            "memoize": self.memoize,
            "stop_on_first": stop_on_first,
            "pipeline_factory": self.pipeline_factory,
            "targets": self.targets,
            "donate": self._donate_enabled(),
        }
        if not self._use_pool():
            # In-process fallback: identical results, no pool.  Stealing
            # is moot with one sequential worker — nothing is ever
            # hungry — so both strategies take the static path.
            _init_worker(self.program, predicate, options)
            try:
                return [_explore_shard(seed) for seed in shards]
            finally:
                _WORKER.clear()
        if self.strategy == "shard":
            context = multiprocessing.get_context("fork")
            with context.Pool(
                processes=min(self.workers, len(shards)),
                initializer=_init_worker,
                initargs=(self.program, predicate, options),
            ) as pool:
                return pool.map(_explore_shard, shards)
        return self._run_steal(shards, predicate, options)

    def _run_steal(
        self,
        shards: List[Seed],
        predicate: Optional[Predicate],
        options: Dict[str, Any],
    ) -> List[ExplorationResult]:
        context = multiprocessing.get_context("fork")
        work = context.Queue()
        results = context.Queue()
        hungry = context.Value("i", 0)
        created = context.Value("i", len(shards))
        for index, seed in enumerate(shards):
            work.put(((index,), [seed]))
        procs = [
            context.Process(
                target=_steal_worker,
                args=(
                    work, results, hungry, created,
                    self.program, predicate, options,
                ),
                daemon=True,
            )
            for _ in range(self.workers)
        ]
        for proc in procs:
            proc.start()
        collected: List[Tuple[ItemKey, ExplorationResult]] = []
        try:
            while True:
                # Donors bump ``created`` before queueing, and a donor's
                # own result always lands after its donations are
                # counted — so "every created item has reported" is a
                # race-free termination condition.
                with created.get_lock():
                    total = created.value
                if len(collected) >= total:
                    break
                try:
                    collected.append(
                        results.get(timeout=_RESULT_POLL_SECONDS)
                    )
                except queue_mod.Empty:
                    if any(not proc.is_alive() for proc in procs):
                        raise RuntimeError(
                            "a parallel exploration worker died before "
                            "reporting its items"
                        )
        finally:
            for _ in procs:
                work.put(None)
            for proc in procs:
                proc.join()
        collected.sort(key=lambda item: item[0])
        return [result for _, result in collected]

    def _donate_enabled(self) -> bool:
        if self.donation == "always":
            return True
        if self.donation == "never":
            return False
        # auto: donation only helps when another worker can actually
        # run the stolen batch concurrently.
        return self.workers > 1 and (os.cpu_count() or 1) > 1

    def _use_pool(self) -> bool:
        # pool="fork" availability is validated in __init__, so forcing
        # here cannot silently degrade.
        if self.pool == "fork":
            return True
        if self.pool == "none" or self.workers <= 1:
            return False
        if "fork" not in multiprocessing.get_all_start_methods():
            return False
        # auto: a pool only pays off with more than one core to run on.
        return (os.cpu_count() or 1) > 1


def _merge(
    merged: ExplorationResult,
    shard_results: List[ExplorationResult],
    keep_matches: int,
    stop_on_first: bool,
    shards: int,
) -> ExplorationResult:
    """Fold item results into the root result, in serial DFS order."""
    merged.shards = shards
    for shard in shard_results:
        if merged.first_match_schedule is None and shard.first_match_schedule:
            merged.first_match_schedule = list(shard.first_match_schedule)
            if shard.schedules_to_first_finding is not None:
                # Serial-order position: every completed run merged so
                # far precedes this item, which found its match after
                # its own first ``schedules_to_first_finding`` runs.
                merged.schedules_to_first_finding = (
                    merged.schedules_run + shard.schedules_to_first_finding
                )
        merged.schedules_run += shard.schedules_run
        merged.cache_hits += shard.cache_hits
        merged.states_expanded += shard.states_expanded
        merged.preemptions_spent += shard.preemptions_spent
        merged.cache_lookups += shard.cache_lookups
        merged.cache_states += shard.cache_states
        merged.steal_donations += shard.steal_donations
        merged.stolen_prefixes += shard.stolen_prefixes
        merged.idle_seconds += shard.idle_seconds
        merged.donate_seconds += shard.donate_seconds
        merged.statuses.update(shard.statuses)
        for outcome, count in shard.outcomes.items():
            merged.outcomes[outcome] = merged.outcomes.get(outcome, 0) + count
        merged.match_count += shard.match_count
        for run in shard.matching:
            if len(merged.matching) >= keep_matches:
                break
            merged.matching.append(run)
        merged.complete = merged.complete and shard.complete
        if shard.detector_reports:
            # Prefix findings already live in the root result's reports
            # (reports are append-only along the serial root phase); the
            # shard contributes the findings of its subtree.  ``add``
            # de-duplicates, so overlap is harmless.
            if merged.detector_reports is None:
                merged.detector_reports = dict(shard.detector_reports)
            else:
                for name, report in shard.detector_reports.items():
                    target = merged.detector_reports.get(name)
                    if target is None:
                        merged.detector_reports[name] = report
                    else:
                        for finding in report:
                            target.add(finding)
        merged.pipeline_stats = _merge_pipeline_stats(
            merged.pipeline_stats, shard.pipeline_stats
        )
        if stop_on_first and shard.match_count:
            # Serial search would have stopped inside this item; the
            # remaining items' results are redundant work, not part of
            # the answer.
            merged.complete = False
            break
    return merged
