"""Record/replay: re-execute a previously observed interleaving.

Because every scheduler decision corresponds to exactly one trace event,
the thread-name sequence of a run (``RunResult.schedule``) is a complete
recipe for reproducing it.  Replay underpins two things users of a bug
study need constantly:

* *deterministic reproduction* — once exploration finds a manifesting
  schedule, replay turns it into a regression test;
* *fix verification* — replaying the buggy schedule against the patched
  program shows the same interleaving no longer fails (and exhaustive
  exploration then shows no other one does either).
"""

from __future__ import annotations

import json
from typing import List

from repro.sim.engine import RunResult, run_program
from repro.sim.program import Program
from repro.sim.scheduler import FixedScheduler

__all__ = ["replay", "replay_prefix", "schedule_to_json", "schedule_from_json"]


def replay(program: Program, schedule: List[str], max_steps: int = 20000) -> RunResult:
    """Re-execute ``program`` under an exact recorded ``schedule``.

    Raises :class:`~repro.errors.ReplayError` if the schedule does not fit
    the program (wrong program, or truncated schedule).
    """
    return run_program(program, FixedScheduler(schedule, strict=True), max_steps=max_steps)


def replay_prefix(
    program: Program, schedule: List[str], max_steps: int = 20000
) -> RunResult:
    """Replay ``schedule`` as a prefix, then continue cooperatively.

    Useful when the recorded schedule comes from a *different but related*
    program (e.g. the patched version of a kernel): the prefix steers
    execution toward the interesting region and the tail is filled in.
    """
    return run_program(program, FixedScheduler(schedule, strict=False), max_steps=max_steps)


def schedule_to_json(schedule: List[str]) -> str:
    """Serialise a schedule for storage alongside a bug report."""
    return json.dumps({"version": 1, "schedule": schedule})


def schedule_from_json(text: str) -> List[str]:
    """Inverse of :func:`schedule_to_json`."""
    payload = json.loads(text)
    if payload.get("version") != 1 or "schedule" not in payload:
        raise ValueError("not a serialised schedule")
    return list(payload["schedule"])
