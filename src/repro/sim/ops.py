"""Operation DSL for simulated thread bodies.

A simulated thread body is a generator function.  Each interaction with
*shared* state — memory reads/writes, lock operations, condition variables,
semaphores, barriers, thread spawn/join — is expressed by ``yield``-ing an
:class:`Op` instance.  The engine executes the operation and ``send``-s the
result (e.g. the value read) back into the generator::

    def worker():
        v = yield Read("counter")
        yield Write("counter", v + 1)

Purely local computation between yields executes atomically from the
scheduler's point of view.  That matches the granularity at which the
ASPLOS'08 study reasons about interleavings: only accesses to shared
variables and synchronisation operations are ordering-relevant.

Every operation accepts an optional ``label``.  Labels identify *static
access points* and are the handles used by :mod:`repro.manifest.enforce` to
impose partial orders among specific accesses (the paper's "enforcing a
certain order among no more than four memory accesses guarantees the bug
manifests" — Finding 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

__all__ = [
    "Op",
    "MemoryOp",
    "op_kind",
    "Read",
    "Write",
    "AtomicUpdate",
    "Acquire",
    "Release",
    "TryAcquire",
    "AcquireRead",
    "AcquireWrite",
    "ReleaseRead",
    "ReleaseWrite",
    "Wait",
    "Notify",
    "NotifyAll",
    "SemAcquire",
    "SemRelease",
    "BarrierWait",
    "Spawn",
    "Join",
    "Yield",
    "Sleep",
    "Send",
    "Recv",
    "Select",
    "Fence",
]


@dataclass(frozen=True)
class Op:
    """Base class for all simulated operations.

    :param label: optional static identifier for this operation site, used
        by order-enforcement and by detectors to report code locations.
    """

    def describe(self) -> str:
        """Human-readable one-line description used in traces and errors."""
        return type(self).__name__


@dataclass(frozen=True)
class MemoryOp(Op):
    """Base class for operations touching a shared variable."""

    var: str
    label: Optional[str] = None


@dataclass(frozen=True)
class Read(MemoryOp):
    """Read shared variable ``var``; the yielded expression evaluates to its value."""

    def describe(self) -> str:
        return f"Read({self.var!r})"


@dataclass(frozen=True)
class Write(Op):
    """Write ``value`` to shared variable ``var``."""

    var: str
    value: Any = None
    label: Optional[str] = None

    def describe(self) -> str:
        return f"Write({self.var!r}, {self.value!r})"


@dataclass(frozen=True)
class AtomicUpdate(Op):
    """Atomically apply ``fn`` to ``var`` (read-modify-write in one step).

    Models hardware atomics / interlocked instructions.  Fix strategies that
    replace a racy load/store pair with an atomic instruction use this.
    The yielded expression evaluates to the *new* value.
    """

    var: str
    fn: Callable[[Any], Any] = None  # type: ignore[assignment]
    label: Optional[str] = None

    def describe(self) -> str:
        return f"AtomicUpdate({self.var!r})"


@dataclass(frozen=True)
class Acquire(Op):
    """Block until mutex ``lock`` is free, then take it."""

    lock: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"Acquire({self.lock!r})"


@dataclass(frozen=True)
class Release(Op):
    """Release mutex ``lock`` (must be held by the executing thread)."""

    lock: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"Release({self.lock!r})"


@dataclass(frozen=True)
class TryAcquire(Op):
    """Attempt to take mutex ``lock`` without blocking.

    The yielded expression evaluates to ``True`` on success, ``False`` if
    the lock was held.  Never blocks; always enabled.  Deadlock *fixes* of
    the "give up the resource" flavour are written with this operation.
    """

    lock: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"TryAcquire({self.lock!r})"


@dataclass(frozen=True)
class AcquireRead(Op):
    """Take reader-writer lock ``rwlock`` in shared (read) mode."""

    rwlock: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"AcquireRead({self.rwlock!r})"


@dataclass(frozen=True)
class AcquireWrite(Op):
    """Take reader-writer lock ``rwlock`` in exclusive (write) mode."""

    rwlock: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"AcquireWrite({self.rwlock!r})"


@dataclass(frozen=True)
class ReleaseRead(Op):
    """Drop a shared (read) hold on ``rwlock``."""

    rwlock: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"ReleaseRead({self.rwlock!r})"


@dataclass(frozen=True)
class ReleaseWrite(Op):
    """Drop an exclusive (write) hold on ``rwlock``."""

    rwlock: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"ReleaseWrite({self.rwlock!r})"


@dataclass(frozen=True)
class Wait(Op):
    """Wait on condition variable ``cond``.

    The executing thread must hold the condition's associated lock.  The
    lock is released atomically with parking; after a notification the
    thread re-acquires the lock before the ``yield`` completes.  A ``Wait``
    that is never notified leaves the thread parked forever — the engine
    reports the resulting global stall as a hang, which is how lost-wakeup
    order violations manifest.
    """

    cond: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"Wait({self.cond!r})"


@dataclass(frozen=True)
class Notify(Op):
    """Wake one thread parked on ``cond`` (no-op if none are parked).

    Like pthreads, a notification with no waiter is *lost* — this is
    exactly the semantics the Mozilla/MySQL lost-wakeup bugs depend on.
    """

    cond: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"Notify({self.cond!r})"


@dataclass(frozen=True)
class NotifyAll(Op):
    """Wake every thread parked on ``cond``."""

    cond: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"NotifyAll({self.cond!r})"


@dataclass(frozen=True)
class SemAcquire(Op):
    """Decrement semaphore ``sem``; blocks while its value is zero."""

    sem: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"SemAcquire({self.sem!r})"


@dataclass(frozen=True)
class SemRelease(Op):
    """Increment semaphore ``sem``, possibly unblocking a waiter."""

    sem: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"SemRelease({self.sem!r})"


@dataclass(frozen=True)
class BarrierWait(Op):
    """Block until ``barrier``'s full party has arrived, then all proceed."""

    barrier: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"BarrierWait({self.barrier!r})"


@dataclass(frozen=True)
class Spawn(Op):
    """Start the (declared but not yet started) thread named ``thread``."""

    thread: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"Spawn({self.thread!r})"


@dataclass(frozen=True)
class Join(Op):
    """Block until thread ``thread`` has finished (or crashed)."""

    thread: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"Join({self.thread!r})"


@dataclass(frozen=True)
class Yield(Op):
    """A pure scheduling point with no shared-state effect."""

    label: Optional[str] = None

    def describe(self) -> str:
        return "Yield()"


@dataclass(frozen=True)
class Sleep(Op):
    """Model a timed sleep as ``ticks`` consecutive scheduling points.

    The simulator has no wall clock; a ``Sleep`` merely makes the thread
    yield the CPU ``ticks`` times.  This is deliberately *not* a
    synchronisation primitive: programs that use sleeps to "wait" for
    another thread are exactly the ad-hoc-synchronisation anti-pattern the
    study calls out, and under an adversarial scheduler they still
    interleave incorrectly — which is the point.
    """

    ticks: int = 1
    label: Optional[str] = None

    def describe(self) -> str:
        return f"Sleep({self.ticks})"


@dataclass(frozen=True)
class Send(Op):
    """Send ``value`` into channel ``chan``.

    Blocks while the channel is at capacity (unbounded channels never
    block).  Message-passing programs — the actor-style workloads of the
    Torres Lopez et al. study — express all cross-thread communication
    with ``Send``/``Recv`` instead of shared variables.
    """

    chan: str
    value: Any = None
    label: Optional[str] = None

    def describe(self) -> str:
        return f"Send({self.chan!r}, {self.value!r})"


@dataclass(frozen=True)
class Recv(Op):
    """Receive the oldest message from channel ``chan``.

    Blocks while the channel is empty; the yielded expression evaluates
    to the received value.  A ``Recv`` that can never be satisfied — the
    message was lost or consumed by another receiver — leaves the thread
    blocked forever, and the engine reports the stall as a hang.
    """

    chan: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"Recv({self.chan!r})"


@dataclass(frozen=True)
class Select(Op):
    """Receive from the first non-empty channel of ``chans``.

    Blocks while *every* listed channel is empty.  On execution the
    yielded expression evaluates to ``(chan, value)`` — the channels are
    polled in declaration order, so which message wins depends on the
    interleaving of the senders.  This is the mailbox-nondeterminism
    primitive of actor systems.
    """

    chans: tuple = ()
    label: Optional[str] = None

    def describe(self) -> str:
        return f"Select({', '.join(repr(c) for c in self.chans)})"


@dataclass(frozen=True)
class Fence(Op):
    """Full store fence: block until the thread's store buffer is empty.

    Under :class:`~repro.sim.memory.SCMemory` this is a pure scheduling
    point (there is never anything to drain).  Under
    :class:`~repro.sim.memory.TSOMemory` the issuing thread is disabled
    while its buffer holds unflushed stores, so scheduling can only
    proceed through the explicit flush steps — the fix vocabulary for
    store-visibility bugs.
    """

    label: Optional[str] = None

    def describe(self) -> str:
        return "Fence()"


#: Canonical (kind, resource-attribute) per operation class.  The kind
#: strings are the shared vocabulary between the simulator's directed
#: exploration (:mod:`repro.sim.explorer` ``targets=``) and the static
#: analyzer's operation summaries (:mod:`repro.static.summary`): a static
#: target site matches a pending operation iff their kinds and resource
#: names agree.
OP_KINDS = {
    Read: ("read", "var"),
    Write: ("write", "var"),
    AtomicUpdate: ("atomic", "var"),
    Acquire: ("acquire", "lock"),
    Release: ("release", "lock"),
    TryAcquire: ("tryacquire", "lock"),
    AcquireRead: ("acquire_read", "rwlock"),
    AcquireWrite: ("acquire_write", "rwlock"),
    ReleaseRead: ("release_read", "rwlock"),
    ReleaseWrite: ("release_write", "rwlock"),
    Wait: ("wait", "cond"),
    Notify: ("notify", "cond"),
    NotifyAll: ("notify_all", "cond"),
    SemAcquire: ("sem_acquire", "sem"),
    SemRelease: ("sem_release", "sem"),
    BarrierWait: ("barrier_wait", "barrier"),
    Spawn: ("spawn", "thread"),
    Join: ("join", "thread"),
    Yield: ("yield", None),
    Sleep: ("sleep", None),
    Send: ("send", "chan"),
    Recv: ("recv", "chan"),
    Select: ("select", None),
    Fence: ("fence", None),
}


def op_kind(op: Op) -> tuple:
    """``(kind, resource)`` of an operation instance.

    ``kind`` is the canonical lower-case kind string from :data:`OP_KINDS`;
    ``resource`` is the shared object the operation touches (variable,
    lock, rwlock, condition, semaphore, barrier, or thread name) or
    ``None`` for pure scheduling points.  Unknown operation types (the
    engine-internal reacquire pseudo-op) map to ``("internal", None)``.
    """
    entry = OP_KINDS.get(type(op))
    if entry is None:
        return ("internal", None)
    kind, attr = entry
    return (kind, getattr(op, attr) if attr is not None else None)


# Internal pseudo-op: a thread that executed ``Wait`` and has been notified
# re-enters the scheduler wanting to re-acquire the condition's lock.  Never
# constructed by user programs.
@dataclass(frozen=True)
class _ReacquireAfterWait(Op):
    cond: str
    lock: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"<reacquire {self.lock!r} after wait on {self.cond!r}>"


# Internal pseudo-op: the operation a TSO flush pseudo-thread "pends".
# Never constructed by user programs and never executed by a generator —
# the engine synthesises it (via ``Engine.pending_op``) so that sleep-set
# and DPOR dependence logic can treat a buffered-store flush like any
# other scheduled write to ``var`` on behalf of ``thread``.
@dataclass(frozen=True)
class _FlushStore(Op):
    thread: str
    var: str
    label: Optional[str] = None

    def describe(self) -> str:
        return f"<flush {self.var!r} for {self.thread!r}>"
