"""Failure-witness minimisation: the fewest context switches that fail.

A raw failing schedule from random testing is noisy; what a developer
wants is the *smallest* witness — and for concurrency bugs the meaningful
size is the number of **pre-emptive context switches**, not schedule
length (Finding 8: a handful of ordering points decide manifestation;
CHESS showed most real bugs need <=2 preemptions).

``minimize_preemptions`` searches with an increasing preemption bound and
returns the first failing run, whose bound is by construction minimal.
``preemption_count`` scores any schedule by re-executing it with
enabled-set instrumentation, so "was that switch forced or pre-emptive?"
is answered exactly rather than guessed from the schedule text.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.errors import ReplayError
from repro.sim.engine import Engine, RunResult
from repro.sim.explorer import Explorer
from repro.sim.program import Program
from repro.sim.scheduler import FixedScheduler

__all__ = ["MinimalWitness", "minimize_preemptions", "preemption_count"]


class _InstrumentedReplay(FixedScheduler):
    """Fixed replay that also records the enabled set at each step."""

    def __init__(self, schedule: Sequence[str]):
        super().__init__(schedule, strict=True)
        self.enabled_sets: List[List[str]] = []

    def choose(self, enabled, step):
        self.enabled_sets.append(sorted(enabled))
        return super().choose(enabled, step)

    def reset(self) -> None:
        super().reset()
        self.enabled_sets = []


def preemption_count(program: Program, schedule: Sequence[str]) -> int:
    """Exact number of pre-emptive switches in ``schedule``.

    A switch from thread *t* to a different thread at step *i* is
    pre-emptive iff *t* was still enabled at step *i*.  Raises
    :class:`~repro.errors.ReplayError` if the schedule does not fit the
    program.
    """
    recorder = _InstrumentedReplay(schedule)
    Engine(program, recorder).run()
    count = 0
    previous: Optional[str] = None
    for choice, enabled in zip(schedule, recorder.enabled_sets):
        if previous is not None and choice != previous and previous in enabled:
            count += 1
        previous = choice
    return count


@dataclass(frozen=True)
class MinimalWitness:
    """A failing run at the smallest preemption bound that fails at all."""

    run: RunResult
    preemptions: int
    schedules_searched: int

    def summary(self) -> str:
        """One-line rendering of the minimal witness."""
        return (
            f"{self.run.program}: fails with {self.preemptions} "
            f"preemption(s) after searching {self.schedules_searched} "
            f"schedules — witness: {self.run.schedule}"
        )


def minimize_preemptions(
    program: Program,
    predicate: Callable[[RunResult], bool],
    max_bound: int = 8,
    max_schedules_per_bound: int = 50000,
) -> Optional[MinimalWitness]:
    """The failing run with the fewest pre-emptive switches, or ``None``.

    Searches exhaustively at preemption bound 0, then 1, ... up to
    ``max_bound``.  The first bound that yields a failure is minimal
    because every schedule legal at bound *k* is legal at bound *k+1*.
    """
    searched = 0
    for bound in range(max_bound + 1):
        explorer = Explorer(
            program,
            max_schedules=max_schedules_per_bound,
            preemption_bound=bound,
        )
        result = explorer.explore(predicate=predicate, stop_on_first=True)
        searched += result.schedules_run
        if result.matching:
            run = result.matching[0]
            return MinimalWitness(
                run=run,
                preemptions=preemption_count(program, run.schedule),
                schedules_searched=searched,
            )
    return None
