"""Virtual threads: generator coroutines driven by the engine.

A :class:`VirtualThread` wraps one thread body (a generator) and tracks its
scheduling state.  The engine advances the generator with ``send(result)``;
the generator responds by yielding its *next* operation, which the thread
stores as ``pending`` until a scheduler decision executes it.

States:

``NEW``       declared but not started (waiting for ``Spawn`` or program start)
``RUNNABLE``  has a pending operation (which may or may not be *enabled*)
``PARKED``    waiting inside a condition variable or barrier; not schedulable
              until an engine-side wakeup converts it back to ``RUNNABLE``
``FINISHED``  body returned
``CRASHED``   body raised :class:`~repro.errors.SimCrash`
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, Optional

from repro.errors import ProgramError, SimCrash
from repro.sim.ops import Op

__all__ = ["ThreadState", "VirtualThread"]

Body = Callable[[], Generator[Op, Any, None]]


class ThreadState(enum.Enum):
    """Lifecycle states of a virtual thread."""

    NEW = "new"
    RUNNABLE = "runnable"
    PARKED = "parked"
    FINISHED = "finished"
    CRASHED = "crashed"


class VirtualThread:
    """One simulated thread: a named generator plus scheduling state."""

    def __init__(self, name: str, body: Body):
        self.name = name
        self._body = body
        self._gen: Optional[Generator[Op, Any, None]] = None
        self.state = ThreadState.NEW
        self.pending: Optional[Op] = None
        self.crash_reason: Optional[str] = None
        # Remaining ticks for an in-progress Sleep operation.
        self.sleep_remaining = 0
        # Why the thread is parked ("cond:<name>" / "barrier:<name>"), for
        # deadlock reports.
        self.park_reason: Optional[str] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Instantiate the generator and advance to the first operation."""
        if self.state is not ThreadState.NEW:
            raise ProgramError(f"thread {self.name!r} started twice")
        self._gen = self._body()
        if not hasattr(self._gen, "send"):
            raise ProgramError(
                f"thread {self.name!r} body is not a generator function; "
                f"bodies must 'yield' operations"
            )
        self.state = ThreadState.RUNNABLE
        self._advance(None, first=True)

    def advance(self, result: Any) -> None:
        """Feed the result of the executed pending op; fetch the next op."""
        if self.state is not ThreadState.RUNNABLE:
            raise ProgramError(
                f"advance() on thread {self.name!r} in state {self.state}"
            )
        self._advance(result, first=False)

    def park(self, reason: str) -> None:
        """Move to PARKED (condition wait / barrier wait)."""
        self.state = ThreadState.PARKED
        self.park_reason = reason
        self.pending = None

    def unpark(self, pending: Op) -> None:
        """Return from PARKED to RUNNABLE with an engine-supplied pending op."""
        if self.state is not ThreadState.PARKED:
            raise ProgramError(
                f"unpark() on thread {self.name!r} in state {self.state}"
            )
        self.state = ThreadState.RUNNABLE
        self.park_reason = None
        self.pending = pending

    # -- queries -----------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether the thread has terminated (normally or by crash)."""
        return self.state in (ThreadState.FINISHED, ThreadState.CRASHED)

    @property
    def alive(self) -> bool:
        """Whether the thread has started and not yet terminated."""
        return self.state in (ThreadState.RUNNABLE, ThreadState.PARKED)

    @property
    def frame(self):
        """The suspended generator frame, or ``None`` once finished/unstarted.

        Exposed for state fingerprinting (:mod:`repro.sim.statecache`):
        the frame's instruction offset and locals are the thread's
        continuation, the part of its behaviour the pending op alone
        cannot describe.
        """
        if self._gen is None:
            return None
        return self._gen.gi_frame

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        op = self.pending.describe() if self.pending else "-"
        return f"<VirtualThread {self.name} {self.state.value} pending={op}>"

    # -- internals ----------------------------------------------------------

    def _advance(self, result: Any, first: bool) -> None:
        assert self._gen is not None
        try:
            if first:
                op = next(self._gen)
            else:
                op = self._gen.send(result)
        except StopIteration:
            self.state = ThreadState.FINISHED
            self.pending = None
            return
        except SimCrash as crash:
            self.state = ThreadState.CRASHED
            self.crash_reason = crash.reason
            self.pending = None
            return
        if not isinstance(op, Op):
            raise ProgramError(
                f"thread {self.name!r} yielded {op!r}; bodies must yield "
                f"Op instances from repro.sim.ops"
            )
        self.pending = op
