"""Simulated synchronisation primitives.

These are *engine-side* state machines, not real OS primitives: blocking is
modelled by reporting an operation as not-enabled, and the engine simply
never schedules a thread whose pending operation is disabled.  Each class
answers two questions — "can thread T perform this op right now?" and
"apply the op for T" — which keeps the scheduling policy entirely outside
the primitive.

Mutexes track their owner so the engine can detect self-deadlock (the
single-resource deadlocks of the study — roughly a quarter of the 31
deadlock bugs involve only one resource, i.e. re-acquiring a held,
non-recursive lock) and report meaningful wait-for edges.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.errors import ProgramError

__all__ = [
    "Mutex", "RWLock", "Semaphore", "Condition", "Barrier", "Channel",
    "SyncObjects",
]


class Mutex:
    """A non-recursive mutual-exclusion lock with owner tracking."""

    def __init__(self, name: str):
        self.name = name
        self.owner: Optional[str] = None

    def can_acquire(self, thread: str) -> bool:
        """A free mutex can be taken by anyone; a held one by nobody.

        Note a thread attempting to re-acquire a mutex it already owns is
        *not* enabled — it waits on itself, which the engine reports as a
        single-resource deadlock.
        """
        return self.owner is None

    def acquire(self, thread: str) -> None:
        """Take the mutex (engine guarantees it is free)."""
        if self.owner is not None:
            raise ProgramError(
                f"engine bug: acquire of held mutex {self.name!r} was scheduled"
            )
        self.owner = thread

    def try_acquire(self, thread: str) -> bool:
        """Non-blocking acquire; returns success."""
        if self.owner is None:
            self.owner = thread
            return True
        return False

    def release(self, thread: str) -> None:
        """Release the mutex (must be held by ``thread``)."""
        if self.owner != thread:
            raise ProgramError(
                f"thread {thread!r} released mutex {self.name!r} owned by "
                f"{self.owner!r}"
            )
        self.owner = None


class RWLock:
    """A reader-writer lock: many readers or one writer.

    Supports *in-place upgrade*: a thread that is the **sole** reader may
    take the write mode while keeping its read hold (it then holds both
    and may release them in either order).  Two readers requesting the
    upgrade simultaneously each wait for the other's read hold to drain —
    the classic upgrade deadlock, modelled by
    :func:`repro.kernels.rwlock.deadlock_rwlock_upgrade`.
    """

    def __init__(self, name: str):
        self.name = name
        self.readers: Set[str] = set()
        self.writer: Optional[str] = None

    def can_acquire_read(self, thread: str) -> bool:
        """Readers are admitted whenever no writer holds the lock."""
        return self.writer is None

    def can_acquire_write(self, thread: str) -> bool:
        """Writers need no writer and no readers besides (possibly) themselves."""
        return self.writer is None and self.readers <= {thread}

    def acquire_read(self, thread: str) -> None:
        """Add ``thread`` to the reader set (must be admissible)."""
        if self.writer is not None:
            raise ProgramError(
                f"engine bug: read-acquire of write-held rwlock {self.name!r}"
            )
        self.readers.add(thread)

    def acquire_write(self, thread: str) -> None:
        """Take the exclusive mode (possibly an in-place upgrade)."""
        if self.writer is not None or not self.readers <= {thread}:
            raise ProgramError(
                f"engine bug: write-acquire of busy rwlock {self.name!r}"
            )
        self.writer = thread

    def release_read(self, thread: str) -> None:
        """Drop ``thread``'s shared hold."""
        if thread not in self.readers:
            raise ProgramError(
                f"thread {thread!r} read-released rwlock {self.name!r} it "
                f"does not hold"
            )
        self.readers.discard(thread)

    def release_write(self, thread: str) -> None:
        """Drop the exclusive hold (must be the writer)."""
        if self.writer != thread:
            raise ProgramError(
                f"thread {thread!r} write-released rwlock {self.name!r} held "
                f"by {self.writer!r}"
            )
        self.writer = None


class Semaphore:
    """A counting semaphore."""

    def __init__(self, name: str, value: int):
        if value < 0:
            raise ProgramError(f"semaphore {name!r} initialised below zero")
        self.name = name
        self.value = value

    def can_acquire(self, thread: str) -> bool:
        """A semaphore admits acquirers while its value is positive."""
        return self.value > 0

    def acquire(self, thread: str) -> int:
        """Decrement; returns the new value."""
        if self.value <= 0:
            raise ProgramError(
                f"engine bug: acquire of drained semaphore {self.name!r}"
            )
        self.value -= 1
        return self.value

    def release(self, thread: str) -> int:
        """Increment; returns the new value."""
        self.value += 1
        return self.value


class Condition:
    """A condition variable bound to a mutex.

    ``waiters`` holds parked threads in FIFO order.  Notification moves a
    waiter into the engine's re-acquire set; a notify with no waiters is
    lost, exactly like pthread_cond_signal.
    """

    def __init__(self, name: str, lock: str):
        self.name = name
        self.lock = lock
        self.waiters: List[str] = []

    def park(self, thread: str) -> None:
        """Queue ``thread`` as a waiter (FIFO)."""
        self.waiters.append(thread)

    def notify_one(self) -> List[str]:
        """Release the oldest waiter; returns the (0- or 1-element) list."""
        if not self.waiters:
            return []
        return [self.waiters.pop(0)]

    def notify_all(self) -> List[str]:
        """Release every waiter."""
        woken, self.waiters = self.waiters, []
        return woken


class Barrier:
    """A cyclic barrier for a fixed party size."""

    def __init__(self, name: str, parties: int):
        if parties < 1:
            raise ProgramError(f"barrier {name!r} needs parties >= 1")
        self.name = name
        self.parties = parties
        self.arrived: List[str] = []

    def can_pass(self, thread: str) -> bool:
        """The arrival that completes the party may pass (releasing all)."""
        return len(self.arrived) + 1 >= self.parties

    def arrive(self, thread: str) -> None:
        """Record a (non-final) arrival at the barrier."""
        self.arrived.append(thread)

    def trip(self) -> List[str]:
        """Reset for reuse and return the full released party."""
        released, self.arrived = self.arrived, []
        return released


class Channel:
    """A FIFO message channel (a mailbox, in actor terms).

    ``capacity=None`` means unbounded: sends never block.  A bounded
    channel disables senders while full.  Receives are disabled while the
    channel is empty; a message once received is gone, so two receivers
    racing on one channel model exactly the lost-message bugs of the
    actor studies.
    """

    def __init__(self, name: str, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ProgramError(f"channel {name!r} needs capacity >= 1 (or None)")
        self.name = name
        self.capacity = capacity
        self.queue: List[Any] = []

    def can_send(self, thread: str) -> bool:
        """Senders are admitted while the channel is below capacity."""
        return self.capacity is None or len(self.queue) < self.capacity

    def send(self, thread: str, value: Any) -> int:
        """Append ``value``; returns the new queue depth."""
        if not self.can_send(thread):
            raise ProgramError(
                f"engine bug: send to full channel {self.name!r} was scheduled"
            )
        self.queue.append(value)
        return len(self.queue)

    def can_recv(self, thread: str) -> bool:
        """Receivers are admitted while the channel holds a message."""
        return bool(self.queue)

    def recv(self, thread: str) -> Any:
        """Pop and return the oldest message."""
        if not self.queue:
            raise ProgramError(
                f"engine bug: recv from empty channel {self.name!r} was scheduled"
            )
        return self.queue.pop(0)

    def snapshot(self) -> Tuple[Any, ...]:
        """The queued messages, oldest first (for fingerprints)."""
        return tuple(self.queue)


class SyncObjects:
    """The declared synchronisation objects of one program run."""

    def __init__(
        self,
        locks: List[str],
        rwlocks: List[str],
        semaphores: Dict[str, int],
        conditions: Dict[str, str],
        barriers: Dict[str, int],
        channels: Optional[Dict[str, Optional[int]]] = None,
    ):
        self.mutexes: Dict[str, Mutex] = {n: Mutex(n) for n in locks}
        self.rwlocks: Dict[str, RWLock] = {n: RWLock(n) for n in rwlocks}
        self.semaphores: Dict[str, Semaphore] = {
            n: Semaphore(n, v) for n, v in semaphores.items()
        }
        self.conditions: Dict[str, Condition] = {}
        for name, lock in conditions.items():
            if lock not in self.mutexes:
                raise ProgramError(
                    f"condition {name!r} bound to undeclared lock {lock!r}"
                )
            self.conditions[name] = Condition(name, lock)
        self.barriers: Dict[str, Barrier] = {
            n: Barrier(n, p) for n, p in barriers.items()
        }
        self.channels: Dict[str, Channel] = {
            n: Channel(n, c) for n, c in (channels or {}).items()
        }
        self._check_disjoint()

    def mutex(self, name: str) -> Mutex:
        """The declared mutex called ``name``."""
        return self._get(self.mutexes, name, "lock")

    def rwlock(self, name: str) -> RWLock:
        """The declared reader-writer lock called ``name``."""
        return self._get(self.rwlocks, name, "rwlock")

    def semaphore(self, name: str) -> Semaphore:
        """The declared semaphore called ``name``."""
        return self._get(self.semaphores, name, "semaphore")

    def condition(self, name: str) -> Condition:
        """The declared condition variable called ``name``."""
        return self._get(self.conditions, name, "condition")

    def barrier(self, name: str) -> Barrier:
        """The declared barrier called ``name``."""
        return self._get(self.barriers, name, "barrier")

    def channel(self, name: str) -> Channel:
        """The declared channel called ``name``."""
        return self._get(self.channels, name, "channel")

    def held_by(self, thread: str) -> List[str]:
        """Names of all mutexes and rwlocks currently held by ``thread``."""
        held = [m.name for m in self.mutexes.values() if m.owner == thread]
        held += [
            rw.name
            for rw in self.rwlocks.values()
            if rw.writer == thread or thread in rw.readers
        ]
        return held

    @staticmethod
    def _get(table, name, kind):
        if name not in table:
            raise ProgramError(
                f"reference to undeclared {kind} {name!r}; declared: "
                f"{sorted(table)}"
            )
        return table[name]

    def _check_disjoint(self) -> None:
        groups = [
            self.mutexes, self.rwlocks, self.semaphores, self.conditions,
            self.barriers, self.channels,
        ]
        seen: Set[str] = set()
        for group in groups:
            for name in group:
                if name in seen:
                    raise ProgramError(
                        f"sync object name {name!r} declared more than once"
                    )
                seen.add(name)
