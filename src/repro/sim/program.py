"""Program definition: shared state, sync objects, and thread bodies.

A :class:`Program` is a *static* description — it owns no mutable run
state, so the same program can be executed under thousands of schedules
(random testing, exhaustive exploration) without interference.  Each run
instantiates fresh memory, sync objects, and thread generators.

Example::

    from repro.sim import Program, Read, Write, Acquire, Release

    def increment():
        yield Acquire("L")
        v = yield Read("counter")
        yield Write("counter", v + 1)
        yield Release("L")

    prog = Program(
        name="two-increments",
        initial={"counter": 0},
        locks=["L"],
        threads={"T1": increment, "T2": increment},
    )
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro.errors import ProgramError
from repro.sim.memory import (
    FLUSH_PREFIX,
    MEMORY_MODELS,
    MemoryModel,
    make_memory_model,
)
from repro.sim.sync import SyncObjects
from repro.sim.thread import Body, VirtualThread

__all__ = ["Program"]


class Program:
    """A complete, immutable description of a concurrent test program.

    :param name: identifier used in reports.
    :param initial: declared shared variables and their initial values.
    :param threads: thread name -> body (zero-argument generator function).
    :param locks: declared mutex names.
    :param rwlocks: declared reader-writer lock names.
    :param semaphores: semaphore name -> initial value.
    :param conditions: condition name -> associated mutex name.
    :param barriers: barrier name -> party size.
    :param channels: channel name -> capacity (``None`` = unbounded).
    :param start: names of the threads started at time zero; the rest must
        be started via ``Spawn``.  Defaults to all threads.
    :param memory: memory model the program runs under: ``"sc"``
        (sequential consistency, the default) or ``"tso"`` (per-thread
        store buffers with explicit flush steps; see
        :mod:`repro.sim.memory`).
    """

    def __init__(
        self,
        name: str,
        threads: Mapping[str, Body],
        initial: Optional[Mapping[str, Any]] = None,
        locks: Iterable[str] = (),
        rwlocks: Iterable[str] = (),
        semaphores: Optional[Mapping[str, int]] = None,
        conditions: Optional[Mapping[str, str]] = None,
        barriers: Optional[Mapping[str, int]] = None,
        channels: Optional[Mapping[str, Optional[int]]] = None,
        start: Optional[Iterable[str]] = None,
        memory: str = "sc",
    ):
        if not threads:
            raise ProgramError(f"program {name!r} declares no threads")
        self.name = name
        self.initial: Dict[str, Any] = dict(initial or {})
        self.threads: Dict[str, Body] = dict(threads)
        self.locks: List[str] = list(locks)
        self.rwlocks: List[str] = list(rwlocks)
        self.semaphores: Dict[str, int] = dict(semaphores or {})
        self.conditions: Dict[str, str] = dict(conditions or {})
        self.barriers: Dict[str, int] = dict(barriers or {})
        self.channels: Dict[str, Optional[int]] = dict(channels or {})
        self.start: List[str] = list(start) if start is not None else list(self.threads)
        self.memory = memory
        self._validate()

    # -- run-state factories -------------------------------------------------

    def make_memory(self) -> MemoryModel:
        """Fresh shared memory for one run, under the declared model."""
        return make_memory_model(self.memory, self.initial)

    def make_sync(self) -> SyncObjects:
        """Fresh synchronisation objects for one run."""
        return SyncObjects(
            locks=self.locks,
            rwlocks=self.rwlocks,
            semaphores=self.semaphores,
            conditions=self.conditions,
            barriers=self.barriers,
            channels=self.channels,
        )

    def make_threads(self) -> Dict[str, VirtualThread]:
        """Fresh virtual threads for one run (not yet started)."""
        return {name: VirtualThread(name, body) for name, body in self.threads.items()}

    # -- convenience -----------------------------------------------------------

    def thread_names(self) -> List[str]:
        """All declared thread names, in declaration order."""
        return list(self.threads)

    def with_threads(self, threads: Mapping[str, Body], name: Optional[str] = None) -> "Program":
        """A copy of this program with a different thread set.

        Used by fix machinery to swap a buggy body for a patched one while
        keeping declarations identical.
        """
        return Program(
            name=name or self.name,
            threads=threads,
            initial=self.initial,
            locks=self.locks,
            rwlocks=self.rwlocks,
            semaphores=self.semaphores,
            conditions=self.conditions,
            barriers=self.barriers,
            channels=self.channels,
            start=[t for t in self.start if t in threads],
            memory=self.memory,
        )

    def with_memory(self, model: str, name: Optional[str] = None) -> "Program":
        """A copy of this program under a different memory model.

        The CLI ``--memory`` flag and the service's ``memory`` job option
        use this to re-run a kernel under SC or TSO without touching its
        declarations or bodies.
        """
        if model == self.memory and name is None:
            return self
        return Program(
            name=name or self.name,
            threads=self.threads,
            initial=self.initial,
            locks=self.locks,
            rwlocks=self.rwlocks,
            semaphores=self.semaphores,
            conditions=self.conditions,
            barriers=self.barriers,
            channels=self.channels,
            start=self.start,
            memory=model,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Program {self.name!r} threads={list(self.threads)}>"

    # -- validation --------------------------------------------------------------

    def _validate(self) -> None:
        if self.memory not in MEMORY_MODELS:
            raise ProgramError(
                f"program {self.name!r}: unknown memory model {self.memory!r}; "
                f"one of {', '.join(MEMORY_MODELS)}"
            )
        for t in self.threads:
            if t.startswith(FLUSH_PREFIX):
                raise ProgramError(
                    f"program {self.name!r}: thread name {t!r} collides with "
                    f"the {FLUSH_PREFIX!r} store-buffer flush prefix"
                )
        for t in self.start:
            if t not in self.threads:
                raise ProgramError(
                    f"program {self.name!r}: start thread {t!r} is not declared"
                )
        for body_name, body in self.threads.items():
            if not callable(body):
                raise ProgramError(
                    f"program {self.name!r}: body of thread {body_name!r} is "
                    f"not callable"
                )
        # Sync-object name validation happens in SyncObjects; run it once now
        # so malformed programs fail at construction, not first run.
        self.make_sync()
