"""Execution traces: the complete record of one interleaving.

A :class:`Trace` is an append-only sequence of
:class:`~repro.sim.events.Event` objects plus query helpers that detectors
and analyses use constantly (per-variable access streams, per-thread
streams, critical-section extents, the schedule itself for replay).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.sim import events as ev

__all__ = ["Trace"]


class Trace:
    """An ordered list of events from a single simulated run."""

    def __init__(self) -> None:
        self._events: List[ev.Event] = []

    # -- construction -----------------------------------------------------

    def append(self, event: ev.Event) -> None:
        """Append ``event``; its ``seq`` must equal the current length."""
        if event.seq != len(self._events):
            raise ValueError(
                f"event seq {event.seq} does not match trace length "
                f"{len(self._events)}"
            )
        self._events.append(event)

    # -- basic container protocol -----------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[ev.Event]:
        return iter(self._events)

    def __getitem__(self, index):
        return self._events[index]

    # -- queries ------------------------------------------------------------

    def events(self) -> Sequence[ev.Event]:
        """The full event sequence as an immutable snapshot.

        Returns a tuple so callers cannot mutate the trace through the
        view (appends after the call are likewise not reflected).
        """
        return tuple(self._events)

    def memory_accesses(self, var: Optional[str] = None) -> List[ev.Event]:
        """All read/write/atomic events, optionally restricted to ``var``."""
        out = []
        for e in self._events:
            if not e.is_memory_access:
                continue
            if var is not None and getattr(e, "var", None) != var:
                continue
            out.append(e)
        return out

    def variables_touched(self) -> List[str]:
        """Distinct shared variables accessed, in first-touch order."""
        seen: Dict[str, None] = {}
        for e in self.memory_accesses():
            seen.setdefault(e.var, None)  # type: ignore[attr-defined]
        return list(seen)

    def threads(self) -> List[str]:
        """Distinct thread names appearing in the trace, in first-event order."""
        seen: Dict[str, None] = {}
        for e in self._events:
            seen.setdefault(e.thread, None)
        return list(seen)

    def by_thread(self, thread: str) -> List[ev.Event]:
        """Events executed by ``thread``, in order."""
        return [e for e in self._events if e.thread == thread]

    def schedule(self) -> List[str]:
        """The sequence of thread choices — enough to replay this run."""
        return [e.thread for e in self._events if self._is_step(e)]

    def labelled(self, label: str) -> List[ev.Event]:
        """Events carrying the static label ``label``."""
        return [e for e in self._events if e.label == label]

    def crashes(self) -> List[ev.ThreadCrashEvent]:
        """All modelled thread crashes."""
        return [e for e in self._events if isinstance(e, ev.ThreadCrashEvent)]

    def deadlock(self) -> Optional[ev.DeadlockEvent]:
        """The terminal deadlock/hang event, if the run stalled."""
        for e in reversed(self._events):
            if isinstance(e, ev.DeadlockEvent):
                return e
        return None

    def lock_events(self, lock: Optional[str] = None) -> List[ev.Event]:
        """Acquire/release events, optionally for one mutex."""
        out = []
        for e in self._events:
            if isinstance(e, (ev.AcquireEvent, ev.ReleaseEvent)):
                if lock is None or e.lock == lock:
                    out.append(e)
        return out

    def critical_sections(self) -> List[Tuple[str, str, int, int]]:
        """Extents of completed critical sections.

        Returns ``(thread, lock, acquire_seq, release_seq)`` tuples; sections
        still open at trace end are omitted.
        """
        open_sections: Dict[Tuple[str, str], int] = {}
        out: List[Tuple[str, str, int, int]] = []
        for e in self._events:
            if isinstance(e, ev.AcquireEvent):
                open_sections[(e.thread, e.lock)] = e.seq
            elif isinstance(e, ev.TryAcquireEvent) and e.success:
                open_sections[(e.thread, e.lock)] = e.seq
            elif isinstance(e, ev.WaitResumeEvent):
                open_sections[(e.thread, e.lock)] = e.seq
            elif isinstance(e, ev.ReleaseEvent):
                start = open_sections.pop((e.thread, e.lock), None)
                if start is not None:
                    out.append((e.thread, e.lock, start, e.seq))
            elif isinstance(e, ev.WaitParkEvent):
                start = open_sections.pop((e.thread, e.lock), None)
                if start is not None:
                    out.append((e.thread, e.lock, start, e.seq))
        return out

    # -- rendering / serialisation ------------------------------------------

    def format(self, limit: Optional[int] = None) -> str:
        """Multi-line human-readable rendering (for reports and debugging)."""
        lines = []
        shown = self._events if limit is None else self._events[:limit]
        for e in shown:
            lines.append(f"{e.seq:5d}  {e.thread:<12s} {e.describe()}")
        if limit is not None and len(self._events) > limit:
            lines.append(f"... ({len(self._events) - limit} more events)")
        return "\n".join(lines)

    def format_columns(self, width: int = 28) -> str:
        """Swimlane rendering: one column per thread, time flowing down.

        The classic way concurrency bug reports draw interleavings; used
        by :mod:`repro.reporting` for small witnesses.
        """
        threads = self.threads()
        if not threads:
            return "(empty trace)"
        header = "  ".join(t.ljust(width)[:width] for t in threads)
        rule = "  ".join("-" * width for _ in threads)
        lines = [header, rule]
        for event in self._events:
            if event.thread not in threads:
                continue
            column = threads.index(event.thread)
            text = event.describe()[:width]
            cells = ["".ljust(width)] * len(threads)
            cells[column] = text.ljust(width)[:width]
            lines.append("  ".join(cells).rstrip())
        return "\n".join(lines)

    def to_dicts(self) -> List[dict]:
        """Serialise to plain dicts (JSON-friendly for primitive payloads)."""
        out = []
        for e in self._events:
            d = {"type": type(e).__name__}
            d.update(
                {
                    k: v
                    for k, v in vars(e).items()
                    if not k.startswith("_")
                }
            )
            out.append(d)
        return out

    @classmethod
    def from_dicts(cls, dicts: Sequence[dict]) -> "Trace":
        """Inverse of :meth:`to_dicts`."""
        trace = cls()
        table = {
            name: getattr(ev, name)
            for name in ev.__all__
            if isinstance(getattr(ev, name), type)
        }
        for d in dicts:
            payload = dict(d)
            type_name = payload.pop("type")
            if type_name not in table:
                raise ValueError(f"unknown event type {type_name!r}")
            # Tuples become lists through JSON; restore the declared types.
            klass = table[type_name]
            for key in ("woken", "released", "blocked"):
                if key in payload and isinstance(payload[key], list):
                    value = payload[key]
                    if key == "blocked":
                        payload[key] = tuple(tuple(item) for item in value)
                    else:
                        payload[key] = tuple(value)
            trace.append(klass(**payload))
        return trace

    @staticmethod
    def _is_step(e: ev.Event) -> bool:
        """Whether this event corresponds to one scheduler decision."""
        return not isinstance(
            e, (ev.ThreadStartEvent, ev.ThreadFinishEvent, ev.ThreadCrashEvent, ev.DeadlockEvent)
        )
