"""Sleep-set partial-order reduction for interleaving exploration.

Plain DFS explores every interleaving; most differ only by swapping
*independent* operations (different variables, different locks) and reach
identical terminal states.  Sleep sets (Godefroid) prune those: after
exploring thread ``t`` from a node, ``t`` is put to sleep in the node's
other branches and stays asleep while the ops executed there are
independent of ``t``'s pending op; a branch whose enabled threads are all
asleep is redundant and pruned.

Independence is computed from pending-operation *footprints*: two ops are
dependent iff their footprints conflict — same variable with a write,
same mutex/rwlock/semaphore/condvar/barrier, or one is a spawn/join of
the other's thread.  Footprints are conservative, so reduction can only
be smaller than optimal, never unsound with respect to the footprint
relation.

One honest caveat, handled conservatively: a simulated **crash truncates
the run** (modelling process death), which breaks the classical
assumption that runs are maximal.  Reduction credit is therefore only
taken from runs that ended OK / deadlocked / hung; siblings of crashed
or budget-aborted runs are pushed with empty sleep sets.  The property
tests in ``tests/sim/test_reduction.py`` check outcome-set equivalence
against plain DFS on randomly generated programs, including crashing
ones.

Sleep sets remain the one reducer that does **not** compose with a
preemption bound or with ``workers > 1`` (pruning here presumes every
sibling branch is explorable and every reversal serially visible);
:mod:`repro.sim.dpor` composes with both and supersedes this explorer
wherever those accelerators matter — this module stays as the simplest
correct reducer and the differential baseline DPOR is tested against.
"""

from __future__ import annotations

from collections import Counter
from time import perf_counter
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.errors import ReproError
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.sim import ops
from repro.sim.engine import Engine, RunResult, RunStatus
from repro.sim.explorer import (
    ExplorationResult,
    Predicate,
    _default_predicate,
    _DirectedPolicy,
    _fill_pipeline,
    _outcome_key,
    _record_exploration,
    _record_pipeline_stats,
    _result_from_frontier,
)
from repro.sim.program import Program
from repro.sim.scheduler import Scheduler
from repro.sim.statecache import MemoHit, StateCache, state_fingerprint

__all__ = ["SleepSetExplorer", "op_footprint", "ops_dependent"]

Token = Tuple[str, str]


def op_footprint(op: ops.Op, thread: str, cond_locks: Dict[str, str]) -> FrozenSet[Token]:
    """The set of resource tokens an operation touches.

    ``cond_locks`` maps condition names to their mutexes (a ``Wait``
    touches both).  Every footprint carries a ``("self", thread)`` token
    so spawn/join of a thread conflict with that thread's own steps.
    """
    tokens: Set[Token] = {("self", thread)}
    if isinstance(op, ops.Read):
        tokens.add(("read", op.var))
    elif isinstance(op, (ops.Write, ops.AtomicUpdate)):
        tokens.add(("write", op.var))
    elif isinstance(op, (ops.Acquire, ops.Release, ops.TryAcquire)):
        tokens.add(("lock", op.lock))
    elif isinstance(op, ops._ReacquireAfterWait):
        tokens.add(("lock", op.lock))
        tokens.add(("cond", op.cond))
    elif isinstance(op, ops.Wait):
        tokens.add(("cond", op.cond))
        tokens.add(("lock", cond_locks.get(op.cond, f"?{op.cond}")))
    elif isinstance(op, (ops.Notify, ops.NotifyAll)):
        tokens.add(("cond", op.cond))
    elif isinstance(op, (ops.SemAcquire, ops.SemRelease)):
        tokens.add(("sem", op.sem))
    elif isinstance(op, ops.BarrierWait):
        tokens.add(("barrier", op.barrier))
    elif isinstance(op, (ops.AcquireRead, ops.AcquireWrite, ops.ReleaseRead, ops.ReleaseWrite)):
        tokens.add(("lock", f"rw:{op.rwlock}"))
    elif isinstance(op, (ops.Spawn, ops.Join)):
        tokens.add(("thread", op.thread))
    elif isinstance(op, (ops.Send, ops.Recv)):
        tokens.add(("chan", op.chan))
    elif isinstance(op, ops.Select):
        for chan in op.chans:
            tokens.add(("chan", chan))
    elif isinstance(op, ops._FlushStore):
        # A flush pseudo-step: a write to ``var`` on behalf of ``thread``
        # (the self token above carries the pseudo-thread's own name; the
        # thread token orders every flush with its owner's real steps,
        # conservatively preserving FIFO order and store forwarding).
        tokens.add(("write", op.var))
        tokens.add(("thread", op.thread))
    # Yield / Sleep / Fence: only the self token (a fence orders the
    # thread against its *own* flushes, which the thread token on
    # _FlushStore already captures).
    return frozenset(tokens)


def ops_dependent(a: FrozenSet[Token], b: FrozenSet[Token]) -> bool:
    """Whether two footprints conflict (may not commute)."""
    for kind_a, name_a in a:
        for kind_b, name_b in b:
            if name_a != name_b and not (
                (kind_a == "thread" and kind_b == "self")
                or (kind_a == "self" and kind_b == "thread")
            ):
                continue
            if kind_a == "read" and kind_b == "read":
                continue
            if {kind_a, kind_b} == {"read", "write"} and name_a == name_b:
                return True
            if kind_a == "write" and kind_b == "write" and name_a == name_b:
                return True
            if kind_a == kind_b and kind_a in (
                "lock", "cond", "sem", "barrier", "chan"
            ) and name_a == name_b:
                return True
            if (kind_a, kind_b) in (("thread", "self"), ("self", "thread")) and name_a == name_b:
                return True
    return False


class _SleepPruned(ReproError):
    """Raised by the scheduler when every enabled thread is asleep."""


class _SleepScheduler(Scheduler):
    """Replay a prefix, then extend while tracking sleep sets.

    Needs engine access (attached by the explorer after construction) to
    read pending operations for footprints.

    With a :class:`StateCache` attached, each decision point beyond the
    prefix is fingerprinted as ``(engine state, sleep set)`` — the pair
    that fully determines the reduced subtree below the node — and a
    revisited pair raises :class:`MemoHit` to abort the redundant run.
    """

    def __init__(
        self,
        prefix: Sequence[str],
        initial_sleep: FrozenSet[str],
        cache: Optional[StateCache] = None,
        pipeline: Optional[Any] = None,
        directed: Optional[_DirectedPolicy] = None,
    ):
        self.prefix = list(prefix)
        self.initial_sleep = initial_sleep
        self.cache = cache
        self.pipeline = pipeline
        self.directed = directed
        self.engine: Optional[Engine] = None
        self.cond_locks: Dict[str, str] = {}
        self.choices: List[str] = []
        self.enabled_sets: List[List[str]] = []
        self.sleep_sets: List[FrozenSet[str]] = []
        self.footprints: List[Dict[str, FrozenSet[Token]]] = []
        # Per-node directed sort keys (computed once per node, reused at
        # sibling-push time; aligned with enabled_sets, empty when
        # undirected).
        self.directed_keys: List[Dict[str, Tuple[int, int, str]]] = []
        # Pipeline snapshots per recorded decision (None where at most
        # one awake thread means no sibling branches).
        self.node_snapshots: List[Optional[Any]] = []
        self._sleep: FrozenSet[str] = frozenset()
        self._last: Optional[str] = None
        self.pruned = False
        # Hoisted once per run; fingerprinting is the per-decision hot path.
        self._profiler = obs_profile.active()

    def attach(self, engine: Engine) -> None:
        self.engine = engine
        self.cond_locks = dict(engine.program.conditions)

    def _fingerprint(self):
        profiler = self._profiler
        if profiler is None:
            return state_fingerprint(self.engine)
        start = perf_counter()
        fingerprint = state_fingerprint(self.engine)
        profiler.add("explorer.fingerprint", perf_counter() - start)
        return fingerprint

    def _pending_footprints(self, enabled: Sequence[str]) -> Dict[str, FrozenSet[Token]]:
        assert self.engine is not None
        return {
            name: op_footprint(
                self.engine.pending_op(name), name, self.cond_locks
            )
            for name in enabled
        }

    def choose(self, enabled: Sequence[str], step: int) -> str:
        ordered = sorted(enabled)
        index = len(self.choices)
        if index < len(self.prefix):
            choice = self.prefix[index]
            if choice not in enabled:
                raise ReproError(
                    f"sleep-set prefix diverged at step {index}: {choice!r} "
                    f"not enabled in {ordered}"
                )
            self.choices.append(choice)
            self._last = choice
            return choice

        if index == len(self.prefix):
            self._sleep = self.initial_sleep
        if self.cache is not None:
            # The reduced subtree depends on the state *and* the sleep set
            # (a sleeping thread's branches are skipped), so only nodes
            # identical in both may merge.
            fingerprint = (
                self._fingerprint(),
                ("sleep", tuple(sorted(self._sleep))),
            )
            if self.cache.seen(fingerprint):
                raise MemoHit()
        footprints = self._pending_footprints(ordered)
        self.enabled_sets.append(ordered)
        self.sleep_sets.append(self._sleep)
        self.footprints.append(footprints)
        if self.directed is not None:
            self.directed_keys.append(
                self.directed.key_enabled(self.engine, ordered, self._last)
            )
        awake = [name for name in ordered if name not in self._sleep]
        if self.pipeline is not None:
            # Appended before the pruned-node raise so the snapshot list
            # stays aligned with enabled_sets; siblings only branch where
            # more than one thread is awake.
            self.node_snapshots.append(
                self.pipeline.snapshot() if len(awake) > 1 else None
            )
        if not awake:
            self.pruned = True
            raise _SleepPruned("all enabled threads are asleep")
        if self.directed is not None:
            choice = min(awake, key=self.directed_keys[-1].__getitem__)
        elif self._last in awake:
            choice = self._last
        else:
            choice = awake[0]
        # Threads stay asleep only while independent of the executed op.
        chosen_footprint = footprints[choice]
        self._sleep = frozenset(
            name
            for name in self._sleep
            if name in footprints
            and not ops_dependent(footprints[name], chosen_footprint)
        )
        self.choices.append(choice)
        self._last = choice
        return choice

    def reset(self) -> None:
        self.choices = []
        self.enabled_sets = []
        self.sleep_sets = []
        self.footprints = []
        self.directed_keys = []
        self.node_snapshots = []
        self._sleep = frozenset()
        self._last = None
        self.pruned = False


class SleepSetExplorer:
    """DFS exploration with sleep-set partial-order reduction."""

    def __init__(
        self,
        program: Program,
        max_schedules: int = 20000,
        max_steps: int = 5000,
        keep_matches: int = 16,
        memoize: bool = False,
        pipeline: Optional[Any] = None,
        targets: Optional[Sequence[Any]] = None,
    ):
        self.program = program
        self.max_schedules = max_schedules
        self.max_steps = max_steps
        self.keep_matches = keep_matches
        self.memoize = memoize
        #: Race-directed visit ordering (see
        #: :class:`~repro.sim.explorer.Explorer`).  Reordering sibling
        #: pushes is sound for sleep sets: a sibling's sleep set only
        #: needs each sleeping thread to own another branch at the same
        #: node, which holds for any enumeration order.
        self.directed = _DirectedPolicy(targets) if targets else None
        #: Streaming detector pipeline (duck-typed, as in
        #: :class:`~repro.sim.explorer.Explorer`); note that reduction
        #: already skips interleavings, so pipeline findings cover only
        #: the non-pruned representative schedules.
        self.pipeline = pipeline
        #: Redundant branches pruned in the last exploration.
        self.pruned_runs = 0
        #: The state cache of the most recent exploration (None unless
        #: ``memoize=True``).
        self.cache: Optional[StateCache] = None

    def explore(
        self,
        predicate: Optional[Predicate] = None,
        stop_on_first: bool = False,
        *,
        slice_budget: Optional[int] = None,
        frontier: Optional[Any] = None,
    ) -> ExplorationResult:
        """Explore with reduction; result fields as in :class:`Explorer`.

        ``slice_budget`` / ``frontier`` give the same sliced-resumable
        contract as :meth:`Explorer.explore`: a paused search returns a
        checkpoint on ``result.frontier`` whose pending entries carry
        their sleep sets, and concatenated slices reproduce the unsliced
        result exactly.  Incompatible with an attached pipeline
        (``ValueError``).
        """
        sliced = slice_budget is not None or frontier is not None
        if sliced:
            if self.pipeline is not None:
                raise ValueError(
                    "sliced exploration cannot be combined with a streaming "
                    "detector pipeline: branch-point snapshots hold live "
                    "analysis state that must not cross a checkpoint boundary"
                )
            if slice_budget is not None and slice_budget < 1:
                raise ValueError(
                    f"slice_budget must be a positive schedule count, got "
                    f"{slice_budget}"
                )
        start = perf_counter()
        base_wall = frontier.wall_seconds if frontier is not None else 0.0
        match = predicate if predicate is not None else _default_predicate
        if frontier is not None:
            frontier.check("sleepset", self.program.name, self.memoize)
            result = _result_from_frontier(frontier, self.program.name)
            self.pruned_runs = frontier.pruned_runs
            cache = frontier.restore_cache()
            stack = [
                (list(prefix), frozenset(sleep), None)
                for prefix, sleep in frontier.pending
            ]
            attempts = frontier.attempts
        else:
            result = ExplorationResult(
                program=self.program.name, schedules_run=0, complete=True
            )
            self.pruned_runs = 0
            cache = StateCache() if self.memoize else None
            stack = [([], frozenset(), None)]
            attempts = 0
        self.cache = cache
        limit = (
            min(self.max_schedules, attempts + slice_budget)
            if slice_budget is not None
            else None
        )
        while stack:
            if attempts >= self.max_schedules:
                result.complete = False
                break
            if limit is not None and attempts >= limit:
                break  # slice exhausted; checkpoint the stack below
            prefix, sleep, snapshot = stack.pop()
            attempts += 1
            run, scheduler = self._run_once(prefix, sleep, cache, snapshot)
            if len(scheduler.choices) > len(prefix):
                result.states_expanded += len(scheduler.choices) - len(prefix)
            if run is not None:
                result.schedules_run += 1
                result.statuses[run.status] += 1
                key = _outcome_key(run)
                result.outcomes[key] = result.outcomes.get(key, 0) + 1
                if match(run):
                    result.match_count += 1
                    if len(result.matching) < self.keep_matches:
                        result.matching.append(run)
                    if result.first_match_schedule is None:
                        result.first_match_schedule = list(run.schedule)
                        result.schedules_to_first_finding = result.schedules_run
                    if stop_on_first:
                        result.complete = False
                        self._finish(result, cache, start, base_wall)
                        return result
            elif scheduler.pruned:
                self.pruned_runs += 1
            else:
                result.cache_hits += 1
            self._push_siblings(stack, scheduler, prefix, run)
        if sliced and stack and result.complete:
            # Slice exhausted with pending work: checkpoint and return a
            # provisional result; metrics wait for the terminal slice.
            if cache is not None:
                result.cache_lookups = cache.lookups
                result.cache_states = len(cache)
            result.wall_seconds = base_wall + perf_counter() - start
            result.frontier = self._make_frontier(result, stack, cache)
            return result
        self._finish(result, cache, start, base_wall)
        return result

    def _make_frontier(
        self,
        result: ExplorationResult,
        stack: List[Tuple[List[str], FrozenSet[str], Optional[Any]]],
        cache: Optional[StateCache],
    ):
        """Checkpoint a paused sleep-set search (see :mod:`repro.sim.frontier`)."""
        from repro.sim.frontier import ExplorationFrontier

        return ExplorationFrontier(
            explorer="sleepset",
            program=self.program.name,
            memoize=self.memoize,
            pending=[
                (list(prefix), tuple(sorted(sleep)))
                for prefix, sleep, _ in stack
            ],
            attempts=(
                result.schedules_run + result.cache_hits + self.pruned_runs
            ),
            schedules_run=result.schedules_run,
            statuses=Counter(result.statuses),
            outcomes=dict(result.outcomes),
            matching=list(result.matching),
            match_count=result.match_count,
            first_match_schedule=(
                list(result.first_match_schedule)
                if result.first_match_schedule is not None else None
            ),
            schedules_to_first_finding=result.schedules_to_first_finding,
            cache_hits=result.cache_hits,
            states_expanded=result.states_expanded,
            preemptions_spent=result.preemptions_spent,
            pruned_runs=self.pruned_runs,
            wall_seconds=result.wall_seconds,
            cache_state=cache.export_state() if cache is not None else None,
        )

    def _finish(
        self,
        result: ExplorationResult,
        cache: Optional[StateCache],
        start: float,
        base_wall: float = 0.0,
    ) -> None:
        """Close out one exploration: cache stats, wall-clock, metrics."""
        if cache is not None:
            result.cache_lookups = cache.lookups
            result.cache_states = len(cache)
            cache.record_metrics(program=self.program.name)
        _fill_pipeline(result, self.pipeline)
        if result.pipeline_stats is not None:
            _record_pipeline_stats(result.pipeline_stats, self.program.name)
        result.wall_seconds = base_wall + perf_counter() - start
        obs_metrics.inc(
            "explorer.pruned_runs", self.pruned_runs,
            program=self.program.name, explorer="sleepset",
        )
        _record_exploration(result, "sleepset")

    # -- internals ----------------------------------------------------------

    def _run_once(
        self,
        prefix: List[str],
        sleep: FrozenSet[str],
        cache: Optional[StateCache],
        snapshot: Optional[Any] = None,
    ) -> Tuple[Optional[RunResult], _SleepScheduler]:
        pipeline = self.pipeline
        hook = None
        if pipeline is not None:
            if snapshot is not None:
                pipeline.restore(snapshot)
            else:
                pipeline.begin_pass()
            hook = pipeline.feed
        scheduler = _SleepScheduler(
            prefix, sleep, cache=cache, pipeline=pipeline,
            directed=self.directed,
        )
        engine = Engine(
            self.program, scheduler, max_steps=self.max_steps, event_hook=hook
        )
        scheduler.attach(engine)
        try:
            run = engine.run()
        except (_SleepPruned, MemoHit):
            # Already-fed events did execute; end-of-trace analyses are
            # skipped for aborted runs.
            return None, scheduler
        if pipeline is not None:
            pipeline.finish_pass()
        return run, scheduler

    def _push_siblings(
        self,
        stack: List[Tuple[List[str], FrozenSet[str], Optional[Any]]],
        scheduler: _SleepScheduler,
        prefix: List[str],
        run: Optional[RunResult],
    ) -> None:
        # No reduction credit from truncated runs (crash / budget abort):
        # their tails never executed, so commuting arguments do not apply.
        truncated = run is not None and run.status in (
            RunStatus.CRASH, RunStatus.ABORTED
        )
        choices = scheduler.choices
        for node in range(len(scheduler.enabled_sets)):
            step = len(prefix) + node
            enabled = scheduler.enabled_sets[node]
            node_sleep = scheduler.sleep_sets[node]
            footprints = scheduler.footprints[node]
            if step >= len(choices):
                break  # the pruned node itself has no explored choice
            chosen = choices[step]
            snapshot = (
                scheduler.node_snapshots[node]
                if scheduler.node_snapshots
                else None
            )
            alternatives = enabled
            if scheduler.directed_keys:
                # Worst-ranked pushed first: the LIFO stack then pops the
                # best-directed sibling first.  Sleep-set soundness only
                # needs the triangular explored-set structure, which any
                # enumeration order provides.
                alternatives = sorted(
                    enabled,
                    key=scheduler.directed_keys[node].__getitem__,
                    reverse=True,
                )
            explored: List[str] = [chosen]
            for alt in alternatives:
                if alt == chosen or alt in node_sleep:
                    continue
                if truncated:
                    alt_sleep: FrozenSet[str] = frozenset()
                else:
                    alt_sleep = frozenset(
                        name
                        for name in (node_sleep | set(explored))
                        if not ops_dependent(footprints[name], footprints[alt])
                    )
                stack.append((choices[:step] + [alt], alt_sleep, snapshot))
                explored.append(alt)
